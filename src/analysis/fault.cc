#include "fault.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <thread>

#include "analysis/yield.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/cosim.hh"
#include "workloads/kernels.hh"

namespace printed
{

namespace
{

/** Uniform double in [0, 1) from 53 random bits. */
double
uniform(Rng &rng)
{
    return double(rng.next() >> 11) / 9007199254740992.0;
}

/** SplitMix64 finalizer over a combined word. */
std::uint64_t
mix(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** One workload instantiated for the core, with golden results. */
struct KernelHarness
{
    Workload wl;
    std::vector<std::uint64_t> inputs;
    std::vector<std::uint64_t> golden;
    std::uint64_t cycleBudget = 0;
};

/** Per-thread gate-level harnesses (one cosim per kernel). */
std::vector<std::unique_ptr<CoreCosim>>
buildCosims(const Netlist &core, const CoreConfig &config,
            const std::vector<KernelHarness> &kernels)
{
    std::vector<std::unique_ptr<CoreCosim>> sims;
    sims.reserve(kernels.size());
    for (const KernelHarness &k : kernels) {
        sims.push_back(std::make_unique<CoreCosim>(
            core, config, k.wl.program, k.wl.dmemWords));
        if (k.wl.streamAddr >= 0)
            sims.back()->setStreamPort(
                std::size_t(k.wl.streamAddr),
                k.wl.streamInputs(k.inputs));
    }
    return sims;
}

/**
 * Run every kernel on one defective replica.
 * @return Fatal on any wrong result / illegal state / lost halt,
 *         otherwise WorkloadMasked or FullyBenign by whether any
 *         fault activation was observed.
 */
TrialOutcome
runDefectMap(std::vector<std::unique_ptr<CoreCosim>> &sims,
             const std::vector<KernelHarness> &kernels,
             const DefectMap &map)
{
    std::uint64_t activations = 0;
    bool fatal = false;
    for (std::size_t i = 0; i < kernels.size() && !fatal; ++i) {
        CoreCosim &cs = *sims[i];
        const KernelHarness &k = kernels[i];
        cs.simulator().setFaults(map.faults);
        try {
            cs.reset();
            k.wl.load([&](std::size_t a, std::uint64_t v) {
                cs.setMem(a, v);
            }, k.inputs);
            cs.run(k.cycleBudget);
            const auto got = k.wl.read(
                [&](std::size_t a) { return cs.mem(a); });
            fatal = got != k.golden;
        } catch (const SimulationError &) {
            // Defect drove an illegal state (bus contention,
            // S=R=1): the print is electrically broken.
            fatal = true;
        } catch (const FatalError &) {
            // Lost halt (cycle budget) or wild write: broken.
            fatal = true;
        }
        activations += cs.simulator().faultActivations();
        cs.simulator().clearFaults();
    }
    if (fatal)
        return TrialOutcome::Fatal;
    return activations ? TrialOutcome::WorkloadMasked
                       : TrialOutcome::FullyBenign;
}

/** Outcome counters, merged across worker threads. */
struct Counters
{
    unsigned fatal = 0;
    unsigned masked = 0;
    unsigned benign = 0;
    unsigned defectFree = 0;
};

} // anonymous namespace

std::uint64_t
faultTrialSeed(std::uint64_t seed, std::uint64_t trial,
               std::uint64_t replica)
{
    return mix(mix(seed, trial), replica);
}

DefectMap
drawDefects(const Netlist &netlist, const FaultModel &model,
            std::uint64_t trialSeed)
{
    fatalIf(model.deviceYield < 0 || model.deviceYield > 1,
            "drawDefects: device yield must be in [0, 1]");
    fatalIf(model.bridgeFraction < 0 || model.bridgeFraction > 1,
            "drawDefects: bridge fraction must be in [0, 1]");

    // Per-cell-kind failure probability 1 - y^devices, shared with
    // the analytic model through cellDeviceCount().
    std::array<double, numCellKinds> failProb{};
    for (std::size_t k = 0; k < numCellKinds; ++k)
        failProb[k] = 1.0 - std::pow(model.deviceYield,
                                     double(cellDeviceCount(
                                         static_cast<CellKind>(k))));

    DefectMap map;
    map.seed = trialSeed;
    Rng rng(trialSeed);
    for (GateId gi = 0; gi < netlist.gateCount(); ++gi) {
        const Gate &g = netlist.gate(gi);
        if (uniform(rng) >=
            failProb[static_cast<std::size_t>(g.kind)])
            continue;
        InjectedFault f;
        f.gate = gi;
        const bool canBridge = !cellIsSequential(g.kind) &&
                               g.kind != CellKind::TSBUFX1;
        if (canBridge && uniform(rng) < model.bridgeFraction) {
            f.kind = FaultKind::BridgeInput;
            f.bridge = (g.in1 != invalidNet && rng.flip()) ? g.in1
                                                           : g.in0;
        } else {
            f.kind = rng.flip() ? FaultKind::StuckAt1
                                : FaultKind::StuckAt0;
        }
        map.faults.push_back(f);
    }
    return map;
}

FunctionalYieldReport
measureFunctionalYield(const Netlist &core, const CoreConfig &config,
                       const FunctionalYieldConfig &cfg)
{
    fatalIf(cfg.trials == 0, "measureFunctionalYield: need trials");
    fatalIf(cfg.replicas == 0,
            "measureFunctionalYield: need at least one replica");
    fatalIf(cfg.kernels.empty(),
            "measureFunctionalYield: need at least one kernel");

    // Instantiate the kernels at the core's native width and verify
    // them on the fault-free netlist; the clean cycle counts set
    // the per-trial budget (a fault that quadruples the runtime has
    // de facto killed the core).
    const unsigned w = config.isa.datawidth;
    std::vector<KernelHarness> kernels;
    for (Kernel kind : cfg.kernels) {
        KernelHarness k;
        k.wl = makeWorkload(kind, w, w, config.isa.barCount);
        k.inputs = defaultInputs(kind, w);
        k.golden = goldenOutputs(kind, w, k.inputs);
        kernels.push_back(std::move(k));
    }
    {
        auto sims = buildCosims(core, config, kernels);
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            KernelHarness &k = kernels[i];
            CoreCosim &cs = *sims[i];
            cs.reset();
            k.wl.load([&](std::size_t a, std::uint64_t v) {
                cs.setMem(a, v);
            }, k.inputs);
            const std::uint64_t cycles = cs.run();
            const auto got = k.wl.read(
                [&](std::size_t a) { return cs.mem(a); });
            fatalIf(got != k.golden,
                    "measureFunctionalYield: fault-free core fails "
                    "workload " + k.wl.program.name);
            k.cycleBudget = 4 * cycles + 64;
        }
    }

    const unsigned hw = std::thread::hardware_concurrency();
    unsigned threads = cfg.threads ? cfg.threads
                                   : (hw ? hw : 1u);
    threads = std::min(threads, cfg.trials);

    // Each trial is fully determined by (seed, trial, replica), so
    // any partition of the trial space over threads produces the
    // same counts.
    std::atomic<unsigned> nextTrial{0};
    Counters total;
    std::mutex totalMutex;
    auto worker = [&]() {
        auto sims = buildCosims(core, config, kernels);
        Counters local;
        for (;;) {
            const unsigned t =
                nextTrial.fetch_add(1, std::memory_order_relaxed);
            if (t >= cfg.trials)
                break;
            TrialOutcome out = TrialOutcome::FullyBenign;
            bool anyDefect = false;
            for (unsigned r = 0; r < cfg.replicas; ++r) {
                const DefectMap map = drawDefects(
                    core, cfg.fault,
                    faultTrialSeed(cfg.fault.seed, t, r));
                if (map.empty())
                    continue;
                anyDefect = true;
                const TrialOutcome o =
                    runDefectMap(sims, kernels, map);
                if (o == TrialOutcome::Fatal) {
                    out = TrialOutcome::Fatal;
                    break;
                }
                if (o == TrialOutcome::WorkloadMasked)
                    out = TrialOutcome::WorkloadMasked;
            }
            if (!anyDefect)
                ++local.defectFree;
            else if (out == TrialOutcome::Fatal)
                ++local.fatal;
            else if (out == TrialOutcome::WorkloadMasked)
                ++local.masked;
            else
                ++local.benign;
        }
        std::lock_guard<std::mutex> lock(totalMutex);
        total.fatal += local.fatal;
        total.masked += local.masked;
        total.benign += local.benign;
        total.defectFree += local.defectFree;
    };

    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            pool.emplace_back(worker);
        for (std::thread &th : pool)
            th.join();
    }

    FunctionalYieldReport report;
    report.trials = cfg.trials;
    report.fatalTrials = total.fatal;
    report.maskedTrials = total.masked;
    report.benignTrials = total.benign;
    report.defectFreeTrials = total.defectFree;
    report.devicesPerReplica = deviceCount(core);
    report.replicas = cfg.replicas;
    report.analyticYield =
        yieldForDevices(report.devicesPerReplica * cfg.replicas,
                        {cfg.fault.deviceYield, 1.0})
            .yield;
    return report;
}

} // namespace printed
