#include "fault.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>

#include "analysis/yield.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/cosim.hh"
#include "workloads/kernels.hh"

namespace printed
{

namespace
{

/** Uniform double in [0, 1) from 53 random bits. */
double
uniform(Rng &rng)
{
    return double(rng.next() >> 11) / 9007199254740992.0;
}

/** One workload instantiated for the core, with golden results. */
struct KernelHarness
{
    Workload wl;
    std::vector<std::uint64_t> inputs;
    std::vector<std::uint64_t> golden;
    std::uint64_t cycleBudget = 0;
};

/** Per-thread gate-level harnesses (one cosim per kernel). */
std::vector<std::unique_ptr<CoreCosim>>
buildCosims(const Netlist &core, const CoreConfig &config,
            const std::vector<KernelHarness> &kernels)
{
    std::vector<std::unique_ptr<CoreCosim>> sims;
    sims.reserve(kernels.size());
    for (const KernelHarness &k : kernels) {
        sims.push_back(std::make_unique<CoreCosim>(
            core, config, k.wl.program, k.wl.dmemWords));
        if (k.wl.streamAddr >= 0)
            sims.back()->setStreamPort(
                std::size_t(k.wl.streamAddr),
                k.wl.streamInputs(k.inputs));
    }
    return sims;
}

/**
 * Run every kernel on one defective replica.
 * @return Fatal on any wrong result / illegal state / lost halt,
 *         otherwise WorkloadMasked or FullyBenign by whether any
 *         fault activation was observed.
 */
TrialOutcome
runDefectMap(std::vector<std::unique_ptr<CoreCosim>> &sims,
             const std::vector<KernelHarness> &kernels,
             const DefectMap &map)
{
    std::uint64_t activations = 0;
    bool fatal = false;
    for (std::size_t i = 0; i < kernels.size() && !fatal; ++i) {
        CoreCosim &cs = *sims[i];
        const KernelHarness &k = kernels[i];
        cs.simulator().setFaults(map.faults);
        try {
            cs.reset();
            k.wl.load([&](std::size_t a, std::uint64_t v) {
                cs.setMem(a, v);
            }, k.inputs);
            cs.run(k.cycleBudget);
            const auto got = k.wl.read(
                [&](std::size_t a) { return cs.mem(a); });
            fatal = got != k.golden;
        } catch (const SimulationError &) {
            // Defect drove an illegal state (bus contention,
            // S=R=1): the print is electrically broken.
            fatal = true;
        } catch (const FatalError &) {
            // Lost halt (cycle budget) or wild write: broken.
            fatal = true;
        }
        activations += cs.simulator().faultActivations();
        cs.simulator().clearFaults();
    }
    if (fatal)
        return TrialOutcome::Fatal;
    return activations ? TrialOutcome::WorkloadMasked
                       : TrialOutcome::FullyBenign;
}

/** Classification of one full trial (all replicas). */
enum class TrialClass : std::uint8_t
{
    DefectFree,
    Benign,
    Masked,
    Fatal,
};

} // anonymous namespace

std::uint64_t
faultTrialSeed(std::uint64_t seed, std::uint64_t trial,
               std::uint64_t replica)
{
    return mixSeed(mixSeed(seed, trial), replica);
}

DefectMap
drawDefects(const Netlist &netlist, const FaultModel &model,
            std::uint64_t trialSeed)
{
    fatalIf(model.deviceYield < 0 || model.deviceYield > 1,
            "drawDefects: device yield must be in [0, 1]");
    fatalIf(model.bridgeFraction < 0 || model.bridgeFraction > 1,
            "drawDefects: bridge fraction must be in [0, 1]");

    // Per-cell-kind failure probability 1 - y^devices, shared with
    // the analytic model through cellDeviceCount().
    std::array<double, numCellKinds> failProb{};
    for (std::size_t k = 0; k < numCellKinds; ++k)
        failProb[k] = 1.0 - std::pow(model.deviceYield,
                                     double(cellDeviceCount(
                                         static_cast<CellKind>(k))));

    DefectMap map;
    map.seed = trialSeed;
    Rng rng(trialSeed);
    for (GateId gi = 0; gi < netlist.gateCount(); ++gi) {
        const Gate &g = netlist.gate(gi);
        if (uniform(rng) >=
            failProb[static_cast<std::size_t>(g.kind)])
            continue;
        InjectedFault f;
        f.gate = gi;
        const bool canBridge = !cellIsSequential(g.kind) &&
                               g.kind != CellKind::TSBUFX1;
        if (canBridge && uniform(rng) < model.bridgeFraction) {
            f.kind = FaultKind::BridgeInput;
            f.bridge = (g.in1 != invalidNet && rng.flip()) ? g.in1
                                                           : g.in0;
        } else {
            f.kind = rng.flip() ? FaultKind::StuckAt1
                                : FaultKind::StuckAt0;
        }
        map.faults.push_back(f);
    }
    return map;
}

FunctionalYieldReport
measureFunctionalYield(const Netlist &core, const CoreConfig &config,
                       const FunctionalYieldConfig &cfg)
{
    fatalIf(cfg.trials == 0, "measureFunctionalYield: need trials");
    fatalIf(cfg.replicas == 0,
            "measureFunctionalYield: need at least one replica");
    fatalIf(cfg.kernels.empty(),
            "measureFunctionalYield: need at least one kernel");

    // Instantiate the kernels at the core's native width and verify
    // them on the fault-free netlist; the clean cycle counts set
    // the per-trial budget (a fault that quadruples the runtime has
    // de facto killed the core).
    const unsigned w = config.isa.datawidth;
    std::vector<KernelHarness> kernels;
    for (Kernel kind : cfg.kernels) {
        KernelHarness k;
        k.wl = makeWorkload(kind, w, w, config.isa.barCount);
        k.inputs = defaultInputs(kind, w);
        k.golden = goldenOutputs(kind, w, k.inputs);
        kernels.push_back(std::move(k));
    }
    {
        auto sims = buildCosims(core, config, kernels);
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            KernelHarness &k = kernels[i];
            CoreCosim &cs = *sims[i];
            cs.reset();
            k.wl.load([&](std::size_t a, std::uint64_t v) {
                cs.setMem(a, v);
            }, k.inputs);
            const std::uint64_t cycles = cs.run();
            const auto got = k.wl.read(
                [&](std::size_t a) { return cs.mem(a); });
            fatalIf(got != k.golden,
                    "measureFunctionalYield: fault-free core fails "
                    "workload " + k.wl.program.name);
            k.cycleBudget = 4 * cycles + 64;
        }
    }

    unsigned threads = cfg.threads ? cfg.threads
                                   : ThreadPool::defaultThreadCount();
    threads = std::min(threads, cfg.trials);

    // Each trial is fully determined by (seed, trial, replica) and
    // classified into its own slot of `outcome`, so the report is
    // bit-identical for any thread count and schedule (the
    // determinism contract of common/parallel.hh). The gate-level
    // cosims are expensive to construct, so each pool worker lazily
    // builds one set and reuses it across the trials it claims —
    // sims carry no state between trials (faults are cleared, the
    // core reset), so which worker runs a trial cannot matter.
    ThreadPool pool(threads);
    std::vector<std::vector<std::unique_ptr<CoreCosim>>> workerSims(
        pool.threadCount());
    std::vector<TrialClass> outcome(cfg.trials);
    pool.parallelForWorkers(
        cfg.trials, [&](std::size_t t, unsigned worker) {
            auto &sims = workerSims[worker];
            if (sims.empty())
                sims = buildCosims(core, config, kernels);
            TrialOutcome out = TrialOutcome::FullyBenign;
            bool anyDefect = false;
            for (unsigned r = 0; r < cfg.replicas; ++r) {
                const DefectMap map = drawDefects(
                    core, cfg.fault,
                    faultTrialSeed(cfg.fault.seed, t, r));
                if (map.empty())
                    continue;
                anyDefect = true;
                const TrialOutcome o =
                    runDefectMap(sims, kernels, map);
                if (o == TrialOutcome::Fatal) {
                    out = TrialOutcome::Fatal;
                    break;
                }
                if (o == TrialOutcome::WorkloadMasked)
                    out = TrialOutcome::WorkloadMasked;
            }
            if (!anyDefect)
                outcome[t] = TrialClass::DefectFree;
            else if (out == TrialOutcome::Fatal)
                outcome[t] = TrialClass::Fatal;
            else if (out == TrialOutcome::WorkloadMasked)
                outcome[t] = TrialClass::Masked;
            else
                outcome[t] = TrialClass::Benign;
        });

    FunctionalYieldReport report;
    report.trials = cfg.trials;
    for (TrialClass c : outcome) {
        switch (c) {
          case TrialClass::Fatal:      ++report.fatalTrials; break;
          case TrialClass::Masked:     ++report.maskedTrials; break;
          case TrialClass::Benign:     ++report.benignTrials; break;
          case TrialClass::DefectFree: ++report.defectFreeTrials;
            break;
        }
    }
    report.devicesPerReplica = deviceCount(core);
    report.replicas = cfg.replicas;
    report.analyticYield =
        yieldForDevices(report.devicesPerReplica * cfg.replicas,
                        {cfg.fault.deviceYield, 1.0})
            .yield;
    return report;
}

} // namespace printed
