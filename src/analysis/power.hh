/**
 * @file
 * Activity-based power model for printed netlists.
 *
 * Dynamic power follows the standard cell-energy model the paper
 * uses with Design Compiler:
 *
 *     P_dyn = sum_cells  alpha * E_switch(cell) * f
 *
 * where alpha is the switching-activity factor (the paper reports an
 * average simulated activity of 0.88) and E_switch comes from
 * Table 2. Static power uses the per-cell transistor-resistor model
 * described in tech/library.hh.
 */

#ifndef PRINTED_ANALYSIS_POWER_HH
#define PRINTED_ANALYSIS_POWER_HH

#include <array>

#include "netlist/netlist.hh"
#include "tech/library.hh"

namespace printed
{

/** Default activity factor, as reported by the paper (Section 8). */
constexpr double paperActivityFactor = 0.88;

/** Power totals of a netlist at a given clock frequency. */
struct PowerReport
{
    double frequencyHz = 0;
    double activity = paperActivityFactor;

    double dynamic_mW = 0;
    double static_mW = 0;
    double total_mW = 0;

    double comb_mW = 0; ///< combinational share (dynamic + static)
    double seq_mW = 0;  ///< sequential share (dynamic + static)

    /** Energy drawn per clock cycle [nJ]. */
    double energyPerCycle_nJ = 0;
};

/**
 * Compute power for a cell histogram at frequency f.
 *
 * @param histogram instance counts per cell kind
 * @param lib technology library
 * @param frequency_hz clock frequency
 * @param activity average output toggles per cell per cycle
 */
PowerReport powerOfHistogram(
    const std::array<std::size_t, numCellKinds> &histogram,
    const CellLibrary &lib, double frequency_hz,
    double activity = paperActivityFactor);

/** Compute power of a netlist at frequency f. */
PowerReport analyzePower(const Netlist &netlist, const CellLibrary &lib,
                         double frequency_hz,
                         double activity = paperActivityFactor);

} // namespace printed

#endif // PRINTED_ANALYSIS_POWER_HH
