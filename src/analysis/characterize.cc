#include "characterize.hh"

#include "common/metrics.hh"
#include "common/trace.hh"

namespace printed
{

Characterization
characterize(const Netlist &netlist, const CellLibrary &lib,
             double activity)
{
    trace::Span span("analysis.characterize", netlist.name());
    metrics::counter("analysis.characterizations").add(1);
    netlist.validate();

    Characterization ch;
    ch.label = netlist.name();
    ch.tech = lib.tech();
    ch.stats = computeStats(netlist);
    ch.area = analyzeArea(netlist, lib);
    ch.timing = analyzeTiming(netlist, lib);
    ch.powerAtFmax = analyzePower(netlist, lib, ch.timing.fmaxHz,
                                  activity);
    return ch;
}

} // namespace printed
