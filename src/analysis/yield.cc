#include "yield.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace printed
{

std::size_t
cellDeviceCount(CellKind kind)
{
    // One driving transistor per resistor-loaded stage; the stage
    // counts mirror tech/library.cc and are identical across
    // technologies.
    switch (kind) {
      case CellKind::INVX1:
      case CellKind::NAND2X1:
      case CellKind::NOR2X1:
        return 1;
      case CellKind::AND2X1:
      case CellKind::OR2X1:
      case CellKind::TSBUFX1:
        return 2;
      case CellKind::XOR2X1:
      case CellKind::XNOR2X1:
        return 3;
      case CellKind::LATCHX1:
        return 4;
      case CellKind::DFFX1:
        return 8;
      case CellKind::DFFNRX1:
        return 10;
      default:
        panic("cellDeviceCount: unknown cell");
    }
}

std::size_t
deviceCount(const Netlist &netlist)
{
    std::size_t devices = 0;
    for (GateId gi = 0; gi < netlist.gateCount(); ++gi)
        devices += cellDeviceCount(netlist.gateKind(gi));
    return devices;
}

YieldReport
yieldForDevices(std::size_t devices, const YieldModel &model)
{
    fatalIf(model.deviceYield < 0 || model.deviceYield > 1,
            "yieldForDevices: device yield must be in [0, 1]");
    YieldReport report;
    report.devices = devices;
    // pow(0, 0) == 1: a zero-device design always "works".
    report.yield = devices == 0
                       ? 1.0
                       : std::pow(model.deviceYield,
                                  double(devices) *
                                      model.devicesPerStage);
    report.printsPerGood =
        report.yield > 0 ? 1.0 / report.yield
                         : std::numeric_limits<double>::infinity();
    return report;
}

YieldReport
analyzeYield(const Netlist &netlist, const YieldModel &model)
{
    return yieldForDevices(deviceCount(netlist), model);
}

} // namespace printed
