#include "yield.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace printed
{

std::size_t
deviceCount(const Netlist &netlist)
{
    // One driving transistor per resistor-loaded stage; the stage
    // counts mirror tech/library.cc and are identical across
    // technologies.
    std::size_t devices = 0;
    for (const Gate &g : netlist.gates()) {
        switch (g.kind) {
          case CellKind::INVX1:
          case CellKind::NAND2X1:
          case CellKind::NOR2X1:
            devices += 1;
            break;
          case CellKind::AND2X1:
          case CellKind::OR2X1:
          case CellKind::TSBUFX1:
            devices += 2;
            break;
          case CellKind::XOR2X1:
          case CellKind::XNOR2X1:
            devices += 3;
            break;
          case CellKind::LATCHX1:
            devices += 4;
            break;
          case CellKind::DFFX1:
            devices += 8;
            break;
          case CellKind::DFFNRX1:
            devices += 10;
            break;
          default:
            panic("deviceCount: unknown cell");
        }
    }
    return devices;
}

YieldReport
yieldForDevices(std::size_t devices, const YieldModel &model)
{
    fatalIf(model.deviceYield <= 0 || model.deviceYield > 1,
            "yieldForDevices: device yield must be in (0, 1]");
    YieldReport report;
    report.devices = devices;
    report.yield = std::pow(model.deviceYield,
                            double(devices) * model.devicesPerStage);
    report.printsPerGood =
        report.yield > 0 ? 1.0 / report.yield
                         : std::numeric_limits<double>::infinity();
    return report;
}

YieldReport
analyzeYield(const Netlist &netlist, const YieldModel &model)
{
    return yieldForDevices(deviceCount(netlist), model);
}

} // namespace printed
