/**
 * @file
 * Area accounting for printed netlists: total plus the
 * combinational/sequential split the paper uses in Figures 7 and 8
 * (bars partitioned into Combinational and Registers).
 */

#ifndef PRINTED_ANALYSIS_AREA_HH
#define PRINTED_ANALYSIS_AREA_HH

#include <array>

#include "netlist/netlist.hh"
#include "tech/library.hh"

namespace printed
{

/** Area totals of a netlist in one technology. */
struct AreaReport
{
    double total_mm2 = 0;
    double comb_mm2 = 0;  ///< combinational cells
    double seq_mm2 = 0;   ///< LATCH/DFF/DFFNR cells
    std::array<double, numCellKinds> perCell_mm2{};

    /** Total area converted to the paper's cm^2 convention. */
    double totalCm2() const { return total_mm2 / 100.0; }
};

/** Sum per-cell Table 2 areas over the netlist's instances. */
AreaReport analyzeArea(const Netlist &netlist, const CellLibrary &lib);

/** Area of a raw cell histogram (used by the legacy core models). */
AreaReport areaOfHistogram(
    const std::array<std::size_t, numCellKinds> &histogram,
    const CellLibrary &lib);

} // namespace printed

#endif // PRINTED_ANALYSIS_AREA_HH
