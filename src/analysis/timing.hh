/**
 * @file
 * Static timing analysis over printed standard-cell netlists.
 *
 * Propagates rise/fall arrival times through the levelized
 * combinational network using the Table 2 per-cell rise/fall delays.
 * Inverting cells (INV/NAND/NOR) couple output-rise to input-fall and
 * vice versa; non-monotone cells (XOR/XNOR, and TSBUF conservatively)
 * couple both directions.
 *
 * Sequential sources launch at the flop's clk-to-q delay; paths are
 * timed to sequential D/R inputs and to primary outputs. Table 2
 * carries no setup times, so setup is taken as zero (documented in
 * DESIGN.md); fmax = 1 / max register-to-register path.
 */

#ifndef PRINTED_ANALYSIS_TIMING_HH
#define PRINTED_ANALYSIS_TIMING_HH

#include "netlist/netlist.hh"
#include "tech/library.hh"

namespace printed
{

/** Result of one static timing pass. */
struct TimingReport
{
    /** Longest input/flop -> primary-output path [us]. */
    double outputDelayUs = 0;

    /** Longest path ending at a sequential-cell input [us]. */
    double regPathUs = 0;

    /** Overall critical path: max of the two above [us]. */
    double criticalPathUs = 0;

    /**
     * Minimum clock period [us]: the register-to-register critical
     * path, floored at the flop clk-to-q delay. Purely combinational
     * netlists use the critical combinational delay instead.
     */
    double periodUs = 0;

    /** Maximum clock frequency 1/periodUs [Hz]. */
    double fmaxHz = 0;
};

/** Run static timing analysis of a netlist in a technology. */
TimingReport analyzeTiming(const Netlist &netlist,
                           const CellLibrary &lib);

} // namespace printed

#endif // PRINTED_ANALYSIS_TIMING_HH
