#include "timing.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/units.hh"

namespace printed
{

namespace
{

struct Arrival
{
    double rise = 0;
    double fall = 0;

    double worst() const { return std::max(rise, fall); }
};

} // anonymous namespace

TimingReport
analyzeTiming(const Netlist &netlist, const CellLibrary &lib)
{
    std::vector<Arrival> arrival(netlist.netCount());

    // Launch points: sequential outputs start at clk-to-q.
    for (GateId gi = 0; gi < netlist.gateCount(); ++gi) {
        const Gate &g = netlist.gate(gi);
        if (!cellIsSequential(g.kind))
            continue;
        const CellSpec &spec = lib.cell(g.kind);
        arrival[g.out].rise =
            std::max(arrival[g.out].rise, spec.rise_us);
        arrival[g.out].fall =
            std::max(arrival[g.out].fall, spec.fall_us);
    }

    const auto order = netlist.levelize();
    for (GateId gi : order) {
        const Gate &g = netlist.gate(gi);
        const CellSpec &spec = lib.cell(g.kind);

        double in_rise = arrival[g.in0].rise;
        double in_fall = arrival[g.in0].fall;
        if (g.in1 != invalidNet) {
            in_rise = std::max(in_rise, arrival[g.in1].rise);
            in_fall = std::max(in_fall, arrival[g.in1].fall);
        }

        double out_rise, out_fall;
        if (cellIsNonMonotone(g.kind) ||
            g.kind == CellKind::TSBUFX1) {
            // Either input transition can cause either output
            // transition (TSBUF: the enable pin is non-monotone).
            const double in_worst = std::max(in_rise, in_fall);
            out_rise = in_worst + spec.rise_us;
            out_fall = in_worst + spec.fall_us;
        } else if (cellIsInverting(g.kind)) {
            out_rise = in_fall + spec.rise_us;
            out_fall = in_rise + spec.fall_us;
        } else {
            out_rise = in_rise + spec.rise_us;
            out_fall = in_fall + spec.fall_us;
        }

        // Multi-driver buses accumulate the worst arrival.
        arrival[g.out].rise = std::max(arrival[g.out].rise, out_rise);
        arrival[g.out].fall = std::max(arrival[g.out].fall, out_fall);
    }

    TimingReport report;
    for (const auto &p : netlist.outputs())
        report.outputDelayUs =
            std::max(report.outputDelayUs, arrival[p.net].worst());

    bool has_flops = false;
    for (GateId gi = 0; gi < netlist.gateCount(); ++gi) {
        const Gate &g = netlist.gate(gi);
        if (!cellIsSequential(g.kind))
            continue;
        has_flops = true;
        double path = arrival[g.in0].worst();
        if (g.in1 != invalidNet)
            path = std::max(path, arrival[g.in1].worst());
        report.regPathUs = std::max(report.regPathUs, path);
    }

    report.criticalPathUs =
        std::max(report.outputDelayUs, report.regPathUs);

    if (has_flops) {
        report.periodUs =
            std::max(report.regPathUs, lib.flopPeriodFloorUs());
    } else {
        report.periodUs = report.criticalPathUs;
    }
    fatalIf(report.periodUs <= 0,
            "analyzeTiming: empty netlist has no period");
    report.fmaxHz = 1.0 / usToSeconds(report.periodUs);
    return report;
}

} // namespace printed
