#include "area.hh"

namespace printed
{

AreaReport
areaOfHistogram(const std::array<std::size_t, numCellKinds> &histogram,
                const CellLibrary &lib)
{
    AreaReport report;
    for (std::size_t i = 0; i < numCellKinds; ++i) {
        const auto kind = static_cast<CellKind>(i);
        const double area =
            double(histogram[i]) * lib.cell(kind).area_mm2;
        report.perCell_mm2[i] = area;
        report.total_mm2 += area;
        if (cellIsSequential(kind))
            report.seq_mm2 += area;
        else
            report.comb_mm2 += area;
    }
    return report;
}

AreaReport
analyzeArea(const Netlist &netlist, const CellLibrary &lib)
{
    return areaOfHistogram(netlist.cellHistogram(), lib);
}

} // namespace printed
