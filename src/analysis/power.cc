#include "power.hh"

#include "common/logging.hh"

namespace printed
{

PowerReport
powerOfHistogram(const std::array<std::size_t, numCellKinds> &histogram,
                 const CellLibrary &lib, double frequency_hz,
                 double activity)
{
    fatalIf(frequency_hz < 0, "powerOfHistogram: negative frequency");
    fatalIf(activity < 0 || activity > 2.0,
            "powerOfHistogram: implausible activity factor");

    PowerReport report;
    report.frequencyHz = frequency_hz;
    report.activity = activity;

    for (std::size_t i = 0; i < numCellKinds; ++i) {
        const auto kind = static_cast<CellKind>(i);
        const double count = double(histogram[i]);
        if (count == 0)
            continue;
        // nJ * Hz = nW; convert to mW with 1e-6.
        const double dyn_mw = count * activity *
                              lib.cell(kind).energy_nJ *
                              frequency_hz * 1e-6;
        const double stat_mw = count * lib.staticPowerUw(kind) * 1e-3;
        report.dynamic_mW += dyn_mw;
        report.static_mW += stat_mw;
        if (cellIsSequential(kind))
            report.seq_mW += dyn_mw + stat_mw;
        else
            report.comb_mW += dyn_mw + stat_mw;
    }

    report.total_mW = report.dynamic_mW + report.static_mW;
    if (frequency_hz > 0) {
        // mW / Hz = mJ; convert to nJ with 1e6.
        report.energyPerCycle_nJ =
            report.total_mW / frequency_hz * 1e6;
    }
    return report;
}

PowerReport
analyzePower(const Netlist &netlist, const CellLibrary &lib,
             double frequency_hz, double activity)
{
    return powerOfHistogram(netlist.cellHistogram(), lib, frequency_hz,
                            activity);
}

} // namespace printed
