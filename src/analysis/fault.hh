/**
 * @file
 * Gate-level fault injection and functional-yield Monte Carlo.
 *
 * Section 3.1's yield math (analysis/yield.hh) is *pessimistic*: it
 * assumes every defective printed device kills the circuit. In
 * reality many defects land on gates whose exact value never
 * matters - logic that is masked by the workload, redundant after
 * hardening, or simply never observed. This module measures that
 * gap:
 *
 *   1. FaultModel draws per-gate-instance defects (stuck-at-0/1 and
 *      input-output pin bridges) from the same device-yield
 *      parameter the analytic model uses, so "a defect occurred" is
 *      calibrated identically in both.
 *   2. Defect maps are overlaid on a GateSimulator
 *      (GateSimulator::setFaults) without copying the netlist, so
 *      thousands of Monte-Carlo trials per design stay cheap.
 *   3. measureFunctionalYield() runs real TP-ISA workloads
 *      (src/workloads/) on the faulted core and classifies every
 *      defect map as fatal, workload-masked, or fully benign.
 *
 * Determinism contract: every trial's defect map depends only on
 * (model.seed, trial index, replica index) via faultTrialSeed(), and
 * trials run on the deterministic parallel layer
 * (common/parallel.hh) with per-trial result slots, so reports are
 * bit-identical across runs and across thread counts.
 */

#ifndef PRINTED_ANALYSIS_FAULT_HH
#define PRINTED_ANALYSIS_FAULT_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "netlist/netlist.hh"
#include "sim/simulator.hh"
#include "workloads/golden.hh"

namespace printed
{

class ThreadPool;

/** Defect-draw parameters. */
struct FaultModel
{
    /**
     * Probability that one printed device works (Section 3.1:
     * 90-99% measured for EGFET). A gate with d devices
     * (cellDeviceCount) is defective with 1 - deviceYield^d,
     * exactly the analytic model's per-cell failure probability.
     */
    double deviceYield = 0.9999;

    /**
     * Fraction of combinational-cell defects modeled as
     * input-output pin bridges (adjacent-trace shorts, wired-AND);
     * the rest are stuck-at-0/1 in equal shares. Sequential cells
     * and tri-state buffers always fail as stuck-at.
     */
    double bridgeFraction = 0.2;

    /** Master seed of the Monte Carlo. */
    std::uint64_t seed = 1;
};

/** The defects of one Monte-Carlo trial. */
struct DefectMap
{
    std::uint64_t seed = 0; ///< trial seed the map was drawn from
    std::vector<InjectedFault> faults;

    bool empty() const { return faults.empty(); }
};

/**
 * Per-trial seed derivation: a SplitMix64-style mix of the master
 * seed, trial index, and replica index. This is the determinism
 * contract - trial t of replica r always sees the same defects, no
 * matter which thread runs it.
 */
std::uint64_t faultTrialSeed(std::uint64_t seed, std::uint64_t trial,
                             std::uint64_t replica = 0);

/** Draw a defect map for one netlist from one trial seed. */
DefectMap drawDefects(const Netlist &netlist, const FaultModel &model,
                      std::uint64_t trialSeed);

/**
 * Draw a defect map into a caller-owned buffer (cleared first, the
 * fault vector's capacity is reused). The Monte-Carlo loops draw one
 * map per (trial, replica); reusing one buffer per worker keeps the
 * hot loop allocation-free.
 */
void drawDefectsInto(const Netlist &netlist, const FaultModel &model,
                     std::uint64_t trialSeed, DefectMap &out);

/** Classification of one defect map against the workloads. */
enum class TrialOutcome
{
    FullyBenign,    ///< no forced value ever differed (or no defect)
    WorkloadMasked, ///< defects activated, results still correct
    Fatal,          ///< wrong results, illegal state, or no halt
};

/** Gate-level engine running the Monte-Carlo trials. */
enum class SimEngine : std::uint8_t
{
    /**
     * 64-lane bit-parallel engine (sim/batch_simulator.hh): trials
     * are claimed in blocks of 64 per worker and advance together
     * through one shared netlist pass. Bit-identical to Scalar for
     * the same seed (tests/test_fault.cc), ~an order of magnitude
     * faster.
     */
    Batch,
    /** One GateSimulator trial at a time: the golden reference. */
    Scalar,
};

/** Functional-yield Monte-Carlo configuration. */
struct FunctionalYieldConfig
{
    FaultModel fault;

    /** Gate-level engine (results do not depend on the choice). */
    SimEngine engine = SimEngine::Batch;

    /** Monte-Carlo trials (each one full defect draw + run). */
    unsigned trials = 1000;

    /** Worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;

    /**
     * When set, trials run on this caller-owned pool instead of a
     * transient one (`threads` is ignored). Long-running callers —
     * the printedd server — share one pool across requests so the
     * process never oversubscribes. Results are identical either
     * way (the determinism contract is per-trial, not per-pool).
     */
    ThreadPool *pool = nullptr;

    /**
     * Independent copies of the core per trial. Models a larger
     * design (e.g. a Z80-class gate count) as an array of cores
     * that must all work: defects are drawn per replica, and a
     * trial passes only if every replica passes.
     */
    unsigned replicas = 1;

    /**
     * Workloads run per trial, at the core's native width. Every
     * kernel must produce golden results on the fault-free core
     * (checked up front). crc8 requires a single-cycle core.
     */
    std::vector<Kernel> kernels = {Kernel::Mult};
};

/** Result of one functional-yield Monte Carlo. */
struct FunctionalYieldReport
{
    unsigned trials = 0;
    unsigned fatalTrials = 0;
    unsigned maskedTrials = 0;  ///< defects activated, all correct
    unsigned benignTrials = 0;  ///< defects present, never activated
    unsigned defectFreeTrials = 0; ///< no defect drawn at all

    std::size_t devicesPerReplica = 0;
    unsigned replicas = 1;

    /** Pessimistic analytic bound: deviceYield^(devices*replicas). */
    double analyticYield = 0;

    /** Fraction of trials that computed all workloads correctly. */
    double
    functionalYield() const
    {
        return trials ? 1.0 - double(fatalTrials) / double(trials)
                      : 0.0;
    }

    /** Monte-Carlo estimate of the analytic (defect-free) yield. */
    double
    defectFreeRate() const
    {
        return trials ? double(defectFreeTrials) / double(trials)
                      : 0.0;
    }
};

/**
 * Measure the functional yield of a core netlist under the fault
 * model: run cfg.trials seeded Monte-Carlo trials, each drawing
 * defect maps for cfg.replicas copies of the core and executing
 * cfg.kernels on every defective copy at gate level.
 *
 * @param core a netlist built by buildCore(config) - or a hardened
 *             derivative with identical ports (synth::harden)
 * @param config the core configuration the netlist implements
 */
FunctionalYieldReport
measureFunctionalYield(const Netlist &core, const CoreConfig &config,
                       const FunctionalYieldConfig &cfg);

} // namespace printed

#endif // PRINTED_ANALYSIS_FAULT_HH
