/**
 * @file
 * Process-variation analysis for printed circuits.
 *
 * Printed transistors exhibit far larger parameter spreads than
 * silicon (the paper's EGFET model literature [86, 87] centers on
 * modeling printed process variations). This module runs
 * Monte-Carlo static timing: each cell instance draws a lognormal
 * delay multiplier, the levelized arrival pass is repeated per
 * sample, and the fmax distribution (mean / sigma / percentiles)
 * is reported. Used by bench_variation_yield to show how much
 * guard-band a printed core needs.
 */

#ifndef PRINTED_ANALYSIS_VARIATION_HH
#define PRINTED_ANALYSIS_VARIATION_HH

#include <cstdint>
#include <vector>

#include "netlist/netlist.hh"
#include "tech/library.hh"

namespace printed
{

/** Parameters of the per-cell delay-variation model. */
struct VariationModel
{
    /**
     * Sigma of ln(delay multiplier). Printed EGFET devices show
     * delay spreads of tens of percent; 0.25 gives a ~25% sigma.
     */
    double lnSigma = 0.25;

    /** Monte-Carlo sample count. */
    unsigned samples = 200;

    /**
     * PRNG seed. Sample s draws its multipliers from an
     * independent stream seeded mixSeed(seed, s), so the report is
     * bit-identical for every thread count.
     */
    std::uint64_t seed = 1;

    /** Worker threads; 0 = hardware concurrency, 1 = serial. */
    unsigned threads = 1;
};

/** Distribution of the minimum clock period over process samples. */
struct VariationReport
{
    double nominalPeriodUs = 0; ///< no-variation STA period
    double meanPeriodUs = 0;
    double stdDevUs = 0;
    double p50Us = 0;
    double p95Us = 0;
    double p99Us = 0;
    double worstUs = 0;

    /** fmax with a 95th-percentile guard-band [Hz]. */
    double guardedFmaxHz() const { return 1e6 / p95Us; }

    /** Guard-band the variation demands vs nominal (>= 1). */
    double
    guardBand() const
    {
        return p95Us / nominalPeriodUs;
    }
};

/**
 * Nearest-rank p-quantile of an ascending-sorted sample vector.
 * @param sorted non-empty, ascending
 * @param p quantile in [0, 1]; p = 0.5 is the median, p = 1 the max
 *
 * This is the estimator analyzeVariation() uses for its p50/p95/p99
 * columns, exposed so the percentile math is unit-testable against
 * known distributions.
 */
double percentile(const std::vector<double> &sorted, double p);

/**
 * Monte-Carlo timing analysis of a netlist under per-cell delay
 * variation.
 */
VariationReport analyzeVariation(const Netlist &netlist,
                                 const CellLibrary &lib,
                                 const VariationModel &model = {});

} // namespace printed

#endif // PRINTED_ANALYSIS_VARIATION_HH
