#include "variation.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/trace.hh"

namespace printed
{

namespace
{

/** Standard-normal sample via Box-Muller on SplitMix64 uniforms. */
double
gaussian(Rng &rng)
{
    // Avoid log(0) by offsetting into (0, 1].
    const double u1 =
        (double(rng.next() >> 11) + 1.0) / 9007199254740993.0;
    const double u2 =
        double(rng.next() >> 11) / 9007199254740992.0;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

struct Arrival
{
    double rise = 0;
    double fall = 0;
    double worst() const { return std::max(rise, fall); }
};

/**
 * One STA pass with per-gate delay multipliers. `arrival` is a
 * caller-owned scratch buffer (resized and cleared here) so the
 * Monte-Carlo loop below stays allocation-free per sample.
 */
double
samplePeriod(const Netlist &nl, const CellLibrary &lib,
             const std::vector<GateId> &order,
             const std::vector<double> &mult,
             std::vector<Arrival> &arrival)
{
    arrival.assign(nl.netCount(), Arrival{});
    for (GateId gi = 0; gi < nl.gateCount(); ++gi) {
        const Gate &g = nl.gate(gi);
        if (!cellIsSequential(g.kind))
            continue;
        const CellSpec &spec = lib.cell(g.kind);
        arrival[g.out].rise = std::max(arrival[g.out].rise,
                                       spec.rise_us * mult[gi]);
        arrival[g.out].fall = std::max(arrival[g.out].fall,
                                       spec.fall_us * mult[gi]);
    }

    for (GateId gi : order) {
        const Gate &g = nl.gate(gi);
        const CellSpec &spec = lib.cell(g.kind);
        double in_rise = arrival[g.in0].rise;
        double in_fall = arrival[g.in0].fall;
        if (g.in1 != invalidNet) {
            in_rise = std::max(in_rise, arrival[g.in1].rise);
            in_fall = std::max(in_fall, arrival[g.in1].fall);
        }
        double out_rise, out_fall;
        if (cellIsNonMonotone(g.kind) ||
            g.kind == CellKind::TSBUFX1) {
            const double w = std::max(in_rise, in_fall);
            out_rise = w + spec.rise_us * mult[gi];
            out_fall = w + spec.fall_us * mult[gi];
        } else if (cellIsInverting(g.kind)) {
            out_rise = in_fall + spec.rise_us * mult[gi];
            out_fall = in_rise + spec.fall_us * mult[gi];
        } else {
            out_rise = in_rise + spec.rise_us * mult[gi];
            out_fall = in_fall + spec.fall_us * mult[gi];
        }
        arrival[g.out].rise = std::max(arrival[g.out].rise, out_rise);
        arrival[g.out].fall = std::max(arrival[g.out].fall, out_fall);
    }

    double out_delay = 0, reg_path = 0;
    bool has_flops = false;
    for (const auto &p : nl.outputs())
        out_delay = std::max(out_delay, arrival[p.net].worst());
    for (GateId gi = 0; gi < nl.gateCount(); ++gi) {
        const Gate &g = nl.gate(gi);
        if (!cellIsSequential(g.kind))
            continue;
        has_flops = true;
        double path = arrival[g.in0].worst();
        if (g.in1 != invalidNet)
            path = std::max(path, arrival[g.in1].worst());
        reg_path = std::max(reg_path, path);
    }
    if (has_flops)
        return std::max(reg_path, lib.flopPeriodFloorUs());
    return std::max(out_delay, reg_path);
}

} // anonymous namespace

double
percentile(const std::vector<double> &sorted, double p)
{
    fatalIf(sorted.empty(), "percentile: empty sample set");
    fatalIf(p < 0 || p > 1, "percentile: p must be in [0, 1]");
    const std::size_t idx = std::min(
        sorted.size() - 1, std::size_t(p * double(sorted.size())));
    return sorted[idx];
}

VariationReport
analyzeVariation(const Netlist &netlist, const CellLibrary &lib,
                 const VariationModel &model)
{
    fatalIf(model.samples == 0, "analyzeVariation: need samples");
    fatalIf(model.lnSigma < 0, "analyzeVariation: negative sigma");
    netlist.validate();
    trace::Span span("variation.analyze", netlist.name());
    const auto mcStart = std::chrono::steady_clock::now();
    const auto order = netlist.levelize();

    VariationReport report;
    {
        const std::vector<double> unit(netlist.gateCount(), 1.0);
        std::vector<Arrival> arrival;
        report.nominalPeriodUs =
            samplePeriod(netlist, lib, order, unit, arrival);
    }

    // Each sample owns an RNG stream seeded from its index, so the
    // period vector — and everything reduced from it below, in
    // index order — is bit-identical for any thread count. Workers
    // claim samples in blocks of 64 (matching the fault MC's lane
    // blocks) and reuse one multiplier and one arrival buffer each,
    // so the hot loop never allocates; per-sample seeds depend only
    // on the sample index, so the block shape cannot change results.
    constexpr std::size_t blockSamples = 64;
    const std::size_t nBlocks =
        (model.samples + blockSamples - 1) / blockSamples;
    unsigned threads = model.threads
                           ? model.threads
                           : ThreadPool::defaultThreadCount();
    threads = unsigned(std::min<std::size_t>(threads, nBlocks));
    ThreadPool pool(threads);

    struct WorkerScratch
    {
        std::vector<double> mult;
        std::vector<Arrival> arrival;
    };
    std::vector<WorkerScratch> scratch(pool.threadCount());
    std::vector<double> periods(model.samples);
    pool.parallelForWorkers(
        nBlocks, [&](std::size_t b, unsigned worker) {
            WorkerScratch &ws = scratch[worker];
            ws.mult.resize(netlist.gateCount());
            const std::size_t begin = b * blockSamples;
            const std::size_t end = std::min<std::size_t>(
                begin + blockSamples, model.samples);
            for (std::size_t s = begin; s < end; ++s) {
                Rng rng(mixSeed(model.seed, s));
                for (double &m : ws.mult)
                    m = std::exp(model.lnSigma * gaussian(rng));
                periods[s] = samplePeriod(netlist, lib, order,
                                          ws.mult, ws.arrival);
            }
        });

    double sum = 0, sum_sq = 0;
    for (double period : periods) {
        sum += period;
        sum_sq += period * period;
    }

    std::sort(periods.begin(), periods.end());
    const double n = double(model.samples);
    report.meanPeriodUs = sum / n;
    report.stdDevUs = std::sqrt(
        std::max(0.0, sum_sq / n -
                          report.meanPeriodUs * report.meanPeriodUs));
    report.p50Us = percentile(periods, 0.50);
    report.p95Us = percentile(periods, 0.95);
    report.p99Us = percentile(periods, 0.99);
    report.worstUs = periods.back();

    metrics::counter("variation.samples").add(model.samples);
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - mcStart)
            .count();
    if (seconds > 0)
        metrics::gauge("variation.samples_per_s")
            .set(double(model.samples) / seconds);
    return report;
}

} // namespace printed
