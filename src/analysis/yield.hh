/**
 * @file
 * Manufacturing-yield analysis for printed circuits.
 *
 * Section 3.1 of the paper reports measured EGFET device yields of
 * 90-99%. At those rates circuit yield decays geometrically in the
 * device count, which is a first-order argument for the paper's
 * low-gate-count cores: a 450-cell TP-ISA core is printable at
 * useful yields where a 12,000-cell openMSP430 is essentially never
 * defect-free. This module computes per-design yield and the
 * expected number of prints per working unit.
 */

#ifndef PRINTED_ANALYSIS_YIELD_HH
#define PRINTED_ANALYSIS_YIELD_HH

#include <cstddef>

#include "netlist/netlist.hh"

namespace printed
{

/** Yield model parameters. */
struct YieldModel
{
    /**
     * Probability that one printed transistor works, in [0, 1].
     * The paper's measured EGFET device yield is 90-99%; the
     * default sits at the optimistic end, which is what makes
     * microprocessors printable at all.
     */
    double deviceYield = 0.99;

    /**
     * Transistors per cell stage (transistor-resistor logic uses
     * one driving transistor per stage; the pull-up resistor's
     * yield is folded into deviceYield).
     */
    double devicesPerStage = 1.0;
};

/** Yield results for one design. */
struct YieldReport
{
    std::size_t devices = 0;  ///< modeled printed-device count
    double yield = 0;         ///< probability a print works
    double printsPerGood = 0; ///< expected prints per working unit
};

/**
 * Printed-device count of one cell instance under the stage model
 * (one driving transistor per resistor-loaded stage; mirrors
 * tech/library.cc). Shared by the analytic yield model and the
 * fault-injection defect draw (analysis/fault.hh), so a cell's
 * defect probability and its analytic yield contribution agree.
 */
std::size_t cellDeviceCount(CellKind kind);

/** Device count of a netlist under the stage model. */
std::size_t deviceCount(const Netlist &netlist);

/** Yield of a netlist. */
YieldReport analyzeYield(const Netlist &netlist,
                         const YieldModel &model = {});

/** Yield for a raw device count (e.g. legacy-core gate models). */
YieldReport yieldForDevices(std::size_t devices,
                            const YieldModel &model = {});

} // namespace printed

#endif // PRINTED_ANALYSIS_YIELD_HH
