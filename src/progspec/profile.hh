/**
 * @file
 * Dynamic leg of the Table 7 study: while analyze.hh measures the
 * *static* architectural state each benchmark needs, this module
 * measures its *dynamic* cost by actually running the benchmark's
 * IR form on a legacy core's instruction-set simulator — M machines
 * with distinct inputs at once, on the batch engine of
 * legacy/batch_iss.hh. Every machine's outputs are validated
 * against the golden models, so the numbers a report prints are
 * known-correct, and the result carries the cross-engine FNV
 * fingerprint (batch and scalar engines must render byte-identical
 * tables).
 */

#ifndef PRINTED_PROGSPEC_PROFILE_HH
#define PRINTED_PROGSPEC_PROFILE_HH

#include <vector>

#include "legacy/batch_iss.hh"
#include "workloads/golden.hh"

namespace printed
{

/** Dynamic profile of one Table 7 benchmark on one legacy core. */
struct KernelDynProfile
{
    Kernel kind = Kernel::Mult;
    unsigned width = 8;
    std::size_t machines = 0;
    std::size_t codeBytes = 0;       ///< compiled program size
    std::uint64_t instructions = 0;  ///< total over all machines
    std::uint64_t cycles = 0;        ///< total over all machines
    bool outputsMatchGolden = false; ///< every machine, every output
    std::uint64_t outputsFnv = 0;    ///< engine/thread invariant
};

/** The seven Table 7 benchmarks, in the table's row order. */
const std::vector<Kernel> &table7Kernels();

/**
 * Profile one benchmark: compile its 8-bit IR form for `core`, run
 * `machines` machines (machine m gets defaultInputs(kind, 8,
 * 1 + m)) under `opts`, validate every machine against the golden
 * model, and aggregate the dynamic counts.
 */
KernelDynProfile
profileKernelDynamic(legacy::LegacyCore core, Kernel kind,
                     std::size_t machines,
                     const legacy::IssBatchOptions &opts = {});

/** profileKernelDynamic over all of table7Kernels(), in order. */
std::vector<KernelDynProfile>
profileTable7Dynamic(legacy::LegacyCore core, std::size_t machines,
                     const legacy::IssBatchOptions &opts = {});

} // namespace printed

#endif // PRINTED_PROGSPEC_PROFILE_HH
