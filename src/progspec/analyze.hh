/**
 * @file
 * Program-specific ISA specialization (paper Section 7, Table 7).
 *
 * Printing lets every program get its own core: since the static
 * instruction count, data footprint, BAR usage, and flag usage are
 * known at print time, the PC, BARs, flags register, and operand
 * fields can all be shrunk to exactly what the program needs -
 * removing architectural registers (the dominant printed cost) and
 * the logic that feeds them.
 */

#ifndef PRINTED_PROGSPEC_ANALYZE_HH
#define PRINTED_PROGSPEC_ANALYZE_HH

#include "core/config.hh"
#include "isa/program.hh"

namespace printed
{

/** Result of the static analysis of one program (a Table 7 row). */
struct ProgSpecAnalysis
{
    unsigned pcBits = 8;       ///< ceil(log2(static instructions))
    unsigned barBits = 8;      ///< ceil(log2(data words used))
    unsigned writableBars = 0; ///< distinct SET-BAR targets used
    unsigned flagMask = 0;     ///< flags actually read (S/Z/C/V)
    unsigned flagCount = 0;    ///< popcount of flagMask
    unsigned op1Bits = 8;      ///< required first-operand width
    unsigned op2Bits = 8;      ///< required second-operand width
    unsigned opcodeMask = 0;   ///< primary opcodes the program uses

    /**
     * Specialized instruction width: 4 opcode + 4 control +
     * op1Bits + op2Bits (Table 7's rightmost column). The operand
     * fields may be asymmetric in the ROM.
     */
    unsigned instructionBits() const
    {
        return 8 + op1Bits + op2Bits;
    }
};

/**
 * Statically analyze a program.
 * @param program the TP-ISA program
 * @param dmem_words exact data-memory footprint (D in Section 7)
 */
ProgSpecAnalysis analyzeProgram(const Program &program,
                                std::size_t dmem_words);

/**
 * Derive the program-specific core configuration: single-cycle,
 * shrunk PC / BARs / flags / operands. The generated core drops
 * the unused registers and their feeding logic (BAR muxes, zero
 * detect, etc.) via the optimizer.
 */
CoreConfig specializedConfig(const Program &program,
                             std::size_t dmem_words);

} // namespace printed

#endif // PRINTED_PROGSPEC_ANALYZE_HH
