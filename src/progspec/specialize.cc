#include "specialize.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace printed
{

Program
specializeProgram(const Program &program, const CoreConfig &config)
{
    program.check();
    config.check();
    fatalIf(config.isa.datawidth != program.isa.datawidth,
            "specializeProgram: datawidth mismatch");

    Program out;
    out.name = program.name + "_ps";
    out.isa = config.isa;
    out.labels = program.labels;

    // Compacted bmask: bit i selects the i-th live flag (V,C,Z,S
    // order), matching the specialized core's branch unit.
    std::vector<unsigned> live_bits;
    for (unsigned b = 0; b < 4; ++b)
        if (config.flagMask & (1u << b))
            live_bits.push_back(b);

    for (const Instruction &inst : program.code) {
        Instruction ni = inst;
        const Mnemonic m = inst.mnemonic;
        if (isBranch(m)) {
            // Target fits pcBits by construction.
            fatalIf(inst.op1 >= (1u << config.isa.pcBits),
                    "specializeProgram: branch target overflow");
            unsigned mask = 0;
            for (std::size_t i = 0; i < live_bits.size(); ++i)
                if (inst.op2 & (1u << live_bits[i]))
                    mask |= 1u << i;
            fatalIf((inst.op2 & 0xF & ~config.flagMask) != 0,
                    "specializeProgram: branch reads a dead flag");
            ni.op2 = std::uint8_t(mask);
        } else {
            const OperandFields f1 =
                splitOperand(inst.op1, program.isa);
            ni.op1 = makeOperand(f1.barSel, f1.offset, config.isa);
            if (m == Mnemonic::STORE || m == Mnemonic::SETBAR) {
                ni.op2 = inst.op2; // immediate / BAR index
                fatalIf(ni.op2 >= (1u << config.isa.operandBits),
                        "specializeProgram: immediate overflow");
            } else {
                const OperandFields f2 =
                    splitOperand(inst.op2, program.isa);
                ni.op2 =
                    makeOperand(f2.barSel, f2.offset, config.isa);
            }
        }
        out.code.push_back(ni);
    }
    out.check();
    return out;
}

} // namespace printed
