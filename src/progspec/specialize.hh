/**
 * @file
 * Program re-encoding for program-specific cores.
 *
 * A specialized core decodes narrowed instruction words (shrunk
 * operand fields, compacted branch masks). specializeProgram()
 * transcodes a standard TP-ISA program into that layout so it can
 * be placed in the narrow instruction ROM and executed on the
 * gate-level specialized core.
 */

#ifndef PRINTED_PROGSPEC_SPECIALIZE_HH
#define PRINTED_PROGSPEC_SPECIALIZE_HH

#include "core/config.hh"
#include "isa/program.hh"

namespace printed
{

/**
 * Re-encode a program for a specialized core configuration
 * (operand fields re-packed for the narrow BAR-select layout,
 * branch masks compacted to the live flags in V,C,Z,S order).
 * fatal()s if anything does not fit - callers derive `config` from
 * specializedConfig(program, ...) so it always fits.
 */
Program specializeProgram(const Program &program,
                          const CoreConfig &config);

} // namespace printed

#endif // PRINTED_PROGSPEC_SPECIALIZE_HH
