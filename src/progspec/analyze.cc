#include "analyze.hh"

#include <algorithm>
#include <set>

#include "common/bits.hh"
#include "common/logging.hh"

namespace printed
{

namespace
{

/** Bits needed to hold values 0..v (at least 1). */
unsigned
bitsForValue(std::uint64_t v)
{
    return std::max(1u, ceilLog2(v + 1));
}

} // anonymous namespace

ProgSpecAnalysis
analyzeProgram(const Program &program, std::size_t dmem_words)
{
    program.check();
    fatalIf(dmem_words == 0, "analyzeProgram: empty data memory");

    ProgSpecAnalysis a;
    a.pcBits = std::max(1u, ceilLog2(program.size()));
    a.barBits = std::max(1u, ceilLog2(dmem_words));

    std::set<unsigned> bars_written;
    unsigned max_off1 = 0, max_off2 = 0;
    unsigned max_imm = 0;
    unsigned max_target = 0;
    unsigned flag_mask = 0;
    bool bar1_used_in_addressing = false;

    for (const Instruction &inst : program.code) {
        const Mnemonic m = inst.mnemonic;

        a.opcodeMask |=
            1u << static_cast<unsigned>(opcodeOf(m));
        if (readsCarry(m))
            flag_mask |= 1u << flagBitC;

        if (isBranch(m)) {
            flag_mask |= inst.op2 & 0xF;
            max_target = std::max(max_target, unsigned(inst.op1));
            continue;
        }

        // Address operand 1 (all remaining formats).
        const OperandFields f1 = splitOperand(inst.op1, program.isa);
        max_off1 = std::max(max_off1, f1.offset);
        if (f1.barSel != 0)
            bar1_used_in_addressing = true;

        if (m == Mnemonic::STORE) {
            max_imm = std::max(max_imm, unsigned(inst.op2));
        } else if (m == Mnemonic::SETBAR) {
            bars_written.insert(inst.op2);
        } else {
            const OperandFields f2 =
                splitOperand(inst.op2, program.isa);
            max_off2 = std::max(max_off2, f2.offset);
            if (f2.barSel != 0)
                bar1_used_in_addressing = true;
        }
    }

    a.writableBars =
        unsigned(bars_written.size());
    fatalIf(!bars_written.empty() && !bar1_used_in_addressing,
            "analyzeProgram: SET-BAR without BAR-relative access");

    a.flagMask = flag_mask;
    a.flagCount = 0;
    for (unsigned b = 0; b < 4; ++b)
        if (flag_mask & (1u << b))
            ++a.flagCount;

    // Operand widths: each operand must hold its worst-case use.
    const unsigned sel_bits =
        a.writableBars == 0 ? 0
                            : ceilLog2(a.writableBars + 1);
    unsigned op1 = bitsForValue(max_off1) + sel_bits;
    op1 = std::max(op1, a.pcBits); // branch targets travel in op1
    unsigned op2 = std::max(bitsForValue(max_off2) + sel_bits,
                            bitsForValue(max_imm));
    op2 = std::max(op2, a.flagCount);           // compacted bmask
    if (a.writableBars > 0)                     // SET-BAR index
        op2 = std::max(op2, bitsForValue(a.writableBars));
    a.op1Bits = std::min(8u, op1);
    a.op2Bits = std::min(8u, std::max(1u, op2));
    return a;
}

CoreConfig
specializedConfig(const Program &program, std::size_t dmem_words)
{
    const ProgSpecAnalysis a = analyzeProgram(program, dmem_words);

    CoreConfig cfg;
    cfg.stages = 1; // single-cycle cores always win (Section 8)
    cfg.isa.datawidth = program.isa.datawidth;
    cfg.isa.barCount = a.writableBars + 1;
    cfg.isa.pcBits = a.pcBits;
    // The synthesized decoder uses symmetric operand fields sized
    // for the wider of the two (the ROM may pack asymmetrically).
    cfg.isa.operandBits =
        std::max({a.op1Bits, a.op2Bits, cfg.isa.barSelBits() + 1});
    cfg.isa.flagCount = a.flagCount;
    cfg.flagMask = a.flagMask;
    cfg.barBits = a.barBits;
    cfg.opcodeMask = a.opcodeMask;
    cfg.addrBits = std::max(1u, ceilLog2(dmem_words));
    // Offsets must still reach every word the program touches.
    cfg.isa.operandBits = std::max(
        cfg.isa.operandBits, cfg.isa.barSelBits() + cfg.addrBits);
    cfg.isa.operandBits = std::min(8u, cfg.isa.operandBits);
    cfg.check();
    return cfg;
}

} // namespace printed
