#include "profile.hh"

#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace printed
{

const std::vector<Kernel> &
table7Kernels()
{
    // Table 7's alphabetical row order.
    static const std::vector<Kernel> kernels = {
        Kernel::Crc8,   Kernel::Div,   Kernel::DTree,
        Kernel::InSort, Kernel::IntAvg, Kernel::Mult,
        Kernel::THold,
    };
    return kernels;
}

KernelDynProfile
profileKernelDynamic(legacy::LegacyCore core, Kernel kind,
                     std::size_t machines,
                     const legacy::IssBatchOptions &opts)
{
    constexpr unsigned width = 8; // Table 7 uses the 8-bit variants
    const legacy::IrProgram prog = legacy::irKernel(kind, width);

    std::vector<std::vector<std::uint64_t>> inputs;
    inputs.reserve(machines);
    for (std::size_t m = 0; m < machines; ++m)
        inputs.push_back(defaultInputs(kind, width, 1 + m));

    const legacy::IssBatchResult res =
        legacy::runLegacyBatch(core, prog, inputs, opts);

    KernelDynProfile p;
    p.kind = kind;
    p.width = width;
    p.machines = machines;
    p.codeBytes = res.codeBytes;
    p.instructions = res.totalInstructions;
    p.cycles = res.totalCycles;
    p.outputsFnv = legacy::issResultFnv(res);
    p.outputsMatchGolden = true;
    for (std::size_t m = 0; m < machines; ++m) {
        const auto want = goldenOutputs(kind, width, inputs[m]);
        p.outputsMatchGolden =
            p.outputsMatchGolden &&
            res.status[m] == legacy::MachineStatus::Halted &&
            res.runs[m].outputs == want;
    }
    return p;
}

std::vector<KernelDynProfile>
profileTable7Dynamic(legacy::LegacyCore core, std::size_t machines,
                     const legacy::IssBatchOptions &opts)
{
    std::vector<KernelDynProfile> out;
    out.reserve(table7Kernels().size());
    for (Kernel kind : table7Kernels())
        out.push_back(
            profileKernelDynamic(core, kind, machines, opts));
    return out;
}

} // namespace printed
