#include "isa.hh"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/bits.hh"
#include "common/logging.hh"

namespace printed
{

namespace
{

struct MnemonicRow
{
    Mnemonic mnemonic;
    const char *name;
    Opcode opcode;
    ControlBits controls;
};

/** The instruction table of Figure 6. */
constexpr std::array<MnemonicRow, numMnemonics> mnemonicTable = {{
    {Mnemonic::ADD, "ADD", Opcode::ADD, {true, false, false, false}},
    {Mnemonic::ADC, "ADC", Opcode::ADD, {true, true, false, false}},
    {Mnemonic::SUB, "SUB", Opcode::ADD, {true, false, true, false}},
    {Mnemonic::CMP, "CMP", Opcode::ADD, {false, false, true, false}},
    {Mnemonic::SBB, "SBB", Opcode::ADD, {true, true, true, false}},
    {Mnemonic::AND, "AND", Opcode::AND, {true, false, false, false}},
    {Mnemonic::TEST, "TEST", Opcode::AND,
     {false, false, false, false}},
    {Mnemonic::OR, "OR", Opcode::OR, {true, false, false, false}},
    {Mnemonic::XOR, "XOR", Opcode::XOR, {true, false, false, false}},
    {Mnemonic::NOT, "NOT", Opcode::NOT, {true, false, false, false}},
    {Mnemonic::RL, "RL", Opcode::RL, {true, false, false, false}},
    {Mnemonic::RLC, "RLC", Opcode::RL, {true, true, false, false}},
    {Mnemonic::RR, "RR", Opcode::RR, {true, false, false, false}},
    {Mnemonic::RRC, "RRC", Opcode::RR, {true, true, false, false}},
    {Mnemonic::RRA, "RRA", Opcode::RR, {true, false, true, false}},
    {Mnemonic::STORE, "STORE", Opcode::STORE,
     {true, false, false, false}},
    {Mnemonic::SETBAR, "SET-BAR", Opcode::BAR,
     {false, false, false, false}},
    {Mnemonic::BR, "BR", Opcode::BR, {false, false, false, true}},
    {Mnemonic::BRN, "BRN", Opcode::BR, {false, false, true, true}},
}};

const MnemonicRow &
row(Mnemonic m)
{
    const auto idx = static_cast<std::size_t>(m);
    panicIf(idx >= numMnemonics, "bad Mnemonic");
    panicIf(mnemonicTable[idx].mnemonic != m,
            "mnemonicTable out of order");
    return mnemonicTable[idx];
}

} // anonymous namespace

Opcode
opcodeOf(Mnemonic m)
{
    return row(m).opcode;
}

ControlBits
controlsOf(Mnemonic m)
{
    return row(m).controls;
}

std::string
mnemonicName(Mnemonic m)
{
    return row(m).name;
}

std::optional<Mnemonic>
mnemonicFromName(const std::string &name)
{
    std::string upper = name;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (upper == "SETBAR")
        upper = "SET-BAR";
    for (const auto &r : mnemonicTable)
        if (upper == r.name)
            return r.mnemonic;
    return std::nullopt;
}

bool
isMType(Mnemonic m)
{
    const Opcode op = opcodeOf(m);
    return op != Opcode::STORE && op != Opcode::BAR &&
           op != Opcode::BR;
}

bool
isBinaryAlu(Mnemonic m)
{
    const Opcode op = opcodeOf(m);
    return op == Opcode::ADD || op == Opcode::AND ||
           op == Opcode::OR || op == Opcode::XOR;
}

bool
isUnaryAlu(Mnemonic m)
{
    const Opcode op = opcodeOf(m);
    return op == Opcode::NOT || op == Opcode::RL || op == Opcode::RR;
}

bool
isBranch(Mnemonic m)
{
    return opcodeOf(m) == Opcode::BR;
}

bool
readsCarry(Mnemonic m)
{
    return controlsOf(m).c;
}

bool
writesMemory(Mnemonic m)
{
    return controlsOf(m).w && opcodeOf(m) != Opcode::BAR;
}

unsigned
IsaConfig::barSelBits() const
{
    return ceilLog2(barCount);
}

void
IsaConfig::check() const
{
    fatalIf(datawidth != 4 && datawidth != 8 && datawidth != 16 &&
            datawidth != 32,
            "IsaConfig: datawidth must be 4, 8, 16, or 32");
    fatalIf(barCount < 1 || barCount > 4 || (barCount == 3),
            "IsaConfig: barCount must be 1, 2, or 4");
    fatalIf(pcBits == 0 || pcBits > 8, "IsaConfig: pcBits in 1..8");
    fatalIf(operandBits > 8 || operandBits < barSelBits(),
            "IsaConfig: operandBits in barSelBits..8");
    fatalIf(flagCount > 4, "IsaConfig: at most 4 flags");
}

std::uint32_t
encode(const Instruction &inst)
{
    return encode(inst, IsaConfig{});
}

std::uint32_t
encode(const Instruction &inst, const IsaConfig &config)
{
    const ControlBits cb = controlsOf(inst.mnemonic);
    const unsigned ob = config.operandBits;
    fatalIf(inst.op1 >= (1u << ob) || inst.op2 >= (1u << ob),
            "encode: operand does not fit a " + std::to_string(ob) +
            "-bit field");
    std::uint32_t word = 0;
    word = std::uint32_t(insertBits(word, 0, ob, inst.op2));
    word = std::uint32_t(insertBits(word, ob, ob, inst.op1));
    word = std::uint32_t(insertBits(word, 2 * ob + 0, 1, cb.b));
    word = std::uint32_t(insertBits(word, 2 * ob + 1, 1, cb.a));
    word = std::uint32_t(insertBits(word, 2 * ob + 2, 1, cb.c));
    word = std::uint32_t(insertBits(word, 2 * ob + 3, 1, cb.w));
    word = std::uint32_t(insertBits(
        word, 2 * ob + 4, 4,
        static_cast<unsigned>(opcodeOf(inst.mnemonic))));
    return word;
}

Instruction
decode(std::uint32_t word)
{
    fatalIf(word >> 24, "decode: word wider than 24 bits");
    const auto opcode_bits = unsigned(extractBits(word, 20, 4));
    fatalIf(opcode_bits >= numOpcodes,
            "decode: illegal opcode " + std::to_string(opcode_bits));
    const auto opcode = static_cast<Opcode>(opcode_bits);
    const ControlBits cb = {bit(word, 19) != 0, bit(word, 18) != 0,
                            bit(word, 17) != 0, bit(word, 16) != 0};

    for (const auto &r : mnemonicTable) {
        if (r.opcode == opcode && r.controls == cb) {
            Instruction inst;
            inst.mnemonic = r.mnemonic;
            inst.op1 = std::uint8_t(extractBits(word, 8, 8));
            inst.op2 = std::uint8_t(extractBits(word, 0, 8));
            return inst;
        }
    }
    fatal("decode: illegal control bits for opcode " +
          std::to_string(opcode_bits));
}

OperandFields
splitOperand(std::uint8_t operand, const IsaConfig &config)
{
    OperandFields fields;
    const unsigned sel_bits = config.barSelBits();
    const unsigned off_bits = config.offsetBits();
    fields.offset = unsigned(extractBits(operand, 0, off_bits));
    fields.barSel = unsigned(extractBits(operand, off_bits, sel_bits));
    return fields;
}

std::uint8_t
makeOperand(unsigned bar_sel, unsigned offset,
            const IsaConfig &config)
{
    const unsigned sel_bits = config.barSelBits();
    const unsigned off_bits = config.offsetBits();
    fatalIf(bar_sel >= config.barCount,
            "makeOperand: BAR index " + std::to_string(bar_sel) +
            " out of range for " + std::to_string(config.barCount) +
            "-BAR ISA");
    fatalIf(offset >= (1u << off_bits),
            "makeOperand: offset " + std::to_string(offset) +
            " does not fit in " + std::to_string(off_bits) +
            " offset bits");
    std::uint64_t v = offset;
    v = insertBits(v, off_bits, sel_bits, bar_sel);
    return std::uint8_t(v);
}

} // namespace printed
