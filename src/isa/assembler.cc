#include "assembler.hh"

#include <cctype>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace printed
{

namespace
{

/** Trim surrounding whitespace. */
std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Strip comments: ';' always; '#' only when not starting an
 *  immediate (i.e. not followed by a digit). */
std::string
stripComment(const std::string &line)
{
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ';')
            return line.substr(0, i);
        if (line[i] == '#' &&
            (i + 1 >= line.size() ||
             !std::isdigit(static_cast<unsigned char>(line[i + 1]))))
            return line.substr(0, i);
    }
    return line;
}

[[noreturn]] void
err(unsigned line_no, const std::string &msg)
{
    fatal("assembler: line " + std::to_string(line_no) + ": " + msg);
}

long
parseNumber(const std::string &text, unsigned line_no)
{
    if (text.empty())
        err(line_no, "expected a number");
    try {
        std::size_t pos = 0;
        const long v = std::stol(text, &pos, 0); // handles 0x
        if (pos != text.size())
            err(line_no, "trailing junk after number '" + text + "'");
        return v;
    } catch (const std::invalid_argument &) {
        err(line_no, "not a number: '" + text + "'");
    } catch (const std::out_of_range &) {
        err(line_no, "number out of range: '" + text + "'");
    }
}

bool
isIdentifier(const std::string &s)
{
    if (s.empty() || (!std::isalpha(static_cast<unsigned char>(s[0]))
                      && s[0] != '_'))
        return false;
    for (char c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            return false;
    return true;
}

/** Split "ADD [0], [b1+2]" into mnemonic + operand strings. */
struct ParsedLine
{
    std::string mnemonic;
    std::vector<std::string> operands;
};

ParsedLine
splitLine(const std::string &line, unsigned line_no)
{
    ParsedLine out;
    std::size_t i = 0;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
    out.mnemonic = line.substr(0, i);
    std::string rest = trim(line.substr(i));
    if (rest.empty())
        return out;
    std::size_t start = 0;
    for (std::size_t j = 0; j <= rest.size(); ++j) {
        if (j == rest.size() || rest[j] == ',') {
            const std::string op = trim(rest.substr(start, j - start));
            if (op.empty())
                err(line_no, "empty operand");
            out.operands.push_back(op);
            start = j + 1;
        }
    }
    return out;
}

/** Parse "[n]" or "[bK+n]" / "[bK]" into an operand byte. */
std::uint8_t
parseMemOperand(const std::string &text, const IsaConfig &config,
                unsigned line_no)
{
    if (text.size() < 3 || text.front() != '[' || text.back() != ']')
        err(line_no, "expected memory operand '[...]', got '" + text +
            "'");
    std::string inner = trim(text.substr(1, text.size() - 2));
    unsigned bar = 0;
    if (!inner.empty() && (inner[0] == 'b' || inner[0] == 'B')) {
        const std::size_t plus = inner.find('+');
        const std::string bar_text =
            plus == std::string::npos ? inner.substr(1)
                                      : trim(inner.substr(1, plus - 1));
        const long b = parseNumber(bar_text, line_no);
        if (b < 0 || unsigned(b) >= config.barCount)
            err(line_no, "BAR index " + bar_text + " out of range (" +
                std::to_string(config.barCount) + " BARs)");
        bar = unsigned(b);
        inner = plus == std::string::npos ? "0"
                                          : trim(inner.substr(plus + 1));
    }
    const long off = parseNumber(inner, line_no);
    if (off < 0 || unsigned(off) >= (1u << config.offsetBits()))
        err(line_no, "offset " + std::to_string(off) +
            " does not fit in " + std::to_string(config.offsetBits()) +
            " bits");
    return makeOperand(bar, unsigned(off), config);
}

std::uint8_t
parseImmediate(const std::string &text, unsigned line_no)
{
    if (text.empty() || text[0] != '#')
        err(line_no, "expected immediate '#n', got '" + text + "'");
    const long v = parseNumber(text.substr(1), line_no);
    if (v < 0 || v > 255)
        err(line_no, "immediate " + std::to_string(v) +
            " out of 0..255");
    return std::uint8_t(v);
}

std::uint8_t
parseBmask(const std::string &text, unsigned line_no)
{
    if (!text.empty() && text[0] == '#') {
        const long v = parseNumber(text.substr(1), line_no);
        if (v < 0 || v > 15)
            err(line_no, "flag mask out of 0..15");
        return std::uint8_t(v);
    }
    unsigned mask = 0;
    for (char c : text) {
        switch (std::toupper(static_cast<unsigned char>(c))) {
          case 'S': mask |= 1u << flagBitS; break;
          case 'Z': mask |= 1u << flagBitZ; break;
          case 'C': mask |= 1u << flagBitC; break;
          case 'V': mask |= 1u << flagBitV; break;
          default:
            err(line_no, std::string("bad flag letter '") + c +
                "' (use S, Z, C, V)");
        }
    }
    return std::uint8_t(mask);
}

} // anonymous namespace

Program
assemble(const std::string &source, const IsaConfig &config,
         const std::string &name)
{
    config.check();

    // Pass 1: collect labels and raw instruction lines.
    struct RawLine
    {
        std::string text;
        unsigned lineNo;
    };
    std::vector<RawLine> raw;
    std::map<std::string, unsigned> labels;

    std::istringstream stream(source);
    std::string line;
    unsigned line_no = 0;
    while (std::getline(stream, line)) {
        ++line_no;
        std::string body = trim(stripComment(line));
        while (!body.empty()) {
            const std::size_t colon = body.find(':');
            if (colon == std::string::npos)
                break;
            const std::string label = trim(body.substr(0, colon));
            if (!isIdentifier(label))
                err(line_no, "bad label '" + label + "'");
            if (labels.count(label))
                err(line_no, "duplicate label '" + label + "'");
            labels[label] = unsigned(raw.size());
            body = trim(body.substr(colon + 1));
        }
        if (!body.empty())
            raw.push_back({body, line_no});
    }

    // Pass 2: encode.
    Program program;
    program.name = name;
    program.isa = config;
    program.labels = labels;

    for (const RawLine &rl : raw) {
        const ParsedLine pl = splitLine(rl.text, rl.lineNo);
        const auto mn = mnemonicFromName(pl.mnemonic);
        if (!mn)
            err(rl.lineNo, "unknown mnemonic '" + pl.mnemonic + "'");

        Instruction inst;
        inst.mnemonic = *mn;

        auto want_ops = [&](std::size_t n) {
            if (pl.operands.size() != n)
                err(rl.lineNo, mnemonicName(*mn) + " takes " +
                    std::to_string(n) + " operands, got " +
                    std::to_string(pl.operands.size()));
        };

        switch (opcodeOf(*mn)) {
          case Opcode::STORE:
            want_ops(2);
            inst.op1 = parseMemOperand(pl.operands[0], config,
                                       rl.lineNo);
            inst.op2 = parseImmediate(pl.operands[1], rl.lineNo);
            break;

          case Opcode::BAR: {
            // SETBAR [ptr], #k : BAR[k] = mem[EA(ptr)].
            want_ops(2);
            inst.op1 = parseMemOperand(pl.operands[0], config,
                                       rl.lineNo);
            const std::uint8_t idx =
                parseImmediate(pl.operands[1], rl.lineNo);
            if (idx == 0 || idx >= config.barCount)
                err(rl.lineNo, "SET-BAR index out of range");
            inst.op2 = idx;
            break;
          }

          case Opcode::BR: {
            want_ops(2);
            const std::string &target = pl.operands[0];
            long addr;
            if (isIdentifier(target)) {
                auto it = labels.find(target);
                if (it == labels.end())
                    err(rl.lineNo, "undefined label '" + target + "'");
                addr = it->second;
            } else {
                addr = parseNumber(target, rl.lineNo);
            }
            if (addr < 0 || addr >= long(raw.size()))
                err(rl.lineNo, "branch target out of range");
            inst.op1 = std::uint8_t(addr);
            inst.op2 = parseBmask(pl.operands[1], rl.lineNo);
            break;
          }

          default: // M-type
            want_ops(2);
            inst.op1 = parseMemOperand(pl.operands[0], config,
                                       rl.lineNo);
            inst.op2 = parseMemOperand(pl.operands[1], config,
                                       rl.lineNo);
            break;
        }
        program.code.push_back(inst);
    }

    program.check();
    return program;
}

} // namespace printed
