/**
 * @file
 * A TP-ISA program: instruction sequence plus the ISA variant it
 * targets. Programs are produced by the assembler (assembler.hh) or
 * by the workload generators, and consumed by the functional
 * simulator, the ROM model, and program-specific specialization.
 */

#ifndef PRINTED_ISA_PROGRAM_HH
#define PRINTED_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace printed
{

/** An assembled TP-ISA program. */
struct Program
{
    std::string name;
    IsaConfig isa;
    std::vector<Instruction> code;
    std::map<std::string, unsigned> labels; ///< label -> address

    /** Number of static instructions (N in Section 7). */
    std::size_t size() const { return code.size(); }

    /** Encoded instruction words (ROM image). */
    std::vector<std::uint32_t> words() const;

    /** Total instruction-memory bits at full 24-bit encoding. */
    std::size_t imemBits() const
    {
        return size() * isa.instructionBits();
    }

    /** Sanity checks: PC range, operand encodability. */
    void check() const;
};

/** Render a program as assembly text (round-trips through the
 *  assembler). */
std::string disassemble(const Program &program);

/** Render one instruction as assembly text. */
std::string disassemble(const Instruction &inst,
                        const IsaConfig &config);

} // namespace printed

#endif // PRINTED_ISA_PROGRAM_HH
