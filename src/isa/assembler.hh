/**
 * @file
 * Two-pass TP-ISA assembler.
 *
 * Syntax (one instruction per line; ';' or '#' start a comment,
 * except '#' immediately followed by a digit which introduces an
 * immediate):
 *
 *     ; 8-bit multiply inner loop
 *     loop:
 *         RR   [2], [2]        ; shift multiplier right
 *         BRN  skip, C         ; skip add when bit was 0
 *         ADD  [0], [1]
 *     skip:
 *         RL   [1], [1]
 *         SUB  [3], [4]
 *         BRN  loop, Z
 *
 * Operands:
 *     [n]       memory at BAR0 (=0) + n
 *     [bK+n]    memory at BAR K + n
 *     #n        immediate (STORE / SET-BAR), decimal or 0x hex
 *     label     branch target (or a bare number)
 *     SZCV      branch flag mask as letters, or #n numeric mask
 *
 * SET-BAR loads BAR k from a pointer held in data memory:
 *     SETBAR [ptr], #k      ; BAR[k] = mem[EA(ptr)]
 */

#ifndef PRINTED_ISA_ASSEMBLER_HH
#define PRINTED_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace printed
{

/**
 * Assemble TP-ISA source text.
 *
 * @param source assembly text
 * @param config ISA variant to target (BAR count affects operand
 *        encoding)
 * @param name program name for reports
 * @return the assembled program (check()ed)
 *
 * Throws FatalError with a line-numbered message on syntax errors,
 * unknown mnemonics, range violations, or undefined labels.
 */
Program assemble(const std::string &source, const IsaConfig &config,
                 const std::string &name = "program");

} // namespace printed

#endif // PRINTED_ISA_ASSEMBLER_HH
