/**
 * @file
 * TP-ISA: the Tiny Printed ISA of Section 5.1 / Figure 6.
 *
 * A two-operand, memory-memory ISA with 24-bit instructions:
 *
 *   [23:20] opcode
 *   [19]    W  - write the result back to memory
 *   [18]    C  - carry-coupled variant (ADC/SBB/RLC/RRC)
 *   [17]    A  - alternate operation (SUB/CMP/RRA, branch-negate)
 *   [16]    B  - branch-format marker
 *   [15:8]  operand1 (MSBs select a BAR, LSBs are the offset)
 *   [7:0]   operand2 (same layout; immediate for S-type)
 *
 * Architectural state: an 8-bit PC, one or more 8-bit base address
 * registers (BAR[0] hardwired to zero), and a 4-bit flags register
 * S/Z/C/V. Data memory holds up to 256 words of the core datawidth;
 * instructions live in a separate (Harvard) instruction ROM.
 *
 * SET-BAR loads a base address register from data memory: operand1
 * is the "ptr address" of Figure 6 (the memory word holding the
 * pointer) and operand2 is the immediate index of the BAR to load.
 * Keeping pointers in data memory is what gives the ISA dynamic
 * array indexing without indexed addressing modes - the idiom the
 * looping kernels (inSort, intAvg, tHold, crc8) rely on.
 */

#ifndef PRINTED_ISA_ISA_HH
#define PRINTED_ISA_ISA_HH

#include <cstdint>
#include <optional>
#include <string>

namespace printed
{

/** Primary opcodes (instruction bits [23:20]). */
enum class Opcode : std::uint8_t
{
    ADD = 0,   ///< add family (ADD/ADC/SUB/CMP/SBB)
    AND = 1,   ///< and family (AND/TEST)
    OR = 2,
    XOR = 3,
    NOT = 4,
    RL = 5,    ///< rotate-left family (RL/RLC)
    RR = 6,    ///< rotate-right family (RR/RRC/RRA)
    STORE = 7, ///< store immediate to memory
    BAR = 8,   ///< SET-BAR
    BR = 9,    ///< branch family (BR/BRN)
};

/** Number of distinct primary opcodes. */
constexpr unsigned numOpcodes = 10;

/** The 19 TP-ISA mnemonics of Figure 6. */
enum class Mnemonic : std::uint8_t
{
    ADD, ADC, SUB, CMP, SBB,
    AND, TEST,
    OR,
    XOR,
    NOT,
    RL, RLC,
    RR, RRC, RRA,
    STORE, SETBAR,
    BR, BRN,
    NumMnemonics
};

constexpr unsigned numMnemonics =
    static_cast<unsigned>(Mnemonic::NumMnemonics);

/** The four control bits W/C/A/B of bits [19:16]. */
struct ControlBits
{
    bool w = false; ///< writeback
    bool c = false; ///< carry-coupled
    bool a = false; ///< alternate op
    bool b = false; ///< branch format

    bool operator==(const ControlBits &) const = default;
};

/** Primary opcode of a mnemonic. */
Opcode opcodeOf(Mnemonic m);

/** Control-bit pattern of a mnemonic (the rows of Figure 6). */
ControlBits controlsOf(Mnemonic m);

/** Assembly name, e.g. "ADC", "SET-BAR". */
std::string mnemonicName(Mnemonic m);

/** Parse an assembly name (case-insensitive); accepts "SETBAR". */
std::optional<Mnemonic> mnemonicFromName(const std::string &name);

// ----------------------------------------------------------------
// Classification helpers used by the simulator and core generator
// ----------------------------------------------------------------

/** M-type ALU op with two memory operands (ADD..RRA). */
bool isMType(Mnemonic m);

/** Two-source ALU ops: dst = mem[a1] op mem[a2]. */
bool isBinaryAlu(Mnemonic m);

/** One-source ALU ops: dst = op(mem[a2]) (NOT and the rotates). */
bool isUnaryAlu(Mnemonic m);

/** Branches (BR/BRN). */
bool isBranch(Mnemonic m);

/** Reads the carry flag (ADC/SBB/RLC/RRC). */
bool readsCarry(Mnemonic m);

/** Writes a result to data memory (W bit set and not S/B-type). */
bool writesMemory(Mnemonic m);

// ----------------------------------------------------------------
// Flags
// ----------------------------------------------------------------

/** The S/Z/C/V flags register (Section 5.1). */
struct Flags
{
    bool s = false; ///< sign (MSB of result)
    bool z = false; ///< zero
    bool c = false; ///< carry out / not-borrow / rotated-out bit
    bool v = false; ///< signed overflow

    bool operator==(const Flags &) const = default;

    /** Pack as a 4-bit mask: bit3=S, bit2=Z, bit1=C, bit0=V. */
    unsigned toMask() const
    {
        return (s ? 8u : 0) | (z ? 4u : 0) | (c ? 2u : 0) |
               (v ? 1u : 0);
    }

    static Flags
    fromMask(unsigned mask)
    {
        return {(mask & 8) != 0, (mask & 4) != 0, (mask & 2) != 0,
                (mask & 1) != 0};
    }
};

/** Flag-mask bit positions (for bmask encoding). */
constexpr unsigned flagBitS = 3;
constexpr unsigned flagBitZ = 2;
constexpr unsigned flagBitC = 1;
constexpr unsigned flagBitV = 0;

// ----------------------------------------------------------------
// ISA configuration and instructions
// ----------------------------------------------------------------

/**
 * Parameters of a TP-ISA variant. The datawidth and BAR count are
 * the design-space knobs of Section 5.2; the width fields may be
 * shrunk by program-specific specialization (Section 7).
 */
struct IsaConfig
{
    unsigned datawidth = 8;  ///< ALU/memory word width: 4/8/16/32
    unsigned barCount = 2;   ///< number of BARs incl. BAR[0]==0: 2/4
    unsigned pcBits = 8;     ///< program counter width
    unsigned operandBits = 8;///< width of each operand field
    unsigned flagCount = 4;  ///< live flags (always S,Z,C,V order)

    /** Bits of an operand used to select a BAR. */
    unsigned barSelBits() const;

    /** Bits of an operand used as address offset. */
    unsigned offsetBits() const { return operandBits - barSelBits(); }

    /** Total instruction width in bits (Table 7 rightmost column). */
    unsigned instructionBits() const
    {
        return 4 + 4 + 2 * operandBits;
    }

    /** Validate ranges; fatal() on nonsense. */
    void check() const;
};

/** One decoded TP-ISA instruction. */
struct Instruction
{
    Mnemonic mnemonic = Mnemonic::ADD;
    std::uint8_t op1 = 0; ///< raw operand1 byte
    std::uint8_t op2 = 0; ///< raw operand2 byte (imm / bmask)

    bool operator==(const Instruction &) const = default;
};

/** Encode to the 24-bit instruction word of Figure 6. */
std::uint32_t encode(const Instruction &inst);

/**
 * Encode into the (possibly narrowed) instruction layout of an ISA
 * variant: [op2 | op1 | B A C W | opcode], with operand fields of
 * config.operandBits bits. The standard 8-bit-operand configuration
 * reproduces the Figure 6 layout exactly. Operand values must fit
 * the narrowed fields (program-specific encodings are produced by
 * printed::specializeProgram, which re-packs them first).
 */
std::uint32_t encode(const Instruction &inst,
                     const IsaConfig &config);

/** Decode a 24-bit word; fatal() on an illegal pattern. */
Instruction decode(std::uint32_t word);

/**
 * Resolve the BAR-select and offset of a raw operand under a
 * configuration.
 */
struct OperandFields
{
    unsigned barSel = 0;
    unsigned offset = 0;
};

OperandFields splitOperand(std::uint8_t operand,
                           const IsaConfig &config);

/** Compose an operand byte from BAR-select and offset. */
std::uint8_t makeOperand(unsigned bar_sel, unsigned offset,
                         const IsaConfig &config);

} // namespace printed

#endif // PRINTED_ISA_ISA_HH
