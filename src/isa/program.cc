#include "program.hh"

#include <sstream>

#include "common/bits.hh"
#include "common/logging.hh"

namespace printed
{

std::vector<std::uint32_t>
Program::words() const
{
    std::vector<std::uint32_t> out;
    out.reserve(code.size());
    for (const Instruction &inst : code)
        out.push_back(encode(inst, isa));
    return out;
}

void
Program::check() const
{
    isa.check();
    fatalIf(code.empty(), "Program '" + name + "' is empty");
    fatalIf(code.size() > (std::size_t(1) << isa.pcBits),
            "Program '" + name + "': " + std::to_string(code.size()) +
            " instructions exceed the " +
            std::to_string(isa.pcBits) + "-bit PC range");
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
        const Instruction &inst = code[pc];
        if (isBranch(inst.mnemonic)) {
            fatalIf(inst.op1 >= code.size(),
                    "Program '" + name + "': branch at " +
                    std::to_string(pc) + " targets address " +
                    std::to_string(inst.op1) + " past the end");
        } else if (inst.mnemonic == Mnemonic::SETBAR) {
            fatalIf(inst.op2 == 0 || inst.op2 >= isa.barCount,
                    "Program '" + name + "': SET-BAR of register " +
                    std::to_string(inst.op2));
        }
    }
}

namespace
{

std::string
operandText(std::uint8_t operand, const IsaConfig &config)
{
    const OperandFields f = splitOperand(operand, config);
    std::ostringstream ss;
    ss << "[";
    if (f.barSel != 0)
        ss << "b" << f.barSel << "+";
    ss << f.offset << "]";
    return ss.str();
}

std::string
bmaskText(std::uint8_t bmask)
{
    std::string s;
    if (bmask & (1u << flagBitS))
        s += 'S';
    if (bmask & (1u << flagBitZ))
        s += 'Z';
    if (bmask & (1u << flagBitC))
        s += 'C';
    if (bmask & (1u << flagBitV))
        s += 'V';
    return s.empty() ? "#0" : s;
}

} // anonymous namespace

std::string
disassemble(const Instruction &inst, const IsaConfig &config)
{
    std::ostringstream ss;
    ss << mnemonicName(inst.mnemonic) << " ";
    switch (opcodeOf(inst.mnemonic)) {
      case Opcode::STORE:
        ss << operandText(inst.op1, config) << ", #"
           << unsigned(inst.op2);
        break;
      case Opcode::BAR:
        ss << operandText(inst.op1, config) << ", #"
           << unsigned(inst.op2);
        break;
      case Opcode::BR:
        ss << unsigned(inst.op1) << ", " << bmaskText(inst.op2);
        break;
      default:
        ss << operandText(inst.op1, config) << ", "
           << operandText(inst.op2, config);
        break;
    }
    return ss.str();
}

std::string
disassemble(const Program &program)
{
    // Invert the label map for printing.
    std::map<unsigned, std::string> by_addr;
    for (const auto &[label, addr] : program.labels)
        by_addr[addr] = label;

    std::ostringstream ss;
    ss << "; program: " << program.name << " ("
       << program.code.size() << " instructions, "
       << program.isa.datawidth << "-bit, " << program.isa.barCount
       << " BARs)\n";
    for (std::size_t pc = 0; pc < program.code.size(); ++pc) {
        auto it = by_addr.find(unsigned(pc));
        if (it != by_addr.end())
            ss << it->second << ":\n";
        ss << "    " << disassemble(program.code[pc], program.isa)
           << "\n";
    }
    return ss.str();
}

} // namespace printed
