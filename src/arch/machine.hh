/**
 * @file
 * TP-ISA functional simulator (instruction-set simulator).
 *
 * Executes an assembled Program against a data memory, maintaining
 * the architectural state of Section 5.1: PC, BARs (BAR[0] == 0),
 * and the S/Z/C/V flags. Gathers the execution statistics the
 * cycle model (pipeline.hh) and the application-level evaluation
 * (Section 8) need: dynamic instruction counts, memory traffic,
 * branch behavior, and adjacent read-after-write pairs.
 *
 * Halting: TP-ISA has no HALT instruction. Execution stops when
 *   - the PC falls past the last instruction, or
 *   - a taken branch targets its own address (idle spin), the
 *     convention our workloads use to signal completion.
 */

#ifndef PRINTED_ARCH_MACHINE_HH
#define PRINTED_ARCH_MACHINE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace printed
{

/** Why execution stopped. */
enum class HaltReason
{
    Running,     ///< not halted yet
    FellOffEnd,  ///< PC advanced past the last instruction
    SelfBranch,  ///< taken branch to its own address
    MaxSteps,    ///< step budget exhausted (runaway program)
};

/** Aggregate execution statistics. */
struct ExecutionStats
{
    std::uint64_t instructions = 0;
    std::uint64_t branches = 0;
    std::uint64_t takenBranches = 0;
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;

    /**
     * Number of dynamic instruction pairs (i, i+1) where i+1 reads a
     * memory word written by i. Each such pair costs one stall in
     * the 3-stage pipeline model.
     */
    std::uint64_t rawAdjacent = 0;

    std::array<std::uint64_t, numMnemonics> perMnemonic{};
    HaltReason halt = HaltReason::Running;
};

/** TP-ISA instruction-set simulator. */
class TpIsaMachine
{
  public:
    /**
     * @param program assembled program (kept by reference)
     * @param dmem_words data-memory size in words; addresses are
     *        checked against this bound (the paper sizes the RAM to
     *        exactly the application's needs)
     */
    TpIsaMachine(const Program &program, std::size_t dmem_words);

    /** Reset PC, flags, BARs and zero data memory. */
    void reset();

    /** Write one data-memory word (masked to the datawidth). */
    void setMem(std::size_t addr, std::uint64_t value);

    /**
     * Map a memory-mapped input stream at `addr`: every read of
     * that address consumes the next queued value (the last value
     * repeats once the queue drains). Models the near-sensor data
     * stream the paper's applications feed the core (e.g. the
     * 16-byte stream CRC8 processes without any array indexing).
     */
    void setStreamPort(std::size_t addr,
                       std::vector<std::uint64_t> values);

    /** Read one data-memory word. */
    std::uint64_t mem(std::size_t addr) const;

    /** Data memory size in words. */
    std::size_t memWords() const { return dmem_.size(); }

    /** Current program counter. */
    unsigned pc() const { return pc_; }

    /** Current flags. */
    const Flags &flags() const { return flags_; }

    /** Current BAR value (BAR[0] is always 0). */
    unsigned bar(unsigned index) const;

    /** True once a halt condition was reached. */
    bool halted() const { return stats_.halt != HaltReason::Running; }

    /** Execute one instruction. No-op when halted. */
    void step();

    /**
     * Run until halted or max_steps instructions executed.
     * @return accumulated statistics
     */
    const ExecutionStats &run(std::uint64_t max_steps = 10'000'000);

    /** Statistics so far. */
    const ExecutionStats &stats() const { return stats_; }

    const Program &program() const { return program_; }

  private:
    unsigned effectiveAddress(std::uint8_t operand) const;
    std::uint64_t readMem(unsigned addr);
    void writeMem(unsigned addr, std::uint64_t value);

    const Program &program_;
    std::vector<std::uint64_t> dmem_;
    unsigned pc_ = 0;
    Flags flags_;
    std::array<unsigned, 4> bars_{}; // BAR[0] stays 0
    ExecutionStats stats_;

    // For rawAdjacent tracking: the address written by the previous
    // instruction, or -1.
    long lastWriteAddr_ = -1;
    bool curReadsLastWrite_ = false;

    // Memory-mapped input stream (disabled when streamAddr_ < 0).
    long streamAddr_ = -1;
    std::vector<std::uint64_t> streamValues_;
    std::size_t streamPos_ = 0;
};

} // namespace printed

#endif // PRINTED_ARCH_MACHINE_HH
