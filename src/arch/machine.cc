#include "machine.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace printed
{

TpIsaMachine::TpIsaMachine(const Program &program,
                           std::size_t dmem_words)
    : program_(program), dmem_(dmem_words, 0)
{
    program_.check();
    fatalIf(dmem_words == 0 || dmem_words > 256,
            "TpIsaMachine: data memory must be 1..256 words");
    reset();
}

void
TpIsaMachine::reset()
{
    pc_ = 0;
    flags_ = Flags{};
    bars_.fill(0);
    std::fill(dmem_.begin(), dmem_.end(), 0);
    stats_ = ExecutionStats{};
    lastWriteAddr_ = -1;
    curReadsLastWrite_ = false;
    streamPos_ = 0;
}

void
TpIsaMachine::setMem(std::size_t addr, std::uint64_t value)
{
    fatalIf(addr >= dmem_.size(), "setMem: address out of range");
    dmem_[addr] = value & maskBits(program_.isa.datawidth);
}

std::uint64_t
TpIsaMachine::mem(std::size_t addr) const
{
    fatalIf(addr >= dmem_.size(), "mem: address out of range");
    return dmem_[addr];
}

unsigned
TpIsaMachine::bar(unsigned index) const
{
    fatalIf(index >= program_.isa.barCount, "bar: index out of range");
    return bars_[index];
}

unsigned
TpIsaMachine::effectiveAddress(std::uint8_t operand) const
{
    const OperandFields f = splitOperand(operand, program_.isa);
    return (bars_[f.barSel] + f.offset) & 0xff;
}

void
TpIsaMachine::setStreamPort(std::size_t addr,
                            std::vector<std::uint64_t> values)
{
    fatalIf(addr >= dmem_.size(),
            "setStreamPort: address out of range");
    fatalIf(values.empty(), "setStreamPort: empty stream");
    streamAddr_ = long(addr);
    streamValues_ = std::move(values);
    streamPos_ = 0;
}

std::uint64_t
TpIsaMachine::readMem(unsigned addr)
{
    fatalIf(addr >= dmem_.size(),
            "TP-ISA read of address " + std::to_string(addr) +
            " beyond the " + std::to_string(dmem_.size()) +
            "-word data memory (program '" + program_.name + "')");
    ++stats_.memReads;
    if (lastWriteAddr_ >= 0 && addr == unsigned(lastWriteAddr_))
        curReadsLastWrite_ = true;
    if (streamAddr_ >= 0 && addr == unsigned(streamAddr_)) {
        const std::uint64_t v =
            streamValues_[std::min(streamPos_,
                                   streamValues_.size() - 1)] &
            maskBits(program_.isa.datawidth);
        ++streamPos_;
        return v;
    }
    return dmem_[addr];
}

void
TpIsaMachine::writeMem(unsigned addr, std::uint64_t value)
{
    fatalIf(addr >= dmem_.size(),
            "TP-ISA write of address " + std::to_string(addr) +
            " beyond the " + std::to_string(dmem_.size()) +
            "-word data memory (program '" + program_.name + "')");
    ++stats_.memWrites;
    dmem_[addr] = value & maskBits(program_.isa.datawidth);
}

void
TpIsaMachine::step()
{
    if (halted())
        return;

    panicIf(pc_ >= program_.code.size(),
            "TpIsaMachine: PC out of range while running");
    const Instruction inst = program_.code[pc_];
    const unsigned width = program_.isa.datawidth;
    const std::uint64_t mask = maskBits(width);
    const std::uint64_t msb = std::uint64_t(1) << (width - 1);

    curReadsLastWrite_ = false;
    long this_write = -1;

    ++stats_.instructions;
    ++stats_.perMnemonic[static_cast<std::size_t>(inst.mnemonic)];

    unsigned next_pc = (pc_ + 1) & unsigned(
        maskBits(program_.isa.pcBits));

    auto set_sz = [&](std::uint64_t result) {
        flags_.s = (result & msb) != 0;
        flags_.z = (result & mask) == 0;
    };

    switch (inst.mnemonic) {
      case Mnemonic::ADD:
      case Mnemonic::ADC:
      case Mnemonic::SUB:
      case Mnemonic::CMP:
      case Mnemonic::SBB: {
        const unsigned a1 = effectiveAddress(inst.op1);
        const unsigned a2 = effectiveAddress(inst.op2);
        const std::uint64_t a = readMem(a1);
        const std::uint64_t b = readMem(a2);
        const ControlBits cb = controlsOf(inst.mnemonic);
        // Shared-adder convention: for subtraction the operand is
        // complemented and carry-in is the not-borrow (1 for plain
        // SUB, the C flag for SBB).
        const std::uint64_t beff = cb.a ? (~b & mask) : b;
        const std::uint64_t cin =
            cb.c ? (flags_.c ? 1 : 0) : (cb.a ? 1 : 0);
        const std::uint64_t full = a + beff + cin;
        const std::uint64_t result = full & mask;

        flags_.c = (full >> width) & 1;
        const bool sa = (a & msb) != 0;
        const bool sb = (beff & msb) != 0;
        const bool sr = (result & msb) != 0;
        flags_.v = (sa == sb) && (sr != sa);
        set_sz(result);
        if (cb.w) {
            writeMem(a1, result);
            this_write = long(a1);
        }
        break;
      }

      case Mnemonic::AND:
      case Mnemonic::TEST:
      case Mnemonic::OR:
      case Mnemonic::XOR: {
        const unsigned a1 = effectiveAddress(inst.op1);
        const unsigned a2 = effectiveAddress(inst.op2);
        const std::uint64_t a = readMem(a1);
        const std::uint64_t b = readMem(a2);
        std::uint64_t result = 0;
        switch (opcodeOf(inst.mnemonic)) {
          case Opcode::AND: result = a & b; break;
          case Opcode::OR:  result = a | b; break;
          case Opcode::XOR: result = a ^ b; break;
          default: panic("unreachable");
        }
        set_sz(result);
        flags_.c = false;
        flags_.v = false;
        if (controlsOf(inst.mnemonic).w) {
            writeMem(a1, result);
            this_write = long(a1);
        }
        break;
      }

      case Mnemonic::NOT:
      case Mnemonic::RL:
      case Mnemonic::RLC:
      case Mnemonic::RR:
      case Mnemonic::RRC:
      case Mnemonic::RRA: {
        // Unary ops read operand2 and write operand1, giving a
        // combined move+op idiom for free.
        const unsigned a1 = effectiveAddress(inst.op1);
        const unsigned a2 = effectiveAddress(inst.op2);
        const std::uint64_t src = readMem(a2);
        std::uint64_t result = 0;
        switch (inst.mnemonic) {
          case Mnemonic::NOT:
            result = ~src & mask;
            flags_.c = false;
            flags_.v = false;
            break;
          case Mnemonic::RL:
            result = ((src << 1) | (src >> (width - 1))) & mask;
            flags_.c = (src & msb) != 0;
            flags_.v = false;
            break;
          case Mnemonic::RLC:
            result = ((src << 1) | (flags_.c ? 1 : 0)) & mask;
            flags_.c = (src & msb) != 0;
            flags_.v = false;
            break;
          case Mnemonic::RR:
            result = ((src >> 1) | ((src & 1) << (width - 1))) & mask;
            flags_.c = (src & 1) != 0;
            flags_.v = false;
            break;
          case Mnemonic::RRC:
            result = ((src >> 1) |
                      ((flags_.c ? std::uint64_t(1) : 0)
                       << (width - 1))) & mask;
            flags_.c = (src & 1) != 0;
            flags_.v = false;
            break;
          case Mnemonic::RRA:
            result = ((src >> 1) | (src & msb)) & mask;
            flags_.c = (src & 1) != 0;
            flags_.v = false;
            break;
          default:
            panic("unreachable");
        }
        set_sz(result);
        writeMem(a1, result);
        this_write = long(a1);
        break;
      }

      case Mnemonic::STORE: {
        const unsigned a1 = effectiveAddress(inst.op1);
        writeMem(a1, inst.op2);
        this_write = long(a1);
        break;
      }

      case Mnemonic::SETBAR: {
        // BAR[op2] = mem[EA(op1)] - the pointer lives in memory.
        panicIf(inst.op2 == 0 || inst.op2 >= program_.isa.barCount,
                "SET-BAR index checked at assembly");
        const unsigned a1 = effectiveAddress(inst.op1);
        bars_[inst.op2] = unsigned(readMem(a1)) & 0xff;
        break;
      }

      case Mnemonic::BR:
      case Mnemonic::BRN: {
        ++stats_.branches;
        const unsigned hit = flags_.toMask() & inst.op2;
        const bool negate = controlsOf(inst.mnemonic).a;
        const bool taken = negate ? (hit == 0) : (hit != 0);
        if (taken) {
            ++stats_.takenBranches;
            if (inst.op1 == pc_) {
                stats_.halt = HaltReason::SelfBranch;
                return;
            }
            next_pc = inst.op1;
        }
        break;
      }

      default:
        panic("TpIsaMachine: unhandled mnemonic");
    }

    if (curReadsLastWrite_)
        ++stats_.rawAdjacent;
    lastWriteAddr_ = this_write;

    pc_ = next_pc;
    if (pc_ >= program_.code.size())
        stats_.halt = HaltReason::FellOffEnd;
}

const ExecutionStats &
TpIsaMachine::run(std::uint64_t max_steps)
{
    while (!halted()) {
        if (stats_.instructions >= max_steps) {
            stats_.halt = HaltReason::MaxSteps;
            break;
        }
        step();
    }
    return stats_;
}

} // namespace printed
