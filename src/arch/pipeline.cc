#include "pipeline.hh"

#include "common/logging.hh"

namespace printed
{

std::uint64_t
pipelineCycles(const ExecutionStats &stats, unsigned stages)
{
    fatalIf(stages < 1 || stages > 3,
            "pipelineCycles: stages must be 1..3");
    std::uint64_t cycles = stats.instructions;
    if (stages >= 2)
        cycles += stats.branches * (stages - 1);
    if (stages >= 3)
        cycles += stats.rawAdjacent;
    return cycles;
}

double
pipelineCpi(const ExecutionStats &stats, unsigned stages)
{
    if (stats.instructions == 0)
        return 0.0;
    return double(pipelineCycles(stats, stages)) /
           double(stats.instructions);
}

} // namespace printed
