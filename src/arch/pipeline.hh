/**
 * @file
 * Pipeline cycle model for TP-ISA cores.
 *
 * The paper's cores use stalls to resolve data and control hazards
 * (Section 5.2), with worst-case CPI equal to the number of pipeline
 * stages. We model:
 *
 *   1-stage: every instruction takes 1 cycle.
 *   2-stage (fetch | execute): the fetch after a branch must wait
 *     until the branch resolves in execute -> 1 bubble per branch.
 *   3-stage (fetch | read | execute+write): 2 bubbles per branch,
 *     plus 1 stall when an instruction reads the word the previous
 *     instruction writes (read-after-write through memory).
 */

#ifndef PRINTED_ARCH_PIPELINE_HH
#define PRINTED_ARCH_PIPELINE_HH

#include <cstdint>

#include "arch/machine.hh"

namespace printed
{

/** Cycles needed to run a measured instruction stream on a P-stage
 *  TP-ISA pipeline. */
std::uint64_t pipelineCycles(const ExecutionStats &stats,
                             unsigned stages);

/** Cycles-per-instruction under the same model. */
double pipelineCpi(const ExecutionStats &stats, unsigned stages);

/** Worst-case CPI of a P-stage TP-ISA core (== P, Section 5.2). */
inline unsigned
worstCaseCpi(unsigned stages)
{
    return stages;
}

} // namespace printed

#endif // PRINTED_ARCH_PIPELINE_HH
