#include "evolve.hh"

#include <algorithm>
#include <charconv>
#include <list>
#include <mutex>
#include <unordered_map>

#include "analysis/characterize.hh"
#include "apps/battery.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "sim/batch_simulator.hh"
#include "sim/simulator.hh"
#include "synth/blocks.hh"
#include "synth/opt.hh"
#include "tech/library.hh"

namespace printed::ml
{

namespace
{

/** Shortest round-trip decimal of a double (key rendering). */
std::string
fmtDouble(double v)
{
    char buf[64];
    const auto res =
        std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

/** One candidate: exactly one member is live, keyed by the spec. */
struct Candidate
{
    TreeModel tree;
    TernaryModel tern;
};

std::uint64_t
candidateFnv(const ClassifySpec &spec, const Candidate &cand)
{
    return spec.model == ModelKind::Tree ? cand.tree.fingerprint()
                                         : cand.tern.fingerprint();
}

/** A Pareto-front entry keeps its model so it can parent mutants. */
struct FrontEntry
{
    CandidateReport report;
    Candidate model;
};

// ------------------------------------------------------------
// Mutation
// ------------------------------------------------------------

/** Reachable node indices of a tree, preorder, split/leaf split. */
void
reachableNodes(const TreeModel &m, std::vector<std::int32_t> &splits,
               std::vector<std::int32_t> &leaves)
{
    splits.clear();
    leaves.clear();
    std::vector<std::int32_t> stack{0};
    while (!stack.empty()) {
        const std::int32_t idx = stack.back();
        stack.pop_back();
        const TreeNode &nd = m.nodes[std::size_t(idx)];
        if (nd.leaf) {
            leaves.push_back(idx);
            continue;
        }
        splits.push_back(idx);
        stack.push_back(nd.right);
        stack.push_back(nd.left);
    }
}

/**
 * Tree mutations along the approximation axes:
 *   0  lower/raise one split's comparator precision in [1, bits]
 *   1  prune a non-root subtree to its stored majority class
 *   2  revive a pruned subtree from the base model (node storage is
 *      positional and never shrinks, so base child links stay valid)
 * The root is never pruned: a tree must keep at least one
 * comparator so every candidate characterizes meaningfully.
 */
TreeModel
mutateTree(const TreeModel &base, const TreeModel &parent, Rng &rng)
{
    TreeModel m = parent;
    std::vector<std::int32_t> splits, leaves;
    const unsigned mutations = 1 + unsigned(rng.below(2));
    for (unsigned rep = 0; rep < mutations; ++rep) {
        reachableNodes(m, splits, leaves);
        const std::uint64_t op = rng.below(3);
        if (op == 0) {
            if (splits.empty())
                continue;
            const std::int32_t idx =
                splits[rng.below(splits.size())];
            m.nodes[std::size_t(idx)].precision =
                std::uint8_t(1 + rng.below(m.bits));
        } else if (op == 1) {
            std::vector<std::int32_t> prunable;
            for (std::int32_t idx : splits)
                if (idx != 0)
                    prunable.push_back(idx);
            if (prunable.empty())
                continue;
            TreeNode &nd = m.nodes[std::size_t(
                prunable[rng.below(prunable.size())])];
            nd.leaf = true;
            nd.cls = nd.majority;
        } else {
            std::vector<std::int32_t> revivable;
            for (std::int32_t idx : leaves)
                if (!base.nodes[std::size_t(idx)].leaf)
                    revivable.push_back(idx);
            if (revivable.empty())
                continue;
            const std::int32_t idx =
                revivable[rng.below(revivable.size())];
            m.nodes[std::size_t(idx)] =
                base.nodes[std::size_t(idx)];
        }
    }
    return m;
}

/**
 * Ternary mutations: re-draw one weight in {-1, 0, +1} (zeroing a
 * weight deletes its whole adder/subtractor stage) or step one
 * layer's accumulator width within [2, base width]. The base width
 * is the overflow-free maximum, so widening never past it.
 */
TernaryModel
mutateTernary(const TernaryModel &base, const TernaryModel &parent,
              Rng &rng)
{
    TernaryModel m = parent;
    const unsigned mutations = 1 + unsigned(rng.below(2));
    for (unsigned rep = 0; rep < mutations; ++rep) {
        const std::size_t l = rng.below(m.layers.size());
        TernaryLayer &layer = m.layers[l];
        if (rng.below(2) == 0) {
            const std::size_t j = rng.below(layer.out);
            const std::size_t i = rng.below(layer.in);
            layer.w[j * layer.in + i] =
                std::int8_t(std::int64_t(rng.below(3)) - 1);
        } else {
            const unsigned maxBits = base.layers[l].accBits;
            if (rng.flip())
                layer.accBits =
                    std::min(maxBits, layer.accBits + 1);
            else
                layer.accBits = std::max(2u, layer.accBits - 1);
        }
    }
    return m;
}

Candidate
mutate(const ClassifySpec &spec, const Candidate &base,
       const Candidate &parent, Rng &rng)
{
    Candidate cand;
    if (spec.model == ModelKind::Tree)
        cand.tree = mutateTree(base.tree, parent.tree, rng);
    else
        cand.tern = mutateTernary(base.tern, parent.tern, rng);
    return cand;
}

// ------------------------------------------------------------
// Scoring
// ------------------------------------------------------------

/** Rebuild a feature bus by port name after net compaction. */
Bus
inputBus(const Netlist &nl, unsigned feature, unsigned bits)
{
    Bus bus;
    const std::string base = "f" + std::to_string(feature);
    for (unsigned b = 0; b < bits; ++b)
        bus.push_back(
            nl.inputNet(base + "[" + std::to_string(b) + "]"));
    return bus;
}

unsigned
firstSetClass(const std::vector<bool> &hot)
{
    for (unsigned k = 0; k < hot.size(); ++k)
        if (hot[k])
            return k;
    return 0; // unreachable: outputs are one-hot by construction
}

std::size_t
countCorrect(const ClassifySpec &spec, const Dataset &data,
             const Netlist &nl)
{
    const unsigned features = spec.dataset.features;
    const unsigned classes = spec.dataset.classes;
    const unsigned holdout = spec.dataset.holdout;
    std::vector<Bus> fbus;
    for (unsigned f = 0; f < features; ++f)
        fbus.push_back(inputBus(nl, f, spec.dataset.bits));
    std::vector<NetId> outs;
    for (unsigned k = 0; k < classes; ++k)
        outs.push_back(nl.outputNet(classOutputName(k)));

    std::size_t correct = 0;
    std::vector<bool> hot(classes);
    if (spec.search.engine == ScoreEngine::Batch) {
        // 64 holdout vectors per lane word.
        BatchGateSimulator sim(nl);
        constexpr unsigned lanes = BatchGateSimulator::laneCount;
        for (unsigned start = 0; start < holdout; start += lanes) {
            const unsigned n = std::min(lanes, holdout - start);
            for (unsigned lane = 0; lane < n; ++lane) {
                const std::uint16_t *row = data.holdRow(start + lane);
                for (unsigned f = 0; f < features; ++f)
                    sim.setBusLane(fbus[f], lane, row[f]);
            }
            sim.evaluate();
            for (unsigned lane = 0; lane < n; ++lane) {
                for (unsigned k = 0; k < classes; ++k)
                    hot[k] = sim.value(outs[k], lane);
                if (firstSetClass(hot) == data.holdY[start + lane])
                    ++correct;
            }
        }
    } else {
        GateSimulator sim(nl);
        for (unsigned i = 0; i < holdout; ++i) {
            const std::uint16_t *row = data.holdRow(i);
            for (unsigned f = 0; f < features; ++f)
                sim.setBus(fbus[f], row[f]);
            sim.evaluate();
            for (unsigned k = 0; k < classes; ++k)
                hot[k] = sim.value(outs[k]);
            if (firstSetClass(hot) == data.holdY[i])
                ++correct;
        }
    }
    return correct;
}

/**
 * Score one candidate: elaborate, optimize (so gate counts are
 * honest), measure holdout accuracy on the optimized netlist
 * itself, then characterize against the budget. Runs inside
 * parallelMap workers — no shared mutable state, no counters.
 */
CandidateReport
scoreOne(const ClassifySpec &spec, const Dataset &data,
         const Candidate &cand)
{
    Netlist nl = spec.model == ModelKind::Tree
                     ? buildTreeNetlist(cand.tree)
                     : buildTernaryNetlist(cand.tern);
    synth::optimize(nl);

    CandidateReport report;
    report.fnv = candidateFnv(spec, cand);
    report.accuracy = double(countCorrect(spec, data, nl)) /
                      double(spec.dataset.holdout);
    report.gates = nl.gateCount();
    if (report.gates == 0) {
        // Precision scaling folded the whole model to constants; a
        // gateless design has no period to characterize. Keep the
        // (real) accuracy but bar it from the front.
        report.feasible = false;
        return report;
    }

    const Characterization ch = characterize(nl, egfetLibrary());
    report.areaCm2 = ch.areaCm2();
    report.powerMw = ch.powerMw();
    report.fmaxHz = ch.fmaxHz();

    report.feasible = true;
    if (!spec.budget.battery.empty()) {
        for (const Battery &b : printedBatteries())
            if (b.name == spec.budget.battery)
                report.feasible =
                    withinPowerBudget(b, report.powerMw);
    }
    if (spec.budget.maxAreaCm2 > 0 &&
        report.areaCm2 > spec.budget.maxAreaCm2)
        report.feasible = false;
    return report;
}

// ------------------------------------------------------------
// Pareto front
// ------------------------------------------------------------

/** f dominates-or-ties c: no reason to admit c. */
bool
covers(const CandidateReport &f, const CandidateReport &c)
{
    return f.accuracy >= c.accuracy && f.gates <= c.gates;
}

/**
 * Admit a feasible candidate into the front: fingerprint-deduped,
 * dominance-filtered, kept sorted (gates asc, accuracy desc, fnv
 * asc) so the front is canonical and replies are byte-stable.
 */
void
admitToFront(std::vector<FrontEntry> &front,
             const CandidateReport &report, const Candidate &model)
{
    if (!report.feasible)
        return;
    for (const FrontEntry &e : front)
        if (e.report.fnv == report.fnv || covers(e.report, report))
            return;
    std::erase_if(front, [&](const FrontEntry &e) {
        return covers(report, e.report);
    });
    FrontEntry entry{report, model};
    const auto pos = std::find_if(
        front.begin(), front.end(), [&](const FrontEntry &e) {
            if (e.report.gates != report.gates)
                return e.report.gates > report.gates;
            if (e.report.accuracy != report.accuracy)
                return e.report.accuracy < report.accuracy;
            return e.report.fnv > report.fnv;
        });
    front.insert(pos, std::move(entry));
}

GenerationReport
summarize(unsigned generation, std::size_t scored,
          const std::vector<FrontEntry> &front,
          std::size_t prunedGates)
{
    GenerationReport rep;
    rep.generation = generation;
    rep.scored = scored;
    rep.frontSize = front.size();
    rep.prunedGates = prunedGates;
    for (const FrontEntry &e : front)
        if (e.report.accuracy > rep.bestAccuracy ||
            (e.report.accuracy == rep.bestAccuracy &&
             rep.bestGates == 0)) {
            rep.bestAccuracy = e.report.accuracy;
            rep.bestGates = e.report.gates;
        }
    return rep;
}

} // anonymous namespace

const char *
scoreEngineName(ScoreEngine engine)
{
    switch (engine) {
      case ScoreEngine::Batch:  return "batch";
      case ScoreEngine::Scalar: return "scalar";
    }
    return "?";
}

std::optional<ScoreEngine>
scoreEngineFromName(const std::string &name)
{
    if (name == "batch")
        return ScoreEngine::Batch;
    if (name == "scalar")
        return ScoreEngine::Scalar;
    return std::nullopt;
}

void
ClassifySpec::check() const
{
    dataset.check();
    fatalIf(depth < 1 || depth > 12,
            "classify depth must be in [1, 12]");
    fatalIf(hidden > 16, "classify hidden must be in [0, 16]");
    fatalIf(search.generations < 1 || search.generations > 64,
            "classify generations must be in [1, 64]");
    fatalIf(search.population < 1 || search.population > 256,
            "classify population must be in [1, 256]");
    fatalIf(budget.maxAreaCm2 < 0,
            "classify max_area_cm2 must be >= 0");
    if (!budget.battery.empty()) {
        bool known = false;
        for (const Battery &b : printedBatteries())
            known = known || b.name == budget.battery;
        fatalIf(!known, "classify budget battery \"" +
                            budget.battery +
                            "\" is not a printed battery");
    }
}

std::string
classifySpecKey(const ClassifySpec &spec)
{
    std::string key = "dataset=" + spec.dataset.kind + "," +
                      std::to_string(spec.dataset.features) + "," +
                      std::to_string(spec.dataset.classes) + "," +
                      std::to_string(spec.dataset.bits) + "," +
                      std::to_string(spec.dataset.train) + "," +
                      std::to_string(spec.dataset.holdout) + "," +
                      std::to_string(spec.dataset.seed);
    key += ";model=" + std::string(modelKindName(spec.model)) + "," +
           std::to_string(spec.depth) + "," +
           std::to_string(spec.hidden);
    key += ";search=" + std::to_string(spec.search.generations) +
           "," + std::to_string(spec.search.population) + "," +
           std::to_string(spec.search.seed) + "," +
           scoreEngineName(spec.search.engine);
    key += ";budget=" + spec.budget.battery + "," +
           fmtDouble(spec.budget.maxAreaCm2);
    return key;
}

ClassifyResult
runClassify(const ClassifySpec &spec, ThreadPool &pool,
            const GenerationCallback &cb)
{
    spec.check();
    const Dataset data = makeDataset(spec.dataset);

    Candidate base;
    if (spec.model == ModelKind::Tree)
        base.tree = trainTree(data, spec.depth);
    else
        base.tern =
            seedTernary(spec.dataset, spec.hidden, spec.search.seed);

    ClassifyResult result;
    result.baseline = scoreOne(spec, data, base);
    metrics::counter("ml.candidates_scored").add(1);

    std::vector<FrontEntry> front;
    admitToFront(front, result.baseline, base);

    std::size_t prunedGates = 0;
    const unsigned population = spec.search.population;
    for (unsigned g = 0; g < spec.search.generations; ++g) {
        // Build the generation sequentially: candidate (g, i) is a
        // pure function of the master seed and the front state at
        // the start of the generation.
        std::vector<Candidate> cands(population);
        for (unsigned i = 0; i < population; ++i) {
            Rng rng(mixSeed(mixSeed(spec.search.seed, g), i));
            const Candidate &parent =
                front.empty()
                    ? base
                    : front[rng.below(front.size())].model;
            cands[i] = mutate(spec, base, parent, rng);
        }

        // Score in parallel; item i touches only its own slot.
        const auto reports =
            pool.parallelMap(population, [&](std::size_t i) {
                return scoreOne(spec, data, cands[i]);
            });

        // Sequential index-order reduction: counters and front
        // updates happen here only, so totals and the front are
        // thread-count-invariant.
        for (unsigned i = 0; i < population; ++i) {
            const CandidateReport &r = reports[i];
            metrics::counter("ml.candidates_scored").add(1);
            if (r.feasible && r.gates < result.baseline.gates)
                prunedGates += result.baseline.gates - r.gates;
            admitToFront(front, r, cands[i]);
        }
        metrics::counter("ml.generations").add(1);
        metrics::counter("ml.pruned_gates")
            .add(prunedGates - (result.generations.empty()
                                    ? 0
                                    : result.generations.back()
                                          .prunedGates));

        result.generations.push_back(
            summarize(g, population, front, prunedGates));
        if (cb)
            cb(result.generations.back());
    }

    result.front.reserve(front.size());
    for (const FrontEntry &e : front)
        result.front.push_back(e.report);
    return result;
}

namespace
{

/** Process-wide LRU of classify results (repeat configs are free). */
struct ClassifyCache
{
    static constexpr std::size_t kCapacity = 32;

    std::mutex mutex;
    std::list<std::string> order; // front = most recent
    std::unordered_map<std::string,
                       std::pair<std::list<std::string>::iterator,
                                 std::shared_ptr<const ClassifyResult>>>
        entries;

    std::shared_ptr<const ClassifyResult>
    lookup(const std::string &key)
    {
        std::lock_guard lock(mutex);
        const auto it = entries.find(key);
        if (it == entries.end())
            return nullptr;
        order.splice(order.begin(), order, it->second.first);
        return it->second.second;
    }

    void
    insert(const std::string &key,
           std::shared_ptr<const ClassifyResult> value)
    {
        std::lock_guard lock(mutex);
        if (entries.count(key))
            return; // a concurrent miss computed it first
        order.push_front(key);
        entries.emplace(key,
                        std::make_pair(order.begin(),
                                       std::move(value)));
        while (entries.size() > kCapacity) {
            entries.erase(order.back());
            order.pop_back();
        }
    }

    void
    clear()
    {
        std::lock_guard lock(mutex);
        entries.clear();
        order.clear();
    }
};

ClassifyCache &
classifyCache()
{
    static ClassifyCache cache;
    return cache;
}

} // anonymous namespace

std::shared_ptr<const ClassifyResult>
runClassifyCached(const ClassifySpec &spec, ThreadPool &pool,
                  const GenerationCallback &cb)
{
    spec.check();
    const std::string key = classifySpecKey(spec);
    if (auto hit = classifyCache().lookup(key)) {
        metrics::counter("ml.cache_hits").add(1);
        if (cb)
            for (const GenerationReport &g : hit->generations)
                cb(g);
        return hit;
    }
    metrics::counter("ml.cache_misses").add(1);
    auto result = std::make_shared<const ClassifyResult>(
        runClassify(spec, pool, cb));
    classifyCache().insert(key, result);
    return result;
}

void
classifyCacheClear()
{
    classifyCache().clear();
}

} // namespace printed::ml
