/**
 * @file
 * Deterministic synthetic datasets for the printed ML classifiers.
 *
 * The repository has no external training data (and must not fetch
 * any), so datasets are generated from a seeded SplitMix64 stream:
 * the same DatasetSpec always produces the same vectors, which is
 * what makes classify replies byte-identical across shards, thread
 * counts, and scoring engines.
 *
 * Two families cover the two classifier generators' sweet spots:
 *
 *   "blobs"  one integer centroid per (class, feature) plus bounded
 *            uniform noise — axis-aligned clusters a shallow
 *            decision tree separates well.
 *   "xor"    two classes labelled by the XOR of the top bits of
 *            features 0 and 1 — not linearly separable, so a
 *            single ternary layer fails and depth pays off.
 *
 * All samples are unsigned integers of `bits` bits, matching the
 * feature buses the netlist generators elaborate. Train and holdout
 * splits come from disjoint seed streams; candidates are selected
 * on holdout accuracy only.
 */

#ifndef PRINTED_ML_DATASET_HH
#define PRINTED_ML_DATASET_HH

#include <cstdint>
#include <string>
#include <vector>

namespace printed::ml
{

/** Parameters of one synthetic dataset (every field keys it). */
struct DatasetSpec
{
    std::string kind = "blobs"; ///< "blobs" or "xor"
    unsigned features = 4;      ///< [1, 16]
    unsigned classes = 3;       ///< [2, 10] ("xor" forces 2)
    unsigned bits = 8;          ///< feature precision, [2, 12]
    unsigned train = 192;       ///< training vectors, [8, 4096]
    unsigned holdout = 128;     ///< scoring vectors, [8, 4096]
    std::uint64_t seed = 1;

    /** fatal()s on out-of-range or inconsistent parameters. */
    void check() const;

    bool operator==(const DatasetSpec &) const = default;
};

/** A generated dataset: row-major feature matrices plus labels. */
struct Dataset
{
    DatasetSpec spec;
    std::vector<std::uint16_t> trainX; ///< train * features
    std::vector<std::uint8_t> trainY;  ///< train labels
    std::vector<std::uint16_t> holdX;  ///< holdout * features
    std::vector<std::uint8_t> holdY;   ///< holdout labels

    /** Pointer to training row `i`. */
    const std::uint16_t *
    trainRow(std::size_t i) const
    {
        return trainX.data() + i * spec.features;
    }

    /** Pointer to holdout row `i`. */
    const std::uint16_t *
    holdRow(std::size_t i) const
    {
        return holdX.data() + i * spec.features;
    }
};

/** Generate the dataset of a spec (pure function of the spec). */
Dataset makeDataset(const DatasetSpec &spec);

} // namespace printed::ml

#endif // PRINTED_ML_DATASET_HH
