#include "dataset.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace printed::ml
{

namespace
{

/** Stream tags keeping centroid/train/holdout draws independent. */
constexpr std::uint64_t kCentroidTag = 0x63656e74; // "cent"
constexpr std::uint64_t kTrainTag = 0x7472616e;    // "tran"
constexpr std::uint64_t kHoldTag = 0x686f6c64;     // "hold"

std::uint16_t
clampToBits(std::int64_t v, unsigned bits)
{
    const std::int64_t hi = (std::int64_t(1) << bits) - 1;
    return std::uint16_t(std::clamp<std::int64_t>(v, 0, hi));
}

/**
 * One "blobs" sample: the class centroid plus uniform noise in
 * [-range/8, +range/8], clamped to the feature range. The per-sample
 * Rng is seeded from the sample index, never from any loop or thread
 * structure, so generation order is irrelevant.
 */
void
blobsSample(const DatasetSpec &spec,
            const std::vector<std::uint16_t> &centroids,
            std::uint64_t tag, std::size_t index, std::uint16_t *x,
            std::uint8_t &y)
{
    const unsigned cls = unsigned(index % spec.classes);
    Rng rng(mixSeed(mixSeed(spec.seed, tag), index));
    const std::int64_t spread =
        std::max<std::int64_t>(1, (std::int64_t(1) << spec.bits) / 8);
    for (unsigned f = 0; f < spec.features; ++f) {
        const std::int64_t noise =
            std::int64_t(rng.below(std::uint64_t(2 * spread + 1))) -
            spread;
        x[f] = clampToBits(
            std::int64_t(centroids[cls * spec.features + f]) + noise,
            spec.bits);
    }
    y = std::uint8_t(cls);
}

/** One "xor" sample: uniform features, label = msb(f0) ^ msb(f1). */
void
xorSample(const DatasetSpec &spec, std::uint64_t tag,
          std::size_t index, std::uint16_t *x, std::uint8_t &y)
{
    Rng rng(mixSeed(mixSeed(spec.seed, tag), index));
    for (unsigned f = 0; f < spec.features; ++f)
        x[f] = std::uint16_t(rng.bits(spec.bits));
    const unsigned msb = spec.bits - 1;
    y = std::uint8_t(((x[0] >> msb) ^ (x[1] >> msb)) & 1);
}

} // anonymous namespace

void
DatasetSpec::check() const
{
    fatalIf(kind != "blobs" && kind != "xor",
            "dataset kind must be \"blobs\" or \"xor\", not \"" +
                kind + "\"");
    fatalIf(features < 1 || features > 16,
            "dataset features must be in [1, 16]");
    fatalIf(classes < 2 || classes > 10,
            "dataset classes must be in [2, 10]");
    fatalIf(bits < 2 || bits > 12,
            "dataset bits must be in [2, 12]");
    fatalIf(train < 8 || train > 4096,
            "dataset train size must be in [8, 4096]");
    fatalIf(holdout < 8 || holdout > 4096,
            "dataset holdout size must be in [8, 4096]");
    fatalIf(kind == "xor" && classes != 2,
            "dataset kind \"xor\" requires classes == 2");
    fatalIf(kind == "xor" && features < 2,
            "dataset kind \"xor\" requires features >= 2");
}

Dataset
makeDataset(const DatasetSpec &spec)
{
    spec.check();
    Dataset data;
    data.spec = spec;
    data.trainX.resize(std::size_t(spec.train) * spec.features);
    data.trainY.resize(spec.train);
    data.holdX.resize(std::size_t(spec.holdout) * spec.features);
    data.holdY.resize(spec.holdout);

    std::vector<std::uint16_t> centroids;
    if (spec.kind == "blobs") {
        centroids.resize(std::size_t(spec.classes) * spec.features);
        for (unsigned c = 0; c < spec.classes; ++c) {
            Rng rng(mixSeed(mixSeed(spec.seed, kCentroidTag), c));
            for (unsigned f = 0; f < spec.features; ++f)
                centroids[c * spec.features + f] =
                    std::uint16_t(rng.bits(spec.bits));
        }
        for (std::size_t i = 0; i < spec.train; ++i)
            blobsSample(spec, centroids, kTrainTag, i,
                        data.trainX.data() + i * spec.features,
                        data.trainY[i]);
        for (std::size_t i = 0; i < spec.holdout; ++i)
            blobsSample(spec, centroids, kHoldTag, i,
                        data.holdX.data() + i * spec.features,
                        data.holdY[i]);
    } else {
        for (std::size_t i = 0; i < spec.train; ++i)
            xorSample(spec, kTrainTag, i,
                      data.trainX.data() + i * spec.features,
                      data.trainY[i]);
        for (std::size_t i = 0; i < spec.holdout; ++i)
            xorSample(spec, kHoldTag, i,
                      data.holdX.data() + i * spec.features,
                      data.holdY[i]);
    }
    return data;
}

} // namespace printed::ml
