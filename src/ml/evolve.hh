/**
 * @file
 * Seeded deterministic evolutionary approximation search for the
 * printed classifiers.
 *
 * The search mutates a base model (a Gini-trained tree or a seeded
 * ternary net) along the bespoke approximation axes — per-node
 * threshold precision, subtree pruning to the stored majority
 * class, weight zeroing/flipping, accumulator narrowing — and keeps
 * the accuracy/area Pareto front of every feasible candidate seen.
 *
 * Determinism contract (the classify endpoint's replies are
 * byte-identical across shards, thread counts, and scoring
 * engines because of these rules):
 *
 *   1. Candidate (generation g, slot i) derives all randomness from
 *      Rng(mixSeed(mixSeed(search.seed, g), i)) — never from a
 *      shared stream.
 *   2. Candidates are scored with ThreadPool::parallelMap and
 *      reduced sequentially in index order; metrics counters are
 *      bumped only in the sequential reduction.
 *   3. Scoring is integer holdout accuracy over the generated
 *      netlist itself (after synth::optimize), so the Batch and
 *      Scalar engines agree bit-for-bit, plus characterize() for
 *      area/power against the budget.
 *   4. Front ordering is total: gates ascending, then accuracy
 *      descending, then fingerprint ascending; dominance filtering
 *      and fingerprint dedupe keep the front canonical.
 */

#ifndef PRINTED_ML_EVOLVE_HH
#define PRINTED_ML_EVOLVE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "ml/classifier.hh"
#include "ml/dataset.hh"

namespace printed::ml
{

/** Which simulation engine scores holdout accuracy. */
enum class ScoreEngine
{
    Batch,  ///< 64-lane BatchGateSimulator (64 vectors per word)
    Scalar, ///< GateSimulator, one vector at a time (oracle)
};

/** Protocol name of a scoring engine ("batch" / "scalar"). */
const char *scoreEngineName(ScoreEngine engine);

/** Inverse of scoreEngineName; nullopt for unknown names. */
std::optional<ScoreEngine> scoreEngineFromName(const std::string &name);

/** Evolutionary loop shape. */
struct SearchSpec
{
    unsigned generations = 6;  ///< [1, 64]
    unsigned population = 12;  ///< candidates per generation, [1, 256]
    std::uint64_t seed = 1;    ///< master search seed
    ScoreEngine engine = ScoreEngine::Batch;

    bool operator==(const SearchSpec &) const = default;
};

/** Feasibility budget a candidate must meet to enter the front. */
struct BudgetSpec
{
    std::string battery;    ///< printedBatteries() name, "" = none
    double maxAreaCm2 = 0;  ///< 0 = unconstrained

    bool operator==(const BudgetSpec &) const = default;
};

/** Everything that keys one classify run. */
struct ClassifySpec
{
    DatasetSpec dataset;
    ModelKind model = ModelKind::Tree;
    unsigned depth = 4;   ///< tree: max depth, [1, 12]
    unsigned hidden = 0;  ///< ternary: hidden width, [0, 16]
    SearchSpec search;
    BudgetSpec budget;

    /** fatal()s on out-of-range or inconsistent parameters. */
    void check() const;

    bool operator==(const ClassifySpec &) const = default;
};

/** One scored candidate (a Pareto-front entry). */
struct CandidateReport
{
    double accuracy = 0;  ///< holdout accuracy in [0, 1]
    std::size_t gates = 0; ///< gate count after synth::optimize
    double areaCm2 = 0;
    double powerMw = 0;
    double fmaxHz = 0;
    bool feasible = true; ///< within the BudgetSpec
    std::uint64_t fnv = 0; ///< model fingerprint

    bool operator==(const CandidateReport &) const = default;
};

/** Per-generation progress summary (one streamed frame each). */
struct GenerationReport
{
    unsigned generation = 0;
    std::size_t scored = 0;       ///< candidates scored this gen
    double bestAccuracy = 0;      ///< best feasible accuracy so far
    std::size_t bestGates = 0;    ///< gates of the best-accuracy entry
    std::size_t frontSize = 0;
    std::size_t prunedGates = 0;  ///< cumulative gates saved vs baseline

    bool operator==(const GenerationReport &) const = default;
};

/** Full result of one classify run. */
struct ClassifyResult
{
    CandidateReport baseline;
    std::vector<GenerationReport> generations;
    std::vector<CandidateReport> front; ///< gates asc, acc desc

    bool operator==(const ClassifyResult &) const = default;
};

/** Invoked after each generation's sequential reduction. */
using GenerationCallback =
    std::function<void(const GenerationReport &)>;

/**
 * Run the evolutionary approximation search. Bit-identical for any
 * pool.threadCount() and either scoring engine. Bumps the ml.*
 * counters (candidates_scored, generations, pruned_gates).
 */
ClassifyResult runClassify(const ClassifySpec &spec, ThreadPool &pool,
                           const GenerationCallback &cb = {});

/**
 * Cached runClassify: a process-wide LRU keyed by classifySpecKey
 * makes repeated classify requests for the same config free. On a
 * hit the callback is replayed from the cached generation reports,
 * so streamed replies are byte-identical to the first run. Bumps
 * ml.cache_hits / ml.cache_misses.
 */
std::shared_ptr<const ClassifyResult>
runClassifyCached(const ClassifySpec &spec, ThreadPool &pool,
                  const GenerationCallback &cb = {});

/** Canonical text key of a spec (also the coalesce/route key text). */
std::string classifySpecKey(const ClassifySpec &spec);

/** Drop every cached classify result (tests). */
void classifyCacheClear();

} // namespace printed::ml

#endif // PRINTED_ML_EVOLVE_HH
