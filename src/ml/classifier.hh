/**
 * @file
 * Bespoke printed classifier models and their netlist generators.
 *
 * Two model families, both elaborated directly into the eleven-cell
 * printed standard-cell library so the whole existing toolchain —
 * optimize / harden / characterize / fault Monte-Carlo / the batch
 * simulator — works on them unchanged:
 *
 *   TreeModel     an axis-aligned decision tree. Every split node
 *                 becomes ONE hard-wired comparator (an unsigned
 *                 a >= C borrow chain over the top `precision` bits
 *                 of the feature — the constant-operand
 *                 specialization of rippleAddSub's not-borrow
 *                 trick), path activations are AND chains along the
 *                 root path, and each class output is the OR of its
 *                 leaf activations. Exactly one leaf fires for any
 *                 input, so the "class<k>" outputs are one-hot by
 *                 construction; ties cannot occur.
 *
 *   TernaryModel  MAC layers with weights in {-1, 0, +1} folded to
 *                 ripple adder/subtractor chains over a per-layer
 *                 precision-scaled two's-complement accumulator
 *                 (accBits wide, wraparound semantics — lowering
 *                 accBits is the approximation knob and its cost
 *                 shows up as honest holdout accuracy). Hidden
 *                 layers use a ReLU (bitwise AND with the inverted
 *                 sign); the output layer feeds a comparator
 *                 tournament that emits a one-hot argmax with
 *                 lowest-class-index tie-breaking.
 *
 * Both predict() members implement bit-exact software semantics of
 * the generated netlists; tests/test_ml.cc checks the equivalence
 * vector-for-vector on both simulation engines.
 */

#ifndef PRINTED_ML_CLASSIFIER_HH
#define PRINTED_ML_CLASSIFIER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ml/dataset.hh"
#include "netlist/netlist.hh"

namespace printed::ml
{

/** The two classifier families. */
enum class ModelKind
{
    Tree,
    Ternary,
};

/** Protocol name of a model kind ("tree" / "ternary"). */
const char *modelKindName(ModelKind kind);

/** Inverse of modelKindName; nullopt for unknown names. */
std::optional<ModelKind> modelKindFromName(const std::string &name);

/** Name of class output `k` in generated netlists ("class<k>"). */
std::string classOutputName(unsigned cls);

// ----------------------------------------------------------------
// Decision tree
// ----------------------------------------------------------------

/** One tree node; splits route right when x[feature] >= threshold. */
struct TreeNode
{
    bool leaf = false;
    std::uint8_t cls = 0;       ///< leaf: predicted class
    std::uint8_t majority = 0;  ///< majority train label here (prune target)
    std::uint8_t feature = 0;   ///< split: feature index
    std::uint16_t threshold = 0; ///< split: comparator constant
    std::uint8_t precision = 0; ///< split: compared MSBs (== bits: exact)
    std::int32_t left = -1;     ///< split: child when x[f] < threshold
    std::int32_t right = -1;    ///< split: child when x[f] >= threshold

    bool operator==(const TreeNode &) const = default;
};

/** A trained (possibly approximated) decision tree. */
struct TreeModel
{
    unsigned features = 0;
    unsigned classes = 0;
    unsigned bits = 0;
    std::vector<TreeNode> nodes; ///< node 0 is the root

    /** Predicted class of one feature row (netlist semantics). */
    unsigned predict(const std::uint16_t *x) const;

    /** FNV-1a fingerprint over every behavior-relevant field. */
    std::uint64_t fingerprint() const;

    bool operator==(const TreeModel &) const = default;
};

/**
 * Greedy Gini-impurity training on the train split. Deterministic:
 * candidate splits are scanned in (feature, threshold) order and
 * ties keep the first. All split precisions start at `bits` (exact).
 */
TreeModel trainTree(const Dataset &data, unsigned maxDepth);

/** Elaborate a tree into a netlist (inputs f<i>[b], outputs class<k>). */
Netlist buildTreeNetlist(const TreeModel &model);

// ----------------------------------------------------------------
// Ternary network
// ----------------------------------------------------------------

/** One ternary MAC layer. */
struct TernaryLayer
{
    unsigned in = 0;
    unsigned out = 0;
    std::vector<std::int8_t> w; ///< out * in weights in {-1, 0, +1}
    unsigned accBits = 0;       ///< accumulator width (approx knob)

    std::int8_t
    weight(unsigned neuron, unsigned input) const
    {
        return w[std::size_t(neuron) * in + input];
    }

    bool operator==(const TernaryLayer &) const = default;
};

/** A ternary network: optional hidden ReLU layer + output layer. */
struct TernaryModel
{
    unsigned features = 0;
    unsigned classes = 0;
    unsigned bits = 0;
    std::vector<TernaryLayer> layers; ///< 1 (linear) or 2 (hidden)

    /** Predicted class of one feature row (netlist semantics). */
    unsigned predict(const std::uint16_t *x) const;

    /** FNV-1a fingerprint over every behavior-relevant field. */
    std::uint64_t fingerprint() const;

    /** Widest legal accumulator for layer `l` (no overflow). */
    static unsigned fullAccBits(unsigned inputs, unsigned inputBits);

    bool operator==(const TernaryModel &) const = default;
};

/**
 * Seeded random ternary network (the evolutionary loop is the
 * trainer). `hidden` == 0 builds a single linear layer; accumulator
 * widths start at the overflow-free maximum.
 */
TernaryModel seedTernary(const DatasetSpec &spec, unsigned hidden,
                         std::uint64_t seed);

/** Elaborate a ternary net (inputs f<i>[b], outputs class<k>). */
Netlist buildTernaryNetlist(const TernaryModel &model);

// ----------------------------------------------------------------
// Shared comparator primitive
// ----------------------------------------------------------------

/**
 * Unsigned a >= C over a bus and a hard-wired constant: the
 * LSB-to-MSB borrow chain with the constant folded away (roughly
 * two cells per bit — the bespoke form of rippleAddSub's
 * subtract/not-borrow comparator). This is the "one comparator per
 * split node" primitive of the tree generator.
 */
NetId geConst(Netlist &nl, const Bus &a, std::uint64_t c);

} // namespace printed::ml

#endif // PRINTED_ML_CLASSIFIER_HH
