#include "classifier.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "synth/blocks.hh"

namespace printed::ml
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    for (unsigned byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xff;
        h *= kFnvPrime;
    }
}

} // anonymous namespace

const char *
modelKindName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Tree:    return "tree";
      case ModelKind::Ternary: return "ternary";
    }
    return "?";
}

std::optional<ModelKind>
modelKindFromName(const std::string &name)
{
    if (name == "tree")
        return ModelKind::Tree;
    if (name == "ternary")
        return ModelKind::Ternary;
    return std::nullopt;
}

std::string
classOutputName(unsigned cls)
{
    return "class" + std::to_string(cls);
}

NetId
geConst(Netlist &nl, const Bus &a, std::uint64_t c)
{
    // Borrow chain of a - c, LSB to MSB, with the constant operand
    // folded: c_i == 1 -> borrow' = ~a_i | borrow,
    //         c_i == 0 -> borrow' = ~a_i & borrow.
    // a >= c is the inverted final borrow. invalidNet stands for a
    // borrow that is still constant 0 (no cell needed yet).
    NetId borrow = invalidNet;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const bool ci = (c >> i) & 1;
        if (ci) {
            const NetId na = nl.addGate(CellKind::INVX1, a[i]);
            borrow = borrow == invalidNet
                         ? na
                         : nl.addGate(CellKind::OR2X1, na, borrow);
        } else if (borrow != invalidNet) {
            const NetId na = nl.addGate(CellKind::INVX1, a[i]);
            borrow = nl.addGate(CellKind::AND2X1, na, borrow);
        }
    }
    if (borrow == invalidNet)
        return nl.constOne(); // c == 0: unsigned a >= 0 always
    return nl.addGate(CellKind::INVX1, borrow);
}

// ----------------------------------------------------------------
// Decision tree
// ----------------------------------------------------------------

unsigned
TreeModel::predict(const std::uint16_t *x) const
{
    std::int32_t n = 0;
    while (!nodes[std::size_t(n)].leaf) {
        const TreeNode &nd = nodes[std::size_t(n)];
        const unsigned shift = bits - nd.precision;
        n = (x[nd.feature] >> shift) >= (nd.threshold >> shift)
                ? nd.right
                : nd.left;
    }
    return nodes[std::size_t(n)].cls;
}

std::uint64_t
TreeModel::fingerprint() const
{
    // Preorder over *reachable* nodes only, so a pruned tree and
    // its trimmed copy fingerprint identically.
    std::uint64_t h = kFnvOffset;
    fnvMix(h, 0x74726565); // "tree"
    fnvMix(h, features);
    fnvMix(h, classes);
    fnvMix(h, bits);
    std::vector<std::int32_t> stack{0};
    while (!stack.empty()) {
        const TreeNode &nd = nodes[std::size_t(stack.back())];
        stack.pop_back();
        if (nd.leaf) {
            fnvMix(h, 1);
            fnvMix(h, nd.cls);
            continue;
        }
        fnvMix(h, 2);
        fnvMix(h, nd.feature);
        fnvMix(h, nd.threshold);
        fnvMix(h, nd.precision);
        stack.push_back(nd.right);
        stack.push_back(nd.left);
    }
    return h;
}

namespace
{

/** Class histogram of a sample subset. */
std::vector<std::size_t>
classCounts(const Dataset &data,
            const std::vector<std::uint32_t> &subset,
            unsigned classes)
{
    std::vector<std::size_t> counts(classes, 0);
    for (std::uint32_t i : subset)
        ++counts[data.trainY[i]];
    return counts;
}

/** Majority class, lowest index on ties. */
unsigned
majorityClass(const std::vector<std::size_t> &counts)
{
    unsigned best = 0;
    for (unsigned c = 1; c < counts.size(); ++c)
        if (counts[c] > counts[best])
            best = c;
    return best;
}

double
gini(const std::vector<std::size_t> &counts, std::size_t total)
{
    if (total == 0)
        return 0;
    double sum = 0;
    for (std::size_t n : counts) {
        const double p = double(n) / double(total);
        sum += p * p;
    }
    return 1.0 - sum;
}

struct TreeBuilder
{
    const Dataset &data;
    unsigned maxDepth;
    std::vector<TreeNode> nodes;

    std::int32_t
    build(std::vector<std::uint32_t> subset, unsigned depth)
    {
        const unsigned classes = data.spec.classes;
        const auto counts = classCounts(data, subset, classes);
        const unsigned majority = majorityClass(counts);
        const bool pure = counts[majority] == subset.size();

        const std::int32_t idx = std::int32_t(nodes.size());
        nodes.emplace_back();
        nodes[std::size_t(idx)].majority = std::uint8_t(majority);

        unsigned bestFeature = 0;
        std::uint16_t bestThreshold = 0;
        double bestScore = 2.0; // any real split scores < 1
        bool found = false;
        if (!pure && depth < maxDepth && subset.size() >= 2) {
            for (unsigned f = 0; f < data.spec.features; ++f) {
                // Sort by feature value (stable: ties keep sample
                // order, which only affects identical partitions).
                std::vector<std::uint32_t> order = subset;
                std::sort(order.begin(), order.end(),
                          [&](std::uint32_t a, std::uint32_t b) {
                              const auto va = data.trainRow(a)[f];
                              const auto vb = data.trainRow(b)[f];
                              return va != vb ? va < vb : a < b;
                          });
                // Sweep distinct-value boundaries; threshold t sends
                // x >= t right, so t is the right group's minimum.
                std::vector<std::size_t> left(classes, 0);
                auto right = counts;
                for (std::size_t i = 0; i + 1 < order.size(); ++i) {
                    const std::uint8_t y = data.trainY[order[i]];
                    ++left[y];
                    --right[y];
                    const std::uint16_t v =
                        data.trainRow(order[i])[f];
                    const std::uint16_t next =
                        data.trainRow(order[i + 1])[f];
                    if (v == next)
                        continue;
                    const std::size_t nl = i + 1;
                    const std::size_t nr = order.size() - nl;
                    const double score =
                        (double(nl) * gini(left, nl) +
                         double(nr) * gini(right, nr)) /
                        double(order.size());
                    if (score < bestScore) {
                        bestScore = score;
                        bestFeature = f;
                        bestThreshold = next;
                        found = true;
                    }
                }
            }
        }

        if (!found) {
            nodes[std::size_t(idx)].leaf = true;
            nodes[std::size_t(idx)].cls = std::uint8_t(majority);
            return idx;
        }

        std::vector<std::uint32_t> leftSet, rightSet;
        for (std::uint32_t i : subset)
            (data.trainRow(i)[bestFeature] >= bestThreshold
                 ? rightSet
                 : leftSet)
                .push_back(i);

        nodes[std::size_t(idx)].feature = std::uint8_t(bestFeature);
        nodes[std::size_t(idx)].threshold = bestThreshold;
        nodes[std::size_t(idx)].precision =
            std::uint8_t(data.spec.bits);
        const std::int32_t left = build(std::move(leftSet), depth + 1);
        const std::int32_t right =
            build(std::move(rightSet), depth + 1);
        nodes[std::size_t(idx)].left = left;
        nodes[std::size_t(idx)].right = right;
        return idx;
    }
};

} // anonymous namespace

TreeModel
trainTree(const Dataset &data, unsigned maxDepth)
{
    fatalIf(maxDepth < 1 || maxDepth > 12,
            "tree depth must be in [1, 12]");
    TreeModel model;
    model.features = data.spec.features;
    model.classes = data.spec.classes;
    model.bits = data.spec.bits;

    TreeBuilder builder{data, maxDepth, {}};
    std::vector<std::uint32_t> all(data.spec.train);
    std::iota(all.begin(), all.end(), 0);
    builder.build(std::move(all), 0);
    model.nodes = std::move(builder.nodes);
    return model;
}

namespace
{

struct TreeEmitter
{
    Netlist &nl;
    const TreeModel &model;
    const std::vector<Bus> &features;
    std::vector<Bus> leafActs; // per class: activation nets

    /** path == invalidNet encodes the constant-true root path. */
    void
    emit(std::int32_t idx, NetId path)
    {
        const TreeNode &nd = model.nodes[std::size_t(idx)];
        if (nd.leaf) {
            leafActs[nd.cls].push_back(
                path == invalidNet ? nl.constOne() : path);
            return;
        }
        const unsigned shift = model.bits - nd.precision;
        const Bus hi =
            synth::busSlice(features[nd.feature], shift,
                            nd.precision);
        const NetId cond = geConst(nl, hi, nd.threshold >> shift);
        const NetId ncond = nl.addGate(CellKind::INVX1, cond);
        const NetId rightPath =
            path == invalidNet
                ? cond
                : nl.addGate(CellKind::AND2X1, path, cond);
        const NetId leftPath =
            path == invalidNet
                ? ncond
                : nl.addGate(CellKind::AND2X1, path, ncond);
        emit(nd.left, leftPath);
        emit(nd.right, rightPath);
    }
};

} // anonymous namespace

Netlist
buildTreeNetlist(const TreeModel &model)
{
    fatalIf(model.nodes.empty(), "tree model has no nodes");
    Netlist nl("tree_classifier");
    std::vector<Bus> features;
    for (unsigned f = 0; f < model.features; ++f)
        features.push_back(synth::busInputs(
            nl, "f" + std::to_string(f), model.bits));

    TreeEmitter emitter{nl, model, features, {}};
    emitter.leafActs.resize(model.classes);
    emitter.emit(0, invalidNet);

    for (unsigned c = 0; c < model.classes; ++c)
        nl.addOutput(classOutputName(c),
                     synth::orReduce(nl, emitter.leafActs[c]));
    nl.validate();
    return nl;
}

// ----------------------------------------------------------------
// Ternary network
// ----------------------------------------------------------------

unsigned
TernaryModel::fullAccBits(unsigned inputs, unsigned inputBits)
{
    // Smallest signed width whose positive range holds the largest
    // possible magnitude inputs * (2^inputBits - 1).
    const std::uint64_t maxMag =
        std::uint64_t(inputs) * ((std::uint64_t(1) << inputBits) - 1);
    unsigned width = 2;
    while (((std::uint64_t(1) << (width - 1)) - 1) < maxMag)
        ++width;
    return width;
}

unsigned
TernaryModel::predict(const std::uint16_t *x) const
{
    std::vector<std::int64_t> cur(features);
    for (unsigned f = 0; f < features; ++f)
        cur[f] = x[f];

    for (std::size_t l = 0; l < layers.size(); ++l) {
        const TernaryLayer &layer = layers[l];
        const bool last = l + 1 == layers.size();
        const std::int64_t mod = std::int64_t(1) << layer.accBits;
        const std::int64_t sign = mod >> 1;
        std::vector<std::int64_t> next(layer.out);
        for (unsigned j = 0; j < layer.out; ++j) {
            std::int64_t acc = 0;
            for (unsigned i = 0; i < layer.in; ++i)
                acc += std::int64_t(layer.weight(j, i)) * cur[i];
            // Two's-complement wrap to accBits — exactly the
            // hardware accumulator (mod 2^n is associative, so
            // wrapping once at the end matches per-step wrap).
            acc &= mod - 1;
            if (acc & sign)
                acc -= mod;
            if (!last)
                acc = std::max<std::int64_t>(acc, 0); // ReLU
            next[j] = acc;
        }
        cur = std::move(next);
    }

    unsigned best = 0;
    for (unsigned k = 1; k < classes; ++k)
        if (cur[k] > cur[best])
            best = k;
    return best;
}

std::uint64_t
TernaryModel::fingerprint() const
{
    std::uint64_t h = kFnvOffset;
    fnvMix(h, 0x7465726e); // "tern"
    fnvMix(h, features);
    fnvMix(h, classes);
    fnvMix(h, bits);
    for (const TernaryLayer &layer : layers) {
        fnvMix(h, layer.in);
        fnvMix(h, layer.out);
        fnvMix(h, layer.accBits);
        for (std::int8_t w : layer.w)
            fnvMix(h, std::uint64_t(std::uint8_t(w)));
    }
    return h;
}

TernaryModel
seedTernary(const DatasetSpec &spec, unsigned hidden,
            std::uint64_t seed)
{
    fatalIf(hidden > 16, "ternary hidden width must be <= 16");
    TernaryModel model;
    model.features = spec.features;
    model.classes = spec.classes;
    model.bits = spec.bits;

    auto makeLayer = [&](unsigned in, unsigned out,
                         unsigned inputBits, unsigned tag) {
        TernaryLayer layer;
        layer.in = in;
        layer.out = out;
        layer.accBits = TernaryModel::fullAccBits(in, inputBits);
        layer.w.resize(std::size_t(out) * in);
        Rng rng(mixSeed(seed, tag));
        for (std::int8_t &w : layer.w)
            w = std::int8_t(std::int64_t(rng.below(3)) - 1);
        return layer;
    };

    if (hidden > 0) {
        model.layers.push_back(
            makeLayer(spec.features, hidden, spec.bits, 0));
        model.layers.push_back(makeLayer(
            hidden, spec.classes, model.layers[0].accBits, 1));
    } else {
        model.layers.push_back(
            makeLayer(spec.features, spec.classes, spec.bits, 0));
    }
    return model;
}

Netlist
buildTernaryNetlist(const TernaryModel &model)
{
    fatalIf(model.layers.empty(), "ternary model has no layers");
    Netlist nl("ternary_classifier");
    std::vector<Bus> cur;
    for (unsigned f = 0; f < model.features; ++f)
        cur.push_back(synth::busInputs(
            nl, "f" + std::to_string(f), model.bits));

    for (std::size_t l = 0; l < model.layers.size(); ++l) {
        const TernaryLayer &layer = model.layers[l];
        const bool last = l + 1 == model.layers.size();
        std::vector<Bus> next;
        for (unsigned j = 0; j < layer.out; ++j) {
            // Fold the {-1,0,+1} weights into one ripple
            // adder/subtractor chain over the accBits accumulator
            // (wraparound two's complement; zero weights cost no
            // cells at all).
            Bus acc = synth::busConst(nl, layer.accBits, 0);
            for (unsigned i = 0; i < layer.in; ++i) {
                const std::int8_t w = layer.weight(j, i);
                if (w == 0)
                    continue;
                const Bus ext =
                    synth::busExtend(nl, cur[i], layer.accBits);
                const NetId mode =
                    w > 0 ? nl.constZero() : nl.constOne();
                acc = synth::rippleAddSub(nl, acc, ext, mode, mode)
                          .sum;
            }
            if (!last) {
                // ReLU: clear every bit when the sign is set.
                const NetId nsign = nl.addGate(
                    CellKind::INVX1, acc[layer.accBits - 1]);
                Bus relu;
                for (NetId bit : acc)
                    relu.push_back(
                        nl.addGate(CellKind::AND2X1, bit, nsign));
                next.push_back(std::move(relu));
            } else {
                next.push_back(std::move(acc));
            }
        }
        cur = std::move(next);
    }

    // Comparator tournament argmax: signed compare via offset-binary
    // keys (flip the MSB, compare unsigned with the shared-adder
    // not-borrow). A challenger wins only when strictly greater, so
    // ties keep the lowest class index and the one-hot invariant
    // holds for every input.
    const unsigned accBits = model.layers.back().accBits;
    auto key = [&](const Bus &b) {
        Bus k = b;
        k[accBits - 1] =
            nl.addGate(CellKind::INVX1, b[accBits - 1]);
        return k;
    };

    std::vector<NetId> hot(model.classes);
    hot[0] = nl.constOne();
    Bus bestKey = key(cur[0]);
    for (unsigned k = 1; k < model.classes; ++k) {
        const Bus challenger = key(cur[k]);
        const NetId ge =
            synth::rippleAddSub(nl, bestKey, challenger,
                                nl.constOne(), nl.constOne())
                .carryOut; // best >= challenger (unsigned keys)
        const NetId win = nl.addGate(CellKind::INVX1, ge);
        for (unsigned j = 0; j < k; ++j)
            hot[j] = nl.addGate(CellKind::AND2X1, hot[j], ge);
        hot[k] = win;
        if (k + 1 < model.classes)
            bestKey = synth::busMux2(nl, win, bestKey, challenger);
    }

    for (unsigned c = 0; c < model.classes; ++c)
        nl.addOutput(classOutputName(c), hot[c]);
    nl.validate();
    return nl;
}

} // namespace printed::ml
