#include "vcd.hh"

#include <map>

#include "common/logging.hh"

namespace printed
{

VcdWriter::VcdWriter(std::ostream &os, const Netlist &netlist,
                     std::string module)
    : os_(os), netlist_(netlist), module_(std::move(module))
{}

std::string
VcdWriter::nextId()
{
    // Printable VCD identifier codes: ! .. ~ in base 94. The
    // little-endian digit encoding is injective (every count maps
    // to a distinct string), so designs with more than 94 signals
    // simply get multi-character codes.
    unsigned v = idCounter_++;
    std::string id;
    do {
        id.push_back(char('!' + v % 94));
        v /= 94;
    } while (v);
    return id;
}

std::string
VcdWriter::registerName(const std::string &raw)
{
    // `$var wire <width> <id> <name> $end` is whitespace-tokenized
    // and `$` introduces keywords, so a name containing either would
    // corrupt the header. Map everything outside a conservative
    // safe set to '_', then uniquify: duplicate display names are
    // legal VCD but viewers silently merge them.
    std::string name;
    name.reserve(raw.size());
    for (const char c : raw) {
        const bool safe =
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '_' || c == '.' ||
            c == '[' || c == ']' || c == ':';
        name.push_back(safe ? c : '_');
    }
    if (name.empty())
        name = "net";
    auto [it, inserted] = nameUse_.emplace(name, 1u);
    if (inserted)
        return name;
    std::string unique;
    do {
        ++it->second;
        unique = name + "_" + std::to_string(it->second);
    } while (nameUse_.count(unique));
    nameUse_.emplace(unique, 1u);
    return unique;
}

void
VcdWriter::addSignal(const std::string &name, NetId net)
{
    panicIf(headerWritten_, "VcdWriter: header already written");
    signals_.push_back({registerName(name), nextId(), {net}, {}});
}

void
VcdWriter::addBus(const std::string &name, const Bus &bus)
{
    panicIf(headerWritten_, "VcdWriter: header already written");
    panicIf(bus.empty(), "VcdWriter: empty bus");
    signals_.push_back({registerName(name), nextId(), bus, {}});
}

void
VcdWriter::addPorts()
{
    // Group indexed ports (name[i]) into buses.
    std::map<std::string, Bus> buses;
    auto classify = [&](const std::string &name, NetId net) {
        const auto bracket = name.find('[');
        if (bracket == std::string::npos) {
            addSignal(name, net);
            return;
        }
        const std::string base = name.substr(0, bracket);
        const unsigned idx = unsigned(
            std::stoul(name.substr(bracket + 1)));
        Bus &bus = buses[base];
        if (bus.size() <= idx)
            bus.resize(idx + 1, invalidNet);
        bus[idx] = net;
    };
    for (const auto &p : netlist_.inputs())
        classify(p.name, p.net);
    for (const auto &p : netlist_.outputs())
        classify(p.name, p.net);
    for (auto &[name, bus] : buses) {
        for (NetId n : bus)
            panicIf(n == invalidNet, "VcdWriter: sparse bus " + name);
        addBus(name, bus);
    }
}

void
VcdWriter::writeHeader()
{
    panicIf(headerWritten_, "VcdWriter: header already written");
    headerWritten_ = true;
    os_ << "$date printed-microprocessors $end\n"
        << "$version printed::VcdWriter $end\n"
        << "$timescale 1 us $end\n"
        << "$scope module " << module_ << " $end\n";
    for (const Signal &s : signals_)
        os_ << "$var wire " << s.nets.size() << " " << s.id << " "
            << s.name << " $end\n";
    os_ << "$upscope $end\n$enddefinitions $end\n";
}

std::string
VcdWriter::valueOf(const GateSimulator &sim, const Bus &nets)
{
    if (nets.size() == 1)
        return sim.value(nets[0]) ? "1" : "0";
    std::string bits = "b";
    for (std::size_t i = nets.size(); i-- > 0;)
        bits.push_back(sim.value(nets[i]) ? '1' : '0');
    return bits;
}

void
VcdWriter::sample(const GateSimulator &sim, std::uint64_t time)
{
    panicIf(!headerWritten_, "VcdWriter: write the header first");
    bool stamped = false;
    for (Signal &s : signals_) {
        std::string v = valueOf(sim, s.nets);
        if (v == s.last)
            continue;
        if (!stamped) {
            os_ << "#" << time << "\n";
            stamped = true;
        }
        if (s.nets.size() == 1)
            os_ << v << s.id << "\n";
        else
            os_ << v << " " << s.id << "\n";
        s.last = std::move(v);
    }
}

} // namespace printed
