/**
 * @file
 * Levelized two-value gate-level simulator.
 *
 * Simulates a Netlist cycle by cycle: evaluate() settles the
 * combinational logic in topological order, step() clocks the
 * sequential cells. Used for
 *
 *   - functional verification of synthesized blocks against golden
 *     C++ models (tests/),
 *   - measured switching-activity factors that feed the power model
 *     (the paper reports an average Design Compiler activity of
 *     0.88; we can reproduce activity from simulation instead of
 *     assuming it).
 */

#ifndef PRINTED_SIM_SIMULATOR_HH
#define PRINTED_SIM_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "netlist/netlist.hh"

namespace printed
{

/**
 * Gate-level simulator bound to one (immutable) Netlist.
 *
 * Semantics:
 *   - DFFX1: Q <= D on step().
 *   - DFFNRX1: Q <= RN ? D : 0 on step(); additionally Q is forced
 *     low whenever RN is 0 during evaluate() (asynchronous clear).
 *   - LATCHX1 (SR): on step(), Q <= S ? 1 : (R ? 0 : Q). S and R
 *     both high is a panic (illegal input).
 *   - TSBUFX1 buses: at most one enabled driver per evaluation
 *     (multiple enabled drivers with equal values are tolerated);
 *     a bus with no enabled driver keeps its previous value.
 */
class GateSimulator
{
  public:
    explicit GateSimulator(const Netlist &netlist);

    /** Clear all sequential state and activity counters. */
    void reset();

    /** Drive a primary input net. */
    void setInput(NetId net, bool value);

    /** Drive a primary input by name. */
    void setInput(const std::string &name, bool value);

    /** Drive a bus of primary inputs with an integer (LSB first). */
    void setBus(const Bus &bus, std::uint64_t value);

    /** Settle the combinational logic. */
    void evaluate();

    /** Clock edge: update flops/latches from settled values. */
    void step();

    /** Convenience: evaluate() then step() then evaluate(). */
    void cycle();

    /** Settled value of a net. */
    bool value(NetId net) const { return values_[net]; }

    /** Read a bus as an integer (LSB first). */
    std::uint64_t readBus(const Bus &bus) const;

    /** Value of a named primary output. */
    bool output(const std::string &name) const;

    // ------------------------------------------------------------
    // Activity accounting
    // ------------------------------------------------------------

    /** Output toggles observed for one gate since reset(). */
    std::uint64_t toggles(GateId gate) const { return toggles_[gate]; }

    /** Total output toggles across all gates since reset(). */
    std::uint64_t totalToggles() const;

    /** Number of step() calls since reset(). */
    std::uint64_t cycles() const { return cycles_; }

    /**
     * Average switching activity: output toggles per gate per cycle.
     * Comparable to the Design Compiler activity factor the paper
     * quotes (0.88).
     */
    double activityFactor() const;

  private:
    void evaluateGate(GateId gi);

    const Netlist &netlist_;
    std::vector<GateId> order_;        ///< levelized comb. gates
    std::vector<GateId> seqGates_;     ///< sequential cell instances
    std::vector<std::uint8_t> values_; ///< per-net settled value
    std::vector<std::uint8_t> seqState_;   ///< per-seq-gate Q
    std::vector<std::uint8_t> busResolved_;///< per-net: TSBUF drove it
    std::vector<std::uint64_t> toggles_;   ///< per-gate output toggles
    std::uint64_t cycles_ = 0;
};

} // namespace printed

#endif // PRINTED_SIM_SIMULATOR_HH
