/**
 * @file
 * Levelized two-value gate-level simulator.
 *
 * Simulates a Netlist cycle by cycle: evaluate() settles the
 * combinational logic in topological order, step() clocks the
 * sequential cells. Used for
 *
 *   - functional verification of synthesized blocks against golden
 *     C++ models (tests/),
 *   - measured switching-activity factors that feed the power model
 *     (the paper reports an average Design Compiler activity of
 *     0.88; we can reproduce activity from simulation instead of
 *     assuming it),
 *   - gate-level fault injection (analysis/fault.hh): a defect map
 *     can be overlaid on the simulator without copying the netlist,
 *     so Monte-Carlo functional-yield trials stay cheap.
 */

#ifndef PRINTED_SIM_SIMULATOR_HH
#define PRINTED_SIM_SIMULATOR_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/netlist.hh"

namespace printed
{

/**
 * Runtime error raised by the simulator for electrically illegal
 * states (SR latch with S=R=1, tri-state bus contention). Unlike
 * panic(), these states are reachable by *valid* netlists under
 * fault injection - a stuck-at defect can enable two bus drivers at
 * once - so they are structured and catchable, carrying the
 * offending cell and net labels.
 */
class SimulationError : public std::runtime_error
{
  public:
    SimulationError(const std::string &what, std::string cell,
                    std::string net)
        : std::runtime_error(what + " [cell " + cell + ", net " +
                             net + "]"),
          cell_(std::move(cell)), net_(std::move(net))
    {}

    /** Label of the offending cell instance. */
    const std::string &cell() const { return cell_; }

    /** Label of the affected net. */
    const std::string &net() const { return net_; }

  private:
    std::string cell_;
    std::string net_;
};

/**
 * Manufacturing-defect kinds injectable at a gate instance
 * (analysis/fault.hh draws these from the Section 3.1 device-yield
 * parameter).
 */
enum class FaultKind : std::uint8_t
{
    None,     ///< no defect (overlay slot unused)
    StuckAt0, ///< output permanently low
    StuckAt1, ///< output permanently high
    /**
     * Input-output pin bridge: the output trace is shorted to one of
     * the cell's own input traces. Resistor-load printed logic makes
     * such shorts dominant-low, so the output becomes
     * out AND value(bridged input) (wired-AND bridging model).
     */
    BridgeInput,
};

/** One injected defect: a gate instance and how it fails. */
struct InjectedFault
{
    GateId gate = invalidGate;
    FaultKind kind = FaultKind::None;
    /** Net the output is shorted to (BridgeInput only). */
    NetId bridge = invalidNet;
};

/**
 * Gate-level simulator bound to one (immutable) Netlist.
 *
 * Semantics:
 *   - DFFX1: Q <= D on step().
 *   - DFFNRX1: Q <= RN ? D : 0 on step(); additionally Q is forced
 *     low whenever RN is 0 during evaluate() (asynchronous clear).
 *   - LATCHX1 (SR): on step(), Q <= S ? 1 : (R ? 0 : Q). S and R
 *     both high throws SimulationError (illegal input).
 *   - TSBUFX1 buses: at most one enabled driver per evaluation
 *     (multiple enabled drivers with equal values are tolerated);
 *     conflicting enabled drivers throw SimulationError; a bus with
 *     no enabled driver keeps its previous value.
 *
 * Fault overlay: setFaults() marks gate instances as defective
 * without touching the netlist; evaluate()/step() then force the
 * defective outputs. faultActivations() counts how often a forced
 * value differed from the fault-free one, which is what separates
 * "fully benign" from "workload-masked" defects in the functional-
 * yield Monte Carlo.
 */
class GateSimulator
{
  public:
    explicit GateSimulator(const Netlist &netlist);

    /**
     * Flushes the accumulated cycle/settle/toggle counts into the
     * process metrics registry ("sim.scalar.*"); reset() does the
     * same before zeroing, so per-gate hot loops never touch an
     * atomic.
     */
    ~GateSimulator();

    /** Clear all sequential state and activity counters. */
    void reset();

    /** Drive a primary input net. */
    void setInput(NetId net, bool value);

    /** Drive a primary input by name. */
    void setInput(const std::string &name, bool value);

    /** Drive a bus of primary inputs with an integer (LSB first). */
    void setBus(const Bus &bus, std::uint64_t value);

    /** Settle the combinational logic. */
    void evaluate();

    /** Clock edge: update flops/latches from settled values. */
    void step();

    /** Convenience: evaluate() then step() then evaluate(). */
    void cycle();

    /** Settled value of a net. */
    bool value(NetId net) const { return values_[net]; }

    /** Read a bus as an integer (LSB first). */
    std::uint64_t readBus(const Bus &bus) const;

    /** Value of a named primary output. */
    bool output(const std::string &name) const;

    // ------------------------------------------------------------
    // Fault overlay
    // ------------------------------------------------------------

    /**
     * Overlay a defect map: each listed gate's output is forced
     * according to its FaultKind from now on. Replaces any earlier
     * overlay and zeroes faultActivations(). Sequential state and
     * activity counters are untouched; call reset() to start a
     * clean faulted trial.
     */
    void setFaults(const std::vector<InjectedFault> &faults);

    /** Drop the fault overlay (fault-free simulation again). */
    void clearFaults();

    /**
     * Times a forced (faulty) output differed from the value the
     * fault-free cell would have produced, since setFaults().
     * Zero after a run means the defect never mattered ("fully
     * benign"); nonzero with correct results means the workload
     * masked it.
     */
    std::uint64_t faultActivations() const { return activations_; }

    // ------------------------------------------------------------
    // Activity accounting
    // ------------------------------------------------------------

    /** Output toggles observed for one gate since reset(). */
    std::uint64_t toggles(GateId gate) const { return toggles_[gate]; }

    /** Total output toggles across all gates since reset(). */
    std::uint64_t totalToggles() const;

    /** Number of step() calls since reset(). */
    std::uint64_t cycles() const { return cycles_; }

    /**
     * Combinational settle walks since reset(): one per evaluate(),
     * plus one for each second settle forced by an asynchronous
     * clear. The fault MC uses the registry mirror of this to report
     * simulation effort per trial.
     */
    std::uint64_t settles() const { return settles_; }

    /**
     * Average switching activity: output toggles per gate per cycle.
     * Comparable to the Design Compiler activity factor the paper
     * quotes (0.88).
     */
    double activityFactor() const;

  private:
    void evaluateGate(GateId gi);

    /** Apply the fault overlay to a fault-free output value. */
    std::uint8_t faultValue(GateId gi, std::uint8_t out);

    /** Add the counts since the last reset() to "sim.scalar.*". */
    void flushMetrics() const;

    const Netlist &netlist_;
    std::vector<GateId> order_;        ///< levelized comb. gates
    std::vector<GateId> seqGates_;     ///< sequential cell instances
    bool hasAsyncClear_ = false;       ///< any DFFNRX1 instance
    bool hasTristate_ = false;         ///< any TSBUFX1 instance
    std::vector<std::uint8_t> values_; ///< per-net settled value
    std::vector<std::uint8_t> seqState_;   ///< per-seq-gate Q
    std::vector<std::uint8_t> busResolved_;///< per-net: TSBUF drove it
    std::vector<std::uint64_t> toggles_;   ///< per-gate output toggles
    std::uint64_t cycles_ = 0;
    std::uint64_t settles_ = 0;

    bool anyFaults_ = false;             ///< overlay non-empty
    std::vector<FaultKind> faultKind_;   ///< per-gate overlay (lazy)
    std::vector<NetId> faultBridge_;     ///< per-gate bridge net
    std::vector<GateId> faultedGates_;   ///< for cheap clearFaults()
    std::uint64_t activations_ = 0;
};

} // namespace printed

#endif // PRINTED_SIM_SIMULATOR_HH
