/**
 * @file
 * VCD (value change dump) tracing for gate-level simulations.
 *
 * Records selected nets of a GateSimulator cycle by cycle and
 * writes a standard VCD file viewable in GTKWave etc. - the
 * debugging companion to the co-simulation harness.
 */

#ifndef PRINTED_SIM_VCD_HH
#define PRINTED_SIM_VCD_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "netlist/netlist.hh"
#include "sim/simulator.hh"

namespace printed
{

/** Streams net values as VCD. */
class VcdWriter
{
  public:
    /**
     * @param os destination stream (kept by reference)
     * @param netlist the design being simulated
     * @param module scope name in the VCD hierarchy
     */
    VcdWriter(std::ostream &os, const Netlist &netlist,
              std::string module = "top");

    /**
     * Trace one net under the given display name. The name is
     * sanitized for the `$var` declaration (whitespace, `$`, and
     * other unsafe characters become `_` — a space or a keyword
     * sigil would break the `$var wire N id name $end` tokenization
     * in VCD readers) and uniquified with a numeric suffix if an
     * earlier signal already claimed it.
     */
    void addSignal(const std::string &name, NetId net);

    /** Trace a bus as a single multi-bit VCD variable (name rules
     *  as addSignal). */
    void addBus(const std::string &name, const Bus &bus);

    /** Trace every named port of the netlist. */
    void addPorts();

    /** Write the header; call once after adding signals. */
    void writeHeader();

    /**
     * Sample the simulator's settled values at a timestamp
     * (typically the cycle number). Emits only changes.
     */
    void sample(const GateSimulator &sim, std::uint64_t time);

  private:
    struct Signal
    {
        std::string name;
        std::string id;   ///< VCD identifier code
        Bus nets;         ///< one entry for scalars
        std::string last; ///< previous emitted value
    };

    std::string nextId();

    /** Sanitized, collision-free display name for a new signal. */
    std::string registerName(const std::string &raw);

    static std::string valueOf(const GateSimulator &sim,
                               const Bus &nets);

    std::ostream &os_;
    const Netlist &netlist_;
    std::string module_;
    std::vector<Signal> signals_;
    std::map<std::string, unsigned> nameUse_; ///< for uniquifying
    unsigned idCounter_ = 0;
    bool headerWritten_ = false;
};

} // namespace printed

#endif // PRINTED_SIM_VCD_HH
