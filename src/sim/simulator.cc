#include "simulator.hh"

#include <numeric>

#include "common/logging.hh"
#include "common/metrics.hh"

namespace printed
{

GateSimulator::GateSimulator(const Netlist &netlist)
    : netlist_(netlist)
{
    netlist_.validate();
    order_ = netlist_.levelize();
    for (GateId gi = 0; gi < netlist_.gateCount(); ++gi) {
        const CellKind kind = netlist_.gate(gi).kind;
        if (cellIsSequential(kind))
            seqGates_.push_back(gi);
        if (kind == CellKind::DFFNRX1)
            hasAsyncClear_ = true;
        if (kind == CellKind::TSBUFX1)
            hasTristate_ = true;
    }

    values_.assign(netlist_.netCount(), 0);
    seqState_.assign(netlist_.gateCount(), 0);
    busResolved_.assign(netlist_.netCount(), 0);
    toggles_.assign(netlist_.gateCount(), 0);
    reset();
}

GateSimulator::~GateSimulator()
{
    flushMetrics();
}

void
GateSimulator::flushMetrics() const
{
    if (cycles_ == 0 && settles_ == 0)
        return;
    static metrics::Counter &cycles =
        metrics::counter("sim.scalar.cycles");
    static metrics::Counter &settles =
        metrics::counter("sim.scalar.settles");
    static metrics::Counter &toggles =
        metrics::counter("sim.scalar.toggles");
    cycles.add(cycles_);
    settles.add(settles_);
    toggles.add(totalToggles());
}

void
GateSimulator::reset()
{
    flushMetrics();
    std::fill(seqState_.begin(), seqState_.end(), 0);
    std::fill(toggles_.begin(), toggles_.end(), 0);
    std::fill(values_.begin(), values_.end(), 0);
    cycles_ = 0;
    settles_ = 0;
    for (NetId n = 0; n < netlist_.netCount(); ++n)
        if (netlist_.netSource(n) == NetSource::Const1)
            values_[n] = 1;
}

void
GateSimulator::setFaults(const std::vector<InjectedFault> &faults)
{
    clearFaults();
    if (faults.empty())
        return;
    if (faultKind_.empty()) {
        faultKind_.assign(netlist_.gateCount(), FaultKind::None);
        faultBridge_.assign(netlist_.gateCount(), invalidNet);
    }
    for (const InjectedFault &f : faults) {
        panicIf(f.gate >= netlist_.gateCount(),
                "setFaults: bad gate id");
        panicIf(f.kind == FaultKind::BridgeInput &&
                    f.bridge >= netlist_.netCount(),
                "setFaults: bad bridge net");
        if (f.kind == FaultKind::None)
            continue;
        faultKind_[f.gate] = f.kind;
        faultBridge_[f.gate] = f.bridge;
        faultedGates_.push_back(f.gate);
    }
    anyFaults_ = !faultedGates_.empty();
}

void
GateSimulator::clearFaults()
{
    for (GateId gi : faultedGates_) {
        faultKind_[gi] = FaultKind::None;
        faultBridge_[gi] = invalidNet;
    }
    faultedGates_.clear();
    anyFaults_ = false;
    activations_ = 0;
}

std::uint8_t
GateSimulator::faultValue(GateId gi, std::uint8_t out)
{
    std::uint8_t forced = out;
    switch (faultKind_[gi]) {
      case FaultKind::None:
        return out;
      case FaultKind::StuckAt0:
        forced = 0;
        break;
      case FaultKind::StuckAt1:
        forced = 1;
        break;
      case FaultKind::BridgeInput:
        // Wired-AND with the bridged trace (dominant-low short).
        forced = out && values_[faultBridge_[gi]];
        break;
    }
    if (forced != out)
        ++activations_;
    return forced;
}

void
GateSimulator::setInput(NetId net, bool value)
{
    panicIf(netlist_.netSource(net) != NetSource::Input,
            "setInput: net is not a primary input");
    values_[net] = value ? 1 : 0;
}

void
GateSimulator::setInput(const std::string &name, bool value)
{
    setInput(netlist_.inputNet(name), value);
}

void
GateSimulator::setBus(const Bus &bus, std::uint64_t value)
{
    for (std::size_t i = 0; i < bus.size(); ++i)
        setInput(bus[i], (value >> i) & 1);
}

void
GateSimulator::evaluateGate(GateId gi)
{
    const Gate &g = netlist_.gate(gi);
    const auto a = values_[g.in0];
    const auto b = g.in1 != invalidNet ? values_[g.in1]
                                       : std::uint8_t(0);
    std::uint8_t out = 0;
    switch (g.kind) {
      case CellKind::INVX1:   out = !a; break;
      case CellKind::NAND2X1: out = !(a && b); break;
      case CellKind::NOR2X1:  out = !(a || b); break;
      case CellKind::AND2X1:  out = a && b; break;
      case CellKind::OR2X1:   out = a || b; break;
      case CellKind::XOR2X1:  out = a != b; break;
      case CellKind::XNOR2X1: out = a == b; break;
      case CellKind::TSBUFX1: {
        // in0 = A, in1 = EN. Disabled buffers contribute nothing;
        // the bus keeps its old value when nothing drives it. A
        // defective buffer corrupts only the value it drives.
        if (!b)
            return;
        std::uint8_t driven = a;
        if (anyFaults_)
            driven = faultValue(gi, driven);
        if (busResolved_[g.out]) {
            if (values_[g.out] != driven)
                throw SimulationError(
                    "tri-state bus conflict",
                    netlist_.gateLabel(gi),
                    netlist_.netLabel(g.out));
            return;
        }
        busResolved_[g.out] = 1;
        if (values_[g.out] != driven) {
            values_[g.out] = driven;
            ++toggles_[gi];
        }
        return;
      }
      default:
        panic("GateSimulator: sequential cell in comb. order");
    }
    if (anyFaults_)
        out = faultValue(gi, out);
    if (values_[g.out] != out) {
        values_[g.out] = out;
        ++toggles_[gi];
    }
}

void
GateSimulator::evaluate()
{
    // Publish sequential state onto Q nets, honouring the
    // asynchronous clear of DFFNRX1 (Q forced low while RN is 0).
    // A defective Q trace overrides even the async clear.
    if (hasTristate_)
        std::fill(busResolved_.begin(), busResolved_.end(), 0);
    for (GateId gi : seqGates_) {
        const Gate &g = netlist_.gate(gi);
        std::uint8_t q = seqState_[gi];
        if (g.kind == CellKind::DFFNRX1 && !values_[g.in1])
            q = 0;
        if (anyFaults_)
            q = faultValue(gi, q);
        values_[g.out] = q;
    }
    for (GateId gi : order_)
        evaluateGate(gi);
    ++settles_;
    // The async clear can depend on combinational logic (rare but
    // legal); settle once more so RN computed above is honoured.
    // Netlists without a DFFNRX1 cannot need the second settle, so
    // skip both the re-clear and the re-walk entirely.
    if (!hasAsyncClear_)
        return;
    bool changed = false;
    for (GateId gi : seqGates_) {
        const Gate &g = netlist_.gate(gi);
        if (g.kind == CellKind::DFFNRX1 && !values_[g.in1] &&
            values_[g.out]) {
            std::uint8_t q = 0;
            if (anyFaults_)
                q = faultValue(gi, q);
            if (values_[g.out] != q) {
                values_[g.out] = q;
                changed = true;
            }
        }
    }
    if (changed) {
        if (hasTristate_)
            std::fill(busResolved_.begin(), busResolved_.end(), 0);
        for (GateId gi : order_)
            evaluateGate(gi);
        ++settles_;
    }
}

void
GateSimulator::step()
{
    for (GateId gi : seqGates_) {
        const Gate &g = netlist_.gate(gi);
        const auto d = values_[g.in0];
        std::uint8_t next = 0;
        switch (g.kind) {
          case CellKind::DFFX1:
            next = d;
            break;
          case CellKind::DFFNRX1: {
            const auto rn = values_[g.in1];
            next = rn ? d : 0;
            break;
          }
          case CellKind::LATCHX1: {
            // in0 = S, in1 = R.
            const auto s = values_[g.in0];
            const auto r = values_[g.in1];
            if (s && r)
                throw SimulationError(
                    "SR latch with S=R=1",
                    netlist_.gateLabel(gi),
                    netlist_.netLabel(g.out));
            next = s ? 1 : (r ? 0 : seqState_[gi]);
            break;
          }
          default:
            panic("GateSimulator: non-sequential cell in seq list");
        }
        if (anyFaults_)
            next = faultValue(gi, next);
        if (seqState_[gi] != next)
            ++toggles_[gi];
        seqState_[gi] = next;
    }
    ++cycles_;
}

void
GateSimulator::cycle()
{
    evaluate();
    step();
    evaluate();
}

std::uint64_t
GateSimulator::readBus(const Bus &bus) const
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bus.size(); ++i)
        if (values_[bus[i]])
            v |= std::uint64_t(1) << i;
    return v;
}

bool
GateSimulator::output(const std::string &name) const
{
    return values_[netlist_.outputNet(name)];
}

std::uint64_t
GateSimulator::totalToggles() const
{
    return std::accumulate(toggles_.begin(), toggles_.end(),
                           std::uint64_t(0));
}

double
GateSimulator::activityFactor() const
{
    if (cycles_ == 0 || netlist_.gateCount() == 0)
        return 0.0;
    return double(totalToggles()) /
           (double(cycles_) * double(netlist_.gateCount()));
}

} // namespace printed
