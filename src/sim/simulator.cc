#include "simulator.hh"

#include <numeric>

#include "common/logging.hh"

namespace printed
{

GateSimulator::GateSimulator(const Netlist &netlist)
    : netlist_(netlist)
{
    netlist_.validate();
    order_ = netlist_.levelize();
    for (GateId gi = 0; gi < netlist_.gateCount(); ++gi)
        if (cellIsSequential(netlist_.gate(gi).kind))
            seqGates_.push_back(gi);

    values_.assign(netlist_.netCount(), 0);
    seqState_.assign(netlist_.gateCount(), 0);
    busResolved_.assign(netlist_.netCount(), 0);
    toggles_.assign(netlist_.gateCount(), 0);
    reset();
}

void
GateSimulator::reset()
{
    std::fill(seqState_.begin(), seqState_.end(), 0);
    std::fill(toggles_.begin(), toggles_.end(), 0);
    std::fill(values_.begin(), values_.end(), 0);
    cycles_ = 0;
    for (NetId n = 0; n < netlist_.netCount(); ++n)
        if (netlist_.net(n).source == NetSource::Const1)
            values_[n] = 1;
}

void
GateSimulator::setInput(NetId net, bool value)
{
    panicIf(netlist_.net(net).source != NetSource::Input,
            "setInput: net is not a primary input");
    values_[net] = value ? 1 : 0;
}

void
GateSimulator::setInput(const std::string &name, bool value)
{
    setInput(netlist_.inputNet(name), value);
}

void
GateSimulator::setBus(const Bus &bus, std::uint64_t value)
{
    for (std::size_t i = 0; i < bus.size(); ++i)
        setInput(bus[i], (value >> i) & 1);
}

void
GateSimulator::evaluateGate(GateId gi)
{
    const Gate &g = netlist_.gate(gi);
    const auto a = values_[g.in0];
    const auto b = g.in1 != invalidNet ? values_[g.in1]
                                       : std::uint8_t(0);
    std::uint8_t out = 0;
    switch (g.kind) {
      case CellKind::INVX1:   out = !a; break;
      case CellKind::NAND2X1: out = !(a && b); break;
      case CellKind::NOR2X1:  out = !(a || b); break;
      case CellKind::AND2X1:  out = a && b; break;
      case CellKind::OR2X1:   out = a || b; break;
      case CellKind::XOR2X1:  out = a != b; break;
      case CellKind::XNOR2X1: out = a == b; break;
      case CellKind::TSBUFX1:
        // in0 = A, in1 = EN. Disabled buffers contribute nothing;
        // the bus keeps its old value when nothing drives it.
        if (!b)
            return;
        if (busResolved_[g.out]) {
            panicIf(values_[g.out] != a,
                    "GateSimulator: tri-state bus conflict");
            return;
        }
        busResolved_[g.out] = 1;
        if (values_[g.out] != a) {
            values_[g.out] = a;
            ++toggles_[gi];
        }
        return;
      default:
        panic("GateSimulator: sequential cell in comb. order");
    }
    if (values_[g.out] != out) {
        values_[g.out] = out;
        ++toggles_[gi];
    }
}

void
GateSimulator::evaluate()
{
    // Publish sequential state onto Q nets, honouring the
    // asynchronous clear of DFFNRX1 (Q forced low while RN is 0).
    std::fill(busResolved_.begin(), busResolved_.end(), 0);
    for (GateId gi : seqGates_) {
        const Gate &g = netlist_.gate(gi);
        std::uint8_t q = seqState_[gi];
        if (g.kind == CellKind::DFFNRX1 && !values_[g.in1])
            q = 0;
        values_[g.out] = q;
    }
    for (GateId gi : order_)
        evaluateGate(gi);
    // The async clear can depend on combinational logic (rare but
    // legal); settle once more so RN computed above is honoured.
    bool changed = false;
    for (GateId gi : seqGates_) {
        const Gate &g = netlist_.gate(gi);
        if (g.kind == CellKind::DFFNRX1 && !values_[g.in1] &&
            values_[g.out]) {
            values_[g.out] = 0;
            changed = true;
        }
    }
    if (changed) {
        std::fill(busResolved_.begin(), busResolved_.end(), 0);
        for (GateId gi : order_)
            evaluateGate(gi);
    }
}

void
GateSimulator::step()
{
    for (GateId gi : seqGates_) {
        const Gate &g = netlist_.gate(gi);
        const auto d = values_[g.in0];
        switch (g.kind) {
          case CellKind::DFFX1:
            if (seqState_[gi] != d)
                ++toggles_[gi];
            seqState_[gi] = d;
            break;
          case CellKind::DFFNRX1: {
            const auto rn = values_[g.in1];
            const std::uint8_t next = rn ? d : 0;
            if (seqState_[gi] != next)
                ++toggles_[gi];
            seqState_[gi] = next;
            break;
          }
          case CellKind::LATCHX1: {
            // in0 = S, in1 = R.
            const auto s = values_[g.in0];
            const auto r = values_[g.in1];
            panicIf(s && r, "GateSimulator: SR latch with S=R=1");
            const std::uint8_t next = s ? 1 : (r ? 0 : seqState_[gi]);
            if (seqState_[gi] != next)
                ++toggles_[gi];
            seqState_[gi] = next;
            break;
          }
          default:
            panic("GateSimulator: non-sequential cell in seq list");
        }
    }
    ++cycles_;
}

void
GateSimulator::cycle()
{
    evaluate();
    step();
    evaluate();
}

std::uint64_t
GateSimulator::readBus(const Bus &bus) const
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bus.size(); ++i)
        if (values_[bus[i]])
            v |= std::uint64_t(1) << i;
    return v;
}

bool
GateSimulator::output(const std::string &name) const
{
    return values_[netlist_.outputNet(name)];
}

std::uint64_t
GateSimulator::totalToggles() const
{
    return std::accumulate(toggles_.begin(), toggles_.end(),
                           std::uint64_t(0));
}

double
GateSimulator::activityFactor() const
{
    if (cycles_ == 0 || netlist_.gateCount() == 0)
        return 0.0;
    return double(totalToggles()) /
           (double(cycles_) * double(netlist_.gateCount()));
}

} // namespace printed
