/**
 * @file
 * 64-lane bit-parallel gate-level simulator.
 *
 * Packs 64 *independent trials* into one std::uint64_t per net: bit
 * L of a net's lane word is the value that net has in trial L. One
 * pass over the levelized gate order then advances all 64 trials at
 * once with plain bitwise ops (~ & | ^), which is what makes the
 * Monte-Carlo loops (functional-yield fault injection, the Figure 7
 * yield leg) run at word speed instead of one uint8_t per net per
 * trial.
 *
 * Relationship to GateSimulator (simulator.hh):
 *   - The scalar simulator stays the golden reference. For any lane
 *     L, the batch simulator computes exactly the values a scalar
 *     simulator would compute given lane L's inputs and lane L's
 *     fault overlay — tests/test_sim.cc fuzzes this equivalence.
 *   - Faults are per-gate *lane masks*: stuck-at-0 clears the
 *     faulted lanes of the output word, stuck-at-1 sets them, an
 *     input bridge wired-ANDs them with the bridged net's word.
 *   - Illegal electrical states (tri-state bus contention, SR latch
 *     with S=R=1) do not throw: the offending lanes are *killed* —
 *     retired from observation and recorded with a reason — while
 *     the other lanes continue. This replaces the scalar engine's
 *     SimulationError, whose per-trial throw/catch would serialize
 *     the batch.
 *
 * Determinism rule: the lane index never feeds an RNG. Lane L's
 * trial seed comes from the trial index it carries (the caller maps
 * trial -> lane), so results are independent of lane packing and of
 * how many lanes a block actually fills.
 */

#ifndef PRINTED_SIM_BATCH_SIMULATOR_HH
#define PRINTED_SIM_BATCH_SIMULATOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hh"
#include "sim/simulator.hh"

namespace printed
{

/** Set of lanes, bit L = lane L. */
using LaneMask = std::uint64_t;

/**
 * 64-trial bit-parallel simulator bound to one (immutable) Netlist.
 *
 * Cell semantics, fault-overlay semantics, and evaluation order are
 * identical to GateSimulator per lane; see simulator.hh. The one
 * intentional divergence is error handling: where the scalar engine
 * throws SimulationError, this engine kills the offending lanes
 * (killedLanes() / killReason()) and keeps simulating the rest.
 *
 * Lane lifecycle: after reset() all 64 lanes are *observed*. A lane
 * leaves observation either by being killed (illegal state, or the
 * harness calling killLanes for a lane-level fatality such as a
 * wild memory write) or by being retired (retireLanes — e.g. its
 * program halted, or its trial slot is unused in a partial block).
 * Unobserved lanes still flow through the bitwise data path (their
 * bits are garbage-tolerated) but no longer contribute toggles,
 * fault activations, or new kills.
 */
class BatchGateSimulator
{
  public:
    /** Trials per batch: bits in the lane word. */
    static constexpr unsigned laneCount = 64;

    /** All 64 lanes. */
    static constexpr LaneMask allLanes = ~LaneMask(0);

    /** Why a lane was killed. */
    enum class KillReason : std::uint8_t
    {
        None,        ///< lane not killed
        BusConflict, ///< tri-state drivers disagreed (scalar: throw)
        LatchSetReset, ///< SR latch saw S=R=1 (scalar: throw)
        Harness,     ///< killed by the harness (e.g. wild RAM write)
    };

    explicit BatchGateSimulator(const Netlist &netlist);

    /**
     * Flushes accumulated cycle/settle/toggle/kill counts into the
     * process metrics registry ("sim.batch.*"); reset() does the
     * same before zeroing, so the lane-word hot loops never touch
     * an atomic.
     */
    ~BatchGateSimulator();

    /**
     * Clear sequential state, activity counters, and lane records:
     * all 64 lanes return to observation. The fault overlay is kept
     * (mirroring GateSimulator::reset()).
     */
    void reset();

    // ------------------------------------------------------------
    // Driving inputs
    // ------------------------------------------------------------

    /** Drive a primary input with one value bit per lane. */
    void setInput(NetId net, LaneMask laneWord);

    /** Drive a primary input to the same value in every lane. */
    void setInputAll(NetId net, bool value);

    /** Drive a primary input by name, same value in every lane. */
    void setInputAll(const std::string &name, bool value);

    /** Drive a bus with the same integer in every lane (LSB first). */
    void setBusAll(const Bus &bus, std::uint64_t value);

    /** Drive one lane of a bus with an integer (LSB first). */
    void setBusLane(const Bus &bus, unsigned lane,
                    std::uint64_t value);

    // ------------------------------------------------------------
    // Simulation
    // ------------------------------------------------------------

    /** Settle the combinational logic (all lanes). */
    void evaluate();

    /** Clock edge: update flops/latches from settled values. */
    void step();

    /** Convenience: evaluate() then step() then evaluate(). */
    void cycle();

    // ------------------------------------------------------------
    // Reading values
    // ------------------------------------------------------------

    /** Settled lane word of a net. */
    LaneMask word(NetId net) const { return values_[net]; }

    /** Settled value of a net in one lane. */
    bool
    value(NetId net, unsigned lane) const
    {
        return (values_[net] >> lane) & 1;
    }

    /** Read one lane of a bus as an integer (LSB first). */
    std::uint64_t readBusLane(const Bus &bus, unsigned lane) const;

    /** Lane word of a named primary output. */
    LaneMask outputWord(const std::string &name) const;

    // ------------------------------------------------------------
    // Fault overlay (per-lane masks)
    // ------------------------------------------------------------

    /**
     * Overlay one lane's defect map. Accumulates on top of earlier
     * setLaneFaults() calls for other lanes; call clearFaults()
     * before starting a fresh batch of trials. Zeroes nothing else.
     */
    void setLaneFaults(unsigned lane,
                       const std::vector<InjectedFault> &faults);

    /** Drop the whole overlay and zero all activation counters. */
    void clearFaults();

    /**
     * Times a forced (faulty) value differed from the fault-free
     * one in this lane while it was observed, since clearFaults().
     * The batch analogue of GateSimulator::faultActivations().
     */
    std::uint64_t
    faultActivations(unsigned lane) const
    {
        return activations_[lane];
    }

    // ------------------------------------------------------------
    // Lane lifecycle (kill masks instead of SimulationError)
    // ------------------------------------------------------------

    /** Lanes still under observation. */
    LaneMask observedLanes() const { return observed_; }

    /** Lanes killed since reset() (sticky until reset). */
    LaneMask killedLanes() const { return killed_; }

    /** Why a lane was killed (None if it was not). */
    KillReason
    killReason(unsigned lane) const
    {
        return killReason_[lane];
    }

    /** Gate whose evaluation killed the lane (invalidGate for
     *  Harness kills and unkilled lanes). */
    GateId killGate(unsigned lane) const { return killGate_[lane]; }

    /**
     * Kill lanes from the harness (classified fatal, recorded, and
     * retired). Used for lane-level failures the simulator cannot
     * see, e.g. a faulted core writing outside its data RAM.
     */
    void killLanes(LaneMask lanes, KillReason reason,
                   GateId gate = invalidGate);

    /**
     * Retire lanes without a kill record: they stop contributing
     * toggles, activations, and kills. Used for halted programs and
     * for unused lanes of a partial trial block.
     */
    void retireLanes(LaneMask lanes) { observed_ &= ~lanes; }

    // ------------------------------------------------------------
    // Activity accounting
    // ------------------------------------------------------------

    /**
     * Output toggles of one gate since reset(), summed over all
     * lanes that were observed when the toggle happened (popcount
     * of the per-evaluation change mask). Equals the sum of the
     * scalar per-trial toggle counts when no lane leaves
     * observation.
     */
    std::uint64_t toggles(GateId gate) const { return toggles_[gate]; }

    /** Total output toggles across all gates since reset(). */
    std::uint64_t totalToggles() const;

    /** Number of step() calls since reset(). */
    std::uint64_t cycles() const { return cycles_; }

    /**
     * Combinational settle walks since reset(): one per evaluate(),
     * plus one per async-clear second settle. Batch analogue of
     * GateSimulator::settles().
     */
    std::uint64_t settles() const { return settles_; }

    /**
     * Average switching activity per gate per cycle *per lane*
     * (toggle popcounts spread over all 64 lanes), comparable to
     * GateSimulator::activityFactor() when all lanes stay observed.
     */
    double activityFactor() const;

  private:
    /** One bridged-input fault: the affected lanes and aggressor. */
    struct BridgeLanes
    {
        LaneMask lanes = 0;
        NetId net = invalidNet;
    };

    void evaluateGate(GateId gi);

    /** One walk of the levelized order; fault-activation counting
     *  restricted to countLanes (see the second-settle note). */
    void combPass(LaneMask countLanes = allLanes);

    /**
     * Apply the per-gate fault masks to a fault-free lane word;
     * lanes in countMask that end up forced to a different value
     * bump their activation counters.
     */
    LaneMask applyFault(GateId gi, LaneMask out, LaneMask countMask);

    void kill(LaneMask lanes, KillReason reason, GateId gate);

    /** Add the counts since the last reset() to "sim.batch.*". */
    void flushMetrics() const;

    const Netlist &netlist_;
    std::vector<GateId> order_;    ///< levelized comb. gates
    std::vector<GateId> seqGates_; ///< sequential cell instances
    std::vector<NetId> busNets_;   ///< distinct TSBUF output nets
    bool hasAsyncClear_ = false;   ///< any DFFNRX1 present
    std::vector<LaneMask> values_;     ///< per-net lane word
    std::vector<LaneMask> seqState_;   ///< per-seq-gate Q lane word
    std::vector<LaneMask> busDriven_;  ///< per-net: TSBUF drove lanes
    std::vector<std::uint64_t> toggles_; ///< per-gate toggle popcounts
    std::uint64_t cycles_ = 0;
    std::uint64_t settles_ = 0;

    LaneMask observed_ = allLanes;
    LaneMask countMask_ = allLanes; ///< activation-count restriction
    LaneMask killed_ = 0;
    std::array<KillReason, laneCount> killReason_{};
    std::array<GateId, laneCount> killGate_{};

    bool anyFaults_ = false;
    std::vector<LaneMask> faultAny_; ///< per-gate: lanes with a fault
    std::vector<LaneMask> faultM0_;  ///< per-gate stuck-at-0 lanes
    std::vector<LaneMask> faultM1_;  ///< per-gate stuck-at-1 lanes
    std::vector<std::vector<BridgeLanes>> faultBridge_;
    std::vector<GateId> faultedGates_; ///< for cheap clearFaults()
    std::array<std::uint64_t, laneCount> activations_{};
};

} // namespace printed

#endif // PRINTED_SIM_BATCH_SIMULATOR_HH
