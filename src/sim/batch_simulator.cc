#include "batch_simulator.hh"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/logging.hh"
#include "common/metrics.hh"

namespace printed
{

BatchGateSimulator::BatchGateSimulator(const Netlist &netlist)
    : netlist_(netlist)
{
    netlist_.validate();
    order_ = netlist_.levelize();
    for (GateId gi = 0; gi < netlist_.gateCount(); ++gi) {
        const Gate &g = netlist_.gate(gi);
        if (cellIsSequential(g.kind))
            seqGates_.push_back(gi);
        if (g.kind == CellKind::DFFNRX1)
            hasAsyncClear_ = true;
        if (g.kind == CellKind::TSBUFX1)
            busNets_.push_back(g.out);
    }
    std::sort(busNets_.begin(), busNets_.end());
    busNets_.erase(std::unique(busNets_.begin(), busNets_.end()),
                   busNets_.end());

    values_.assign(netlist_.netCount(), 0);
    seqState_.assign(netlist_.gateCount(), 0);
    busDriven_.assign(netlist_.netCount(), 0);
    toggles_.assign(netlist_.gateCount(), 0);
    reset();
}

BatchGateSimulator::~BatchGateSimulator()
{
    flushMetrics();
}

void
BatchGateSimulator::flushMetrics() const
{
    if (cycles_ == 0 && settles_ == 0 && killed_ == 0)
        return;
    static metrics::Counter &cycles =
        metrics::counter("sim.batch.cycles");
    static metrics::Counter &settles =
        metrics::counter("sim.batch.settles");
    static metrics::Counter &toggles =
        metrics::counter("sim.batch.toggles");
    static metrics::Counter &kills =
        metrics::counter("sim.batch.kills");
    cycles.add(cycles_);
    settles.add(settles_);
    toggles.add(totalToggles());
    kills.add(std::popcount(killed_));
}

void
BatchGateSimulator::reset()
{
    flushMetrics();
    std::fill(seqState_.begin(), seqState_.end(), 0);
    std::fill(toggles_.begin(), toggles_.end(), 0);
    std::fill(values_.begin(), values_.end(), 0);
    cycles_ = 0;
    settles_ = 0;
    for (NetId n = 0; n < netlist_.netCount(); ++n)
        if (netlist_.netSource(n) == NetSource::Const1)
            values_[n] = allLanes;
    observed_ = allLanes;
    killed_ = 0;
    killReason_.fill(KillReason::None);
    killGate_.fill(invalidGate);
}

// ----------------------------------------------------------------
// Fault overlay
// ----------------------------------------------------------------

void
BatchGateSimulator::setLaneFaults(
    unsigned lane, const std::vector<InjectedFault> &faults)
{
    panicIf(lane >= laneCount, "setLaneFaults: bad lane");
    if (faults.empty())
        return;
    if (faultAny_.empty()) {
        faultAny_.assign(netlist_.gateCount(), 0);
        faultM0_.assign(netlist_.gateCount(), 0);
        faultM1_.assign(netlist_.gateCount(), 0);
        faultBridge_.resize(netlist_.gateCount());
    }
    const LaneMask bit = LaneMask(1) << lane;
    for (const InjectedFault &f : faults) {
        panicIf(f.gate >= netlist_.gateCount(),
                "setLaneFaults: bad gate id");
        panicIf(f.kind == FaultKind::BridgeInput &&
                    f.bridge >= netlist_.netCount(),
                "setLaneFaults: bad bridge net");
        if (f.kind == FaultKind::None)
            continue;
        if (!faultAny_[f.gate])
            faultedGates_.push_back(f.gate);
        // Last fault wins per (gate, lane), as the scalar engine's
        // setFaults overwrites the per-gate overlay slot.
        faultAny_[f.gate] |= bit;
        faultM0_[f.gate] &= ~bit;
        faultM1_[f.gate] &= ~bit;
        for (BridgeLanes &b : faultBridge_[f.gate])
            b.lanes &= ~bit;
        switch (f.kind) {
          case FaultKind::StuckAt0:
            faultM0_[f.gate] |= bit;
            break;
          case FaultKind::StuckAt1:
            faultM1_[f.gate] |= bit;
            break;
          case FaultKind::BridgeInput: {
            auto &bridges = faultBridge_[f.gate];
            bool merged = false;
            for (BridgeLanes &b : bridges) {
                if (b.net == f.bridge) {
                    b.lanes |= bit;
                    merged = true;
                    break;
                }
            }
            if (!merged)
                bridges.push_back({bit, f.bridge});
            break;
          }
          case FaultKind::None:
            break;
        }
    }
    anyFaults_ = !faultedGates_.empty();
}

void
BatchGateSimulator::clearFaults()
{
    for (GateId gi : faultedGates_) {
        faultAny_[gi] = 0;
        faultM0_[gi] = 0;
        faultM1_[gi] = 0;
        faultBridge_[gi].clear();
    }
    faultedGates_.clear();
    anyFaults_ = false;
    activations_.fill(0);
}

LaneMask
BatchGateSimulator::applyFault(GateId gi, LaneMask out,
                               LaneMask countMask)
{
    LaneMask forced = out;
    forced &= ~faultM0_[gi];
    forced |= faultM1_[gi];
    // Wired-AND with the bridged trace (dominant-low short) on the
    // bridged lanes only.
    for (const BridgeLanes &b : faultBridge_[gi])
        forced &= ~b.lanes | values_[b.net];
    LaneMask d = (forced ^ out) & countMask;
    while (d) {
        ++activations_[unsigned(std::countr_zero(d))];
        d &= d - 1;
    }
    return forced;
}

// ----------------------------------------------------------------
// Inputs
// ----------------------------------------------------------------

void
BatchGateSimulator::setInput(NetId net, LaneMask laneWord)
{
    panicIf(netlist_.netSource(net) != NetSource::Input,
            "setInput: net is not a primary input");
    values_[net] = laneWord;
}

void
BatchGateSimulator::setInputAll(NetId net, bool value)
{
    setInput(net, value ? allLanes : 0);
}

void
BatchGateSimulator::setInputAll(const std::string &name, bool value)
{
    setInputAll(netlist_.inputNet(name), value);
}

void
BatchGateSimulator::setBusAll(const Bus &bus, std::uint64_t value)
{
    for (std::size_t i = 0; i < bus.size(); ++i)
        setInputAll(bus[i], (value >> i) & 1);
}

void
BatchGateSimulator::setBusLane(const Bus &bus, unsigned lane,
                               std::uint64_t value)
{
    panicIf(lane >= laneCount, "setBusLane: bad lane");
    const LaneMask bit = LaneMask(1) << lane;
    for (std::size_t i = 0; i < bus.size(); ++i) {
        panicIf(netlist_.netSource(bus[i]) != NetSource::Input,
                "setBusLane: net is not a primary input");
        if ((value >> i) & 1)
            values_[bus[i]] |= bit;
        else
            values_[bus[i]] &= ~bit;
    }
}

// ----------------------------------------------------------------
// Evaluation
// ----------------------------------------------------------------

void
BatchGateSimulator::kill(LaneMask lanes, KillReason reason,
                         GateId gate)
{
    lanes &= observed_;
    if (!lanes)
        return;
    killed_ |= lanes;
    observed_ &= ~lanes;
    while (lanes) {
        const unsigned lane = unsigned(std::countr_zero(lanes));
        killReason_[lane] = reason;
        killGate_[lane] = gate;
        lanes &= lanes - 1;
    }
}

void
BatchGateSimulator::killLanes(LaneMask lanes, KillReason reason,
                              GateId gate)
{
    kill(lanes, reason, gate);
}

void
BatchGateSimulator::evaluateGate(GateId gi)
{
    const Gate &g = netlist_.gate(gi);
    const LaneMask a = values_[g.in0];
    const LaneMask b =
        g.in1 != invalidNet ? values_[g.in1] : LaneMask(0);
    LaneMask out = 0;
    switch (g.kind) {
      case CellKind::INVX1:   out = ~a; break;
      case CellKind::NAND2X1: out = ~(a & b); break;
      case CellKind::NOR2X1:  out = ~(a | b); break;
      case CellKind::AND2X1:  out = a & b; break;
      case CellKind::OR2X1:   out = a | b; break;
      case CellKind::XOR2X1:  out = a ^ b; break;
      case CellKind::XNOR2X1: out = ~(a ^ b); break;
      case CellKind::TSBUFX1: {
        // in0 = A, in1 = EN. Per lane: disabled buffers contribute
        // nothing and the bus keeps its old value when nothing
        // drives it. Lanes where a second enabled driver disagrees
        // are killed (the scalar engine's bus-conflict throw).
        const LaneMask en = b;
        LaneMask driven = a;
        if (anyFaults_ && faultAny_[gi])
            driven = applyFault(gi, a, en & countMask_ & observed_);
        const LaneMask conflict = busDriven_[g.out] & en &
                                  (values_[g.out] ^ driven) &
                                  observed_;
        if (conflict)
            kill(conflict, KillReason::BusConflict, gi);
        const LaneMask drive = en & ~busDriven_[g.out];
        const LaneMask neww =
            (values_[g.out] & ~drive) | (driven & drive);
        const LaneMask d = (values_[g.out] ^ neww) & observed_;
        if (d)
            toggles_[gi] += std::uint64_t(std::popcount(d));
        values_[g.out] = neww;
        busDriven_[g.out] |= en;
        return;
      }
      default:
        panic("BatchGateSimulator: sequential cell in comb. order");
    }
    if (anyFaults_ && faultAny_[gi])
        out = applyFault(gi, out, countMask_ & observed_);
    const LaneMask d = (values_[g.out] ^ out) & observed_;
    if (d)
        toggles_[gi] += std::uint64_t(std::popcount(d));
    values_[g.out] = out;
}

void
BatchGateSimulator::combPass(LaneMask countLanes)
{
    // Activation counting is restricted to countLanes: the async-
    // clear second settle re-walks the order for every lane, but
    // the scalar engine re-walks only the sims whose async clear
    // actually changed something — counting again for unchanged
    // lanes would diverge from the per-lane scalar counts. (Toggle
    // counts need no mask: unchanged lanes recompute identical
    // values, so their change masks are zero in the second pass.)
    countMask_ = countLanes;
    for (NetId n : busNets_)
        busDriven_[n] = 0;
    for (GateId gi : order_)
        evaluateGate(gi);
    countMask_ = allLanes;
    ++settles_;
}

void
BatchGateSimulator::evaluate()
{
    // Publish sequential state onto Q nets, honouring the
    // asynchronous clear of DFFNRX1 (Q forced low while RN is 0).
    // A defective Q trace overrides even the async clear.
    for (GateId gi : seqGates_) {
        const Gate &g = netlist_.gate(gi);
        LaneMask q = seqState_[gi];
        if (g.kind == CellKind::DFFNRX1)
            q &= values_[g.in1];
        if (anyFaults_ && faultAny_[gi])
            q = applyFault(gi, q, observed_);
        values_[g.out] = q;
    }
    combPass();
    if (!hasAsyncClear_)
        return;
    // The async clear can depend on combinational logic (rare but
    // legal); settle once more so RN computed above is honoured.
    LaneMask changed = 0;
    for (GateId gi : seqGates_) {
        const Gate &g = netlist_.gate(gi);
        if (g.kind != CellKind::DFFNRX1)
            continue;
        const LaneMask m = ~values_[g.in1] & values_[g.out];
        if (!m)
            continue;
        LaneMask q = 0;
        if (anyFaults_ && faultAny_[gi])
            q = applyFault(gi, 0, m & observed_);
        changed |= (values_[g.out] ^ q) & m;
        values_[g.out] = (values_[g.out] & ~m) | (q & m);
    }
    if (changed)
        combPass(changed);
}

void
BatchGateSimulator::step()
{
    for (GateId gi : seqGates_) {
        const Gate &g = netlist_.gate(gi);
        LaneMask next = 0;
        switch (g.kind) {
          case CellKind::DFFX1:
            next = values_[g.in0];
            break;
          case CellKind::DFFNRX1:
            next = values_[g.in0] & values_[g.in1];
            break;
          case CellKind::LATCHX1: {
            // in0 = S, in1 = R. Lanes with S = R = 1 are killed
            // (the scalar engine's illegal-input throw).
            const LaneMask s = values_[g.in0];
            const LaneMask r = values_[g.in1];
            const LaneMask bad = s & r & observed_;
            if (bad)
                kill(bad, KillReason::LatchSetReset, gi);
            next = s | (~r & seqState_[gi]);
            break;
          }
          default:
            panic("BatchGateSimulator: non-sequential cell in seq "
                  "list");
        }
        if (anyFaults_ && faultAny_[gi])
            next = applyFault(gi, next, observed_);
        const LaneMask d = (seqState_[gi] ^ next) & observed_;
        if (d)
            toggles_[gi] += std::uint64_t(std::popcount(d));
        seqState_[gi] = next;
    }
    ++cycles_;
}

void
BatchGateSimulator::cycle()
{
    evaluate();
    step();
    evaluate();
}

// ----------------------------------------------------------------
// Reading
// ----------------------------------------------------------------

std::uint64_t
BatchGateSimulator::readBusLane(const Bus &bus, unsigned lane) const
{
    panicIf(lane >= laneCount, "readBusLane: bad lane");
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bus.size(); ++i)
        v |= ((values_[bus[i]] >> lane) & 1) << i;
    return v;
}

LaneMask
BatchGateSimulator::outputWord(const std::string &name) const
{
    return values_[netlist_.outputNet(name)];
}

std::uint64_t
BatchGateSimulator::totalToggles() const
{
    return std::accumulate(toggles_.begin(), toggles_.end(),
                           std::uint64_t(0));
}

double
BatchGateSimulator::activityFactor() const
{
    if (cycles_ == 0 || netlist_.gateCount() == 0)
        return 0.0;
    return double(totalToggles()) /
           (double(cycles_) * double(netlist_.gateCount()) *
            double(laneCount));
}

} // namespace printed
