#include "system_eval.hh"

#include "analysis/characterize.hh"
#include "apps/battery.hh"
#include "arch/machine.hh"
#include "arch/pipeline.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "core/generator.hh"
#include "mem/ram.hh"
#include "mem/rom.hh"
#include "progspec/analyze.hh"
#include "progspec/specialize.hh"

namespace printed
{

std::uint64_t
SystemEval::iterationsOn30mAh() const
{
    const double budget = table8Battery().energyJoules();
    const double per_iter = energyTotal() * 1e-3; // mJ -> J
    fatalIf(per_iter <= 0, "iterationsOn30mAh: no energy model");
    return std::uint64_t(budget / per_iter);
}

SystemEval
evaluateSystem(const Workload &workload, const CoreConfig &config,
               TechKind tech, unsigned rom_bits_per_cell)
{
    const Program &program = workload.program;
    fatalIf(program.isa.datawidth != config.isa.datawidth,
            "evaluateSystem: datawidth mismatch between program "
            "and core");

    // ------------------------------------------------------------
    // Dynamic behavior: run the program on the ISS. (The specialized
    // encoding changes field packing, not semantics, so the standard
    // ISS statistics apply to both variants.)
    // ------------------------------------------------------------
    TpIsaMachine machine(program, workload.dmemWords);
    const auto inputs =
        defaultInputs(workload.kind, workload.dataWidth);
    workload.load(
        [&](std::size_t a, std::uint64_t v) { machine.setMem(a, v); },
        inputs);
    if (workload.streamAddr >= 0)
        machine.setStreamPort(std::size_t(workload.streamAddr),
                              workload.streamInputs(inputs));
    const ExecutionStats &stats = machine.run();
    fatalIf(stats.halt == HaltReason::MaxSteps,
            "evaluateSystem: benchmark did not terminate");

    SystemEval eval;
    eval.label = program.name + "@" + config.label();
    eval.config = config;
    eval.tech = tech;
    eval.instructions = stats.instructions;
    eval.cycles = pipelineCycles(stats, config.stages);

    // ------------------------------------------------------------
    // Components: synthesized core + exactly-sized memories.
    // ------------------------------------------------------------
    const CellLibrary &lib = libraryFor(tech);
    const Netlist netlist = buildCore(config);
    const Characterization core = characterize(netlist, lib);

    const CrosspointRom rom(program.size(),
                            config.isa.instructionBits(),
                            rom_bits_per_cell, tech);
    const SramRam ram(workload.dmemWords, config.isa.datawidth,
                      tech);

    // ------------------------------------------------------------
    // Timing: each cycle serially fetches (ROM), computes (core),
    // and accesses data (read + write-back RAM phases).
    // ------------------------------------------------------------
    const double t_core = usToSeconds(core.timing.periodUs);
    const double t_rom = msToSeconds(rom.readDelayMs());
    const double t_ram = msToSeconds(ram.accessDelayMs());
    eval.cycleSeconds = t_core + t_rom + 2 * t_ram;

    const double cycles = double(eval.cycles);
    eval.timeCore = cycles * t_core;
    eval.timeImem = cycles * t_rom;
    eval.timeDmem = cycles * 2 * t_ram;
    const double total_time = eval.timeTotal();

    // ------------------------------------------------------------
    // Energy: dynamic per event + static over the run.
    // mW * s = mJ; nJ -> mJ via 1e-6; uW * s = mJ via 1e-3.
    // ------------------------------------------------------------
    const double f_eff = 1.0 / eval.cycleSeconds;
    const PowerReport core_power =
        analyzePower(netlist, lib, f_eff);
    const double core_energy_mj = core_power.total_mW * total_time;
    const double comb_share =
        core_power.total_mW > 0
            ? core_power.comb_mW / core_power.total_mW
            : 0.0;
    eval.energyComb = core_energy_mj * comb_share;
    eval.energyRegs = core_energy_mj * (1.0 - comb_share);

    eval.energyImem =
        cycles * rom.readEnergyNj() * 1e-6 +
        rom.staticPower_uW() * total_time * 1e-3;
    const double ram_accesses =
        double(stats.memReads + stats.memWrites);
    eval.energyDmem =
        ram_accesses * ram.accessEnergyNj() * 1e-6 +
        ram.staticPower_uW() * total_time * 1e-3;

    // ------------------------------------------------------------
    // Area.
    // ------------------------------------------------------------
    eval.areaComb = mm2ToCm2(core.area.comb_mm2);
    eval.areaRegs = mm2ToCm2(core.area.seq_mm2);
    eval.areaImem = mm2ToCm2(rom.areaMm2());
    eval.areaDmem = mm2ToCm2(ram.areaMm2());
    return eval;
}

SystemEval
evaluateSpecializedSystem(const Workload &workload, TechKind tech,
                          unsigned rom_bits_per_cell)
{
    // The specialized encoding changes instruction packing, not
    // program behavior, so the dynamic statistics come from the
    // standard program; the core and ROM are sized from the
    // specialized configuration. (specializeProgram() produces the
    // actual narrow ROM image; its gate-level equivalence is
    // covered by tests/test_progspec.cc.)
    const CoreConfig cfg =
        specializedConfig(workload.program, workload.dmemWords);
    SystemEval eval = evaluateSystem(workload, cfg, tech,
                                     rom_bits_per_cell);
    eval.label = workload.program.name + "@PS";
    return eval;
}

} // namespace printed
