#include "sweep.hh"

#include <string>

#include "common/metrics.hh"
#include "common/parallel.hh"
#include "common/trace.hh"
#include "synth/cache.hh"
#include "workloads/kernels.hh"

namespace printed
{

DesignPoint
evaluateDesignPoint(const CoreConfig &config)
{
    trace::Span span("dse.point", config.label());
    metrics::counter("dse.points").add(1);
    SynthCache &cache = SynthCache::global();
    DesignPoint point;
    point.config = config;
    point.egfet = *cache.characterization(config, TechKind::EGFET);
    point.cnt = *cache.characterization(config, TechKind::CNT_TFT);
    return point;
}

std::vector<CoreConfig>
figure7Configs()
{
    std::vector<CoreConfig> configs;
    for (unsigned stages : {1u, 2u, 3u})
        for (unsigned width : {4u, 8u, 16u, 32u})
            for (unsigned bars : {2u, 4u})
                configs.push_back(
                    CoreConfig::standard(stages, width, bars));
    return configs;
}

std::vector<DesignPoint>
sweepConfigs(const std::vector<CoreConfig> &configs,
             const SweepOptions &opts)
{
    trace::Span span("dse.sweep",
                     std::to_string(configs.size()) + " configs");
    auto eval = [&](std::size_t i) {
        return evaluateDesignPoint(configs[i]);
    };
    if (opts.pool)
        return opts.pool->parallelMap(configs.size(), eval);
    return parallelMap(opts.threads, configs.size(), eval);
}

std::vector<DesignPoint>
sweepDesignSpace(const SweepOptions &opts)
{
    return sweepConfigs(figure7Configs(), opts);
}

std::vector<std::pair<legacy::LegacyCore, Kernel>>
IssSweepSpec::grid() const
{
    std::vector<legacy::LegacyCore> cs = cores;
    if (cs.empty())
        cs.assign(legacy::allLegacyCores.begin(),
                  legacy::allLegacyCores.end());
    std::vector<Kernel> ks = kernels;
    if (ks.empty())
        ks = {Kernel::Mult, Kernel::Div};
    std::vector<std::pair<legacy::LegacyCore, Kernel>> out;
    out.reserve(cs.size() * ks.size());
    for (legacy::LegacyCore c : cs)
        for (Kernel k : ks)
            out.emplace_back(c, k);
    return out;
}

IssSweepPoint
evaluateIssPoint(legacy::LegacyCore core, Kernel kernel,
                 const IssSweepSpec &spec, const SweepOptions &opts)
{
    trace::Span span("dse.iss_point",
                     std::string(legacy::issCoreId(core)) + "/" +
                         kernelName(kernel));
    const legacy::IrProgram prog =
        legacy::irKernel(kernel, spec.width);
    std::vector<std::vector<std::uint64_t>> inputs;
    inputs.reserve(spec.machines);
    for (std::size_t m = 0; m < spec.machines; ++m)
        inputs.push_back(
            defaultInputs(kernel, spec.width, spec.seed + m));

    legacy::IssBatchOptions bopts;
    bopts.engine = spec.engine;
    bopts.maxSteps = spec.maxSteps;
    bopts.threads = opts.threads;
    bopts.pool = opts.pool;
    const legacy::IssBatchResult res =
        legacy::runLegacyBatch(core, prog, inputs, bopts);

    IssSweepPoint point;
    point.core = core;
    point.kernel = kernel;
    point.width = spec.width;
    point.machines = spec.machines;
    point.instructions = res.totalInstructions;
    point.cycles = res.totalCycles;
    point.codeBytes = res.codeBytes;
    for (std::size_t m = 0; m < res.runs.size(); ++m) {
        switch (res.status[m]) {
          case legacy::MachineStatus::Halted: ++point.halted; break;
          case legacy::MachineStatus::OutOfBudget:
            ++point.outOfBudget;
            break;
          case legacy::MachineStatus::Killed: ++point.killed; break;
        }
    }
    point.outputsFnv = legacy::issResultFnv(res);
    return point;
}

std::vector<IssSweepPoint>
sweepLegacyIss(const IssSweepSpec &spec, const SweepOptions &opts)
{
    const auto grid = spec.grid();
    trace::Span span("dse.iss_sweep",
                     std::to_string(grid.size()) + " points x " +
                         std::to_string(spec.machines) +
                         " machines");
    std::vector<IssSweepPoint> points;
    points.reserve(grid.size());
    // Points run sequentially: each point already spreads its
    // machines over the pool, and nesting pools would oversubscribe.
    for (const auto &[core, kernel] : grid)
        points.push_back(
            evaluateIssPoint(core, kernel, spec, opts));
    return points;
}

std::vector<YieldPoint>
sweepFunctionalYield(const std::vector<CoreConfig> &configs,
                     const FunctionalYieldConfig &mc)
{
    SynthCache &cache = SynthCache::global();
    std::vector<YieldPoint> points;
    points.reserve(configs.size());
    for (const CoreConfig &config : configs) {
        YieldPoint p;
        p.config = config;
        p.report = measureFunctionalYield(*cache.core(config),
                                          config, mc);
        points.push_back(std::move(p));
    }
    return points;
}

} // namespace printed
