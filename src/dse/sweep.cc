#include "sweep.hh"

#include <string>

#include "common/metrics.hh"
#include "common/parallel.hh"
#include "common/trace.hh"
#include "synth/cache.hh"

namespace printed
{

DesignPoint
evaluateDesignPoint(const CoreConfig &config)
{
    trace::Span span("dse.point", config.label());
    metrics::counter("dse.points").add(1);
    SynthCache &cache = SynthCache::global();
    DesignPoint point;
    point.config = config;
    point.egfet = *cache.characterization(config, TechKind::EGFET);
    point.cnt = *cache.characterization(config, TechKind::CNT_TFT);
    return point;
}

std::vector<CoreConfig>
figure7Configs()
{
    std::vector<CoreConfig> configs;
    for (unsigned stages : {1u, 2u, 3u})
        for (unsigned width : {4u, 8u, 16u, 32u})
            for (unsigned bars : {2u, 4u})
                configs.push_back(
                    CoreConfig::standard(stages, width, bars));
    return configs;
}

std::vector<DesignPoint>
sweepConfigs(const std::vector<CoreConfig> &configs,
             const SweepOptions &opts)
{
    trace::Span span("dse.sweep",
                     std::to_string(configs.size()) + " configs");
    auto eval = [&](std::size_t i) {
        return evaluateDesignPoint(configs[i]);
    };
    if (opts.pool)
        return opts.pool->parallelMap(configs.size(), eval);
    return parallelMap(opts.threads, configs.size(), eval);
}

std::vector<DesignPoint>
sweepDesignSpace(const SweepOptions &opts)
{
    return sweepConfigs(figure7Configs(), opts);
}

std::vector<YieldPoint>
sweepFunctionalYield(const std::vector<CoreConfig> &configs,
                     const FunctionalYieldConfig &mc)
{
    SynthCache &cache = SynthCache::global();
    std::vector<YieldPoint> points;
    points.reserve(configs.size());
    for (const CoreConfig &config : configs) {
        YieldPoint p;
        p.config = config;
        p.report = measureFunctionalYield(*cache.core(config),
                                          config, mc);
        points.push_back(std::move(p));
    }
    return points;
}

} // namespace printed
