#include "sweep.hh"

#include "core/generator.hh"

namespace printed
{

DesignPoint
evaluateDesignPoint(const CoreConfig &config)
{
    DesignPoint point;
    point.config = config;
    const Netlist netlist = buildCore(config);
    point.egfet = characterize(netlist, egfetLibrary());
    point.cnt = characterize(netlist, cntLibrary());
    return point;
}

std::vector<DesignPoint>
sweepDesignSpace()
{
    std::vector<DesignPoint> points;
    for (unsigned stages : {1u, 2u, 3u})
        for (unsigned width : {4u, 8u, 16u, 32u})
            for (unsigned bars : {2u, 4u})
                points.push_back(evaluateDesignPoint(
                    CoreConfig::standard(stages, width, bars)));
    return points;
}

} // namespace printed
