/**
 * @file
 * Application-level system evaluation (paper Section 8, Figure 8,
 * Table 8): a TP-ISA core plus its crosspoint instruction ROM and
 * SRAM data memory running one benchmark.
 *
 * The ROM is sized to exactly the program's static instructions
 * and the RAM to exactly its data footprint, as in the paper.
 * Results are broken down the way Figure 8 partitions its bars:
 * area and energy into combinational / registers / instruction
 * memory / data memory, execution time into core / IM / DM.
 */

#ifndef PRINTED_DSE_SYSTEM_EVAL_HH
#define PRINTED_DSE_SYSTEM_EVAL_HH

#include <cstdint>
#include <string>

#include "core/config.hh"
#include "tech/technology.hh"
#include "workloads/kernels.hh"

namespace printed
{

/** One Figure 8 bar: a (kernel, core) system in one technology. */
struct SystemEval
{
    std::string label;
    CoreConfig config;
    TechKind tech = TechKind::EGFET;

    // --- per-iteration dynamic counts -------------------------
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;

    // --- area [cm^2], Figure 8 stacking -----------------------
    double areaComb = 0;
    double areaRegs = 0;
    double areaImem = 0;
    double areaDmem = 0;
    double areaTotal() const
    {
        return areaComb + areaRegs + areaImem + areaDmem;
    }

    // --- energy per iteration [mJ] ----------------------------
    double energyComb = 0;
    double energyRegs = 0;
    double energyImem = 0;
    double energyDmem = 0;
    double energyTotal() const
    {
        return energyComb + energyRegs + energyImem + energyDmem;
    }

    // --- execution time per iteration [s] ---------------------
    double timeCore = 0;
    double timeImem = 0;
    double timeDmem = 0;
    double timeTotal() const
    {
        return timeCore + timeImem + timeDmem;
    }

    /** Effective clock period [s] (core + IM + DM phases). */
    double cycleSeconds = 0;

    /** Table 8: iterations a 30 mAh, 1 V battery sustains. */
    std::uint64_t iterationsOn30mAh() const;
};

/**
 * Evaluate one benchmark on one core configuration.
 *
 * @param workload the benchmark instantiation (its program must
 *        target the same ISA shape as `config`)
 * @param config core configuration (standard or specialized)
 * @param tech technology
 * @param rom_bits_per_cell 1 for SLC, 2/4 for the MLC ROM of the
 *        dTree-ROMopt experiment
 */
SystemEval evaluateSystem(const Workload &workload,
                          const CoreConfig &config, TechKind tech,
                          unsigned rom_bits_per_cell = 1);

/**
 * Convenience: evaluate the program-specific variant - derive the
 * specialized configuration from the workload's program, transcode
 * it, and evaluate.
 */
SystemEval evaluateSpecializedSystem(const Workload &workload,
                                     TechKind tech,
                                     unsigned rom_bits_per_cell = 1);

} // namespace printed

#endif // PRINTED_DSE_SYSTEM_EVAL_HH
