/**
 * @file
 * Design-space exploration of TP-ISA cores (paper Section 5.2,
 * Figure 7): sweep pipeline depth x datawidth x BAR count,
 * synthesize every point, and characterize it in both printed
 * technologies.
 *
 * Every design point is independent, so the sweep runs on the
 * deterministic parallel layer (common/parallel.hh): points are
 * evaluated concurrently and collected by index, making the result
 * vector bit-identical for any thread count. Synthesis and
 * characterization go through the process-wide SynthCache, so a
 * second sweep over the same configs (or a bench re-using a core a
 * test already built) is served from memory.
 */

#ifndef PRINTED_DSE_SWEEP_HH
#define PRINTED_DSE_SWEEP_HH

#include <utility>
#include <vector>

#include "analysis/characterize.hh"
#include "analysis/fault.hh"
#include "core/config.hh"
#include "legacy/batch_iss.hh"
#include "workloads/golden.hh"

namespace printed
{

/** One synthesized + characterized design point. */
struct DesignPoint
{
    CoreConfig config;
    Characterization egfet;
    Characterization cnt;
};

class ThreadPool;

/** Options of a design-space sweep. */
struct SweepOptions
{
    /** Worker threads; 0 = hardware concurrency, 1 = serial. */
    unsigned threads = 1;

    /**
     * When set, points are evaluated on this caller-owned pool
     * instead of a transient one (`threads` is ignored). Used by
     * the printedd server so every request shares one pool.
     */
    ThreadPool *pool = nullptr;
};

/** The 24 Figure 7 configurations, in canonical order. */
std::vector<CoreConfig> figure7Configs();

/**
 * The Figure 7 sweep: stages in {1,2,3}, datawidth in
 * {4,8,16,32}, BARs in {2,4} - 24 cores, each actually
 * synthesized to gates and analyzed. Deterministic for any
 * opts.threads.
 */
std::vector<DesignPoint> sweepDesignSpace(const SweepOptions &opts = {});

/**
 * Evaluate an arbitrary list of configurations in parallel,
 * returning one DesignPoint per config in input order.
 */
std::vector<DesignPoint>
sweepConfigs(const std::vector<CoreConfig> &configs,
             const SweepOptions &opts = {});

/**
 * Synthesize and characterize one configuration (through the
 * global SynthCache).
 */
DesignPoint evaluateDesignPoint(const CoreConfig &config);

/** One configuration's functional-yield Monte Carlo. */
struct YieldPoint
{
    CoreConfig config;
    FunctionalYieldReport report;
};

/**
 * The yield leg of the Figure 7 sweep: run the functional-yield
 * Monte Carlo on every configuration (cores served by the global
 * SynthCache). Configurations are evaluated sequentially — the
 * Monte Carlo parallelizes internally over mc.threads trial blocks
 * (nesting two thread pools would oversubscribe) — and every
 * trial's defects depend only on (mc.fault.seed, trial, replica),
 * so the result vector is bit-identical across runs, thread counts,
 * and engines (SimEngine::Batch vs Scalar).
 */
std::vector<YieldPoint>
sweepFunctionalYield(const std::vector<CoreConfig> &configs,
                     const FunctionalYieldConfig &mc);

/**
 * Spec of a fleet-scale legacy-ISS sweep: run every kernel of the
 * grid on every selected legacy core, M machines per point, on the
 * batch engine (legacy/batch_iss.hh). Machine m of a point gets
 * defaultInputs(kernel, width, seed + m).
 */
struct IssSweepSpec
{
    /** Cores to sweep; empty = all four Table 4 cores. */
    std::vector<legacy::LegacyCore> cores;

    /** Kernels to run; empty = {Mult, Div}. */
    std::vector<Kernel> kernels;

    unsigned width = 8;          ///< logical data width
    std::size_t machines = 64;   ///< machines per grid point
    std::uint64_t seed = 1;      ///< base input seed
    std::uint64_t maxSteps = 50'000'000;
    legacy::IssEngine engine = legacy::IssEngine::Batch;

    /** The (core, kernel) grid with defaults applied, in order. */
    std::vector<std::pair<legacy::LegacyCore, Kernel>> grid() const;
};

/**
 * One (core, kernel) grid point: aggregate retirement tallies and
 * an order-sensitive FNV-1a checksum of every machine's outputs and
 * status. The point is a pure function of the spec — engine choice
 * and thread count never change any field (the batch-vs-scalar
 * differential tests pin this).
 */
struct IssSweepPoint
{
    legacy::LegacyCore core = legacy::LegacyCore::Light8080;
    Kernel kernel = Kernel::Mult;
    unsigned width = 8;
    std::size_t machines = 0;
    std::size_t halted = 0;
    std::size_t outOfBudget = 0;
    std::size_t killed = 0;
    std::uint64_t instructions = 0; ///< total over all machines
    std::uint64_t cycles = 0;       ///< total over all machines
    std::size_t codeBytes = 0;
    std::uint64_t outputsFnv = 0;
};

/** Evaluate one grid point (machines run over opts.pool/threads). */
IssSweepPoint evaluateIssPoint(legacy::LegacyCore core, Kernel kernel,
                               const IssSweepSpec &spec,
                               const SweepOptions &opts = {});

/**
 * The full ISS sweep: one IssSweepPoint per grid entry, in grid
 * order. Points run sequentially; each point's machines are
 * distributed over the pool in deterministic 64-machine blocks.
 */
std::vector<IssSweepPoint>
sweepLegacyIss(const IssSweepSpec &spec,
               const SweepOptions &opts = {});

} // namespace printed

#endif // PRINTED_DSE_SWEEP_HH
