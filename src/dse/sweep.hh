/**
 * @file
 * Design-space exploration of TP-ISA cores (paper Section 5.2,
 * Figure 7): sweep pipeline depth x datawidth x BAR count,
 * synthesize every point, and characterize it in both printed
 * technologies.
 */

#ifndef PRINTED_DSE_SWEEP_HH
#define PRINTED_DSE_SWEEP_HH

#include <vector>

#include "analysis/characterize.hh"
#include "core/config.hh"

namespace printed
{

/** One synthesized + characterized design point. */
struct DesignPoint
{
    CoreConfig config;
    Characterization egfet;
    Characterization cnt;
};

/**
 * The Figure 7 sweep: stages in {1,2,3}, datawidth in
 * {4,8,16,32}, BARs in {2,4} - 24 cores, each actually
 * synthesized to gates and analyzed.
 */
std::vector<DesignPoint> sweepDesignSpace();

/** Synthesize and characterize one configuration. */
DesignPoint evaluateDesignPoint(const CoreConfig &config);

} // namespace printed

#endif // PRINTED_DSE_SWEEP_HH
