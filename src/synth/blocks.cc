#include "blocks.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace printed::synth
{

// ----------------------------------------------------------------
// Bus plumbing
// ----------------------------------------------------------------

Bus
busInputs(Netlist &nl, const std::string &name, unsigned width)
{
    Bus bus;
    bus.reserve(width);
    for (unsigned i = 0; i < width; ++i)
        bus.push_back(nl.addInput(name + "[" + std::to_string(i) + "]"));
    return bus;
}

void
busOutputs(Netlist &nl, const std::string &name, const Bus &bus)
{
    for (std::size_t i = 0; i < bus.size(); ++i)
        nl.addOutput(name + "[" + std::to_string(i) + "]", bus[i]);
}

Bus
busConst(Netlist &nl, unsigned width, std::uint64_t value)
{
    Bus bus;
    bus.reserve(width);
    for (unsigned i = 0; i < width; ++i)
        bus.push_back((value >> i) & 1 ? nl.constOne() : nl.constZero());
    return bus;
}

Bus
busSlice(const Bus &bus, unsigned first, unsigned count)
{
    panicIf(first + count > bus.size(), "busSlice: out of range");
    return Bus(bus.begin() + first, bus.begin() + first + count);
}

Bus
busConcat(const Bus &lo, const Bus &hi)
{
    Bus out = lo;
    out.insert(out.end(), hi.begin(), hi.end());
    return out;
}

Bus
busExtend(Netlist &nl, const Bus &bus, unsigned width)
{
    Bus out = bus;
    if (out.size() > width)
        out.resize(width);
    while (out.size() < width)
        out.push_back(nl.constZero());
    return out;
}

// ----------------------------------------------------------------
// Bitwise logic
// ----------------------------------------------------------------

NetId
inv(Netlist &nl, NetId a)
{
    return nl.addGate(CellKind::INVX1, a);
}

Bus
busNot(Netlist &nl, const Bus &a)
{
    Bus out;
    out.reserve(a.size());
    for (NetId n : a)
        out.push_back(inv(nl, n));
    return out;
}

namespace
{

Bus
busBinop(Netlist &nl, CellKind kind, const Bus &a, const Bus &b)
{
    panicIf(a.size() != b.size(), "bus binop: width mismatch");
    Bus out;
    out.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out.push_back(nl.addGate(kind, a[i], b[i]));
    return out;
}

NetId
reduceTree(Netlist &nl, CellKind kind, Bus level)
{
    while (level.size() > 1) {
        Bus next;
        next.reserve((level.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(nl.addGate(kind, level[i], level[i + 1]));
        if (level.size() & 1)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level[0];
}

} // anonymous namespace

Bus
busAnd(Netlist &nl, const Bus &a, const Bus &b)
{
    return busBinop(nl, CellKind::AND2X1, a, b);
}

Bus
busOr(Netlist &nl, const Bus &a, const Bus &b)
{
    return busBinop(nl, CellKind::OR2X1, a, b);
}

Bus
busXor(Netlist &nl, const Bus &a, const Bus &b)
{
    return busBinop(nl, CellKind::XOR2X1, a, b);
}

NetId
andReduce(Netlist &nl, const Bus &a)
{
    if (a.empty())
        return nl.constOne();
    return reduceTree(nl, CellKind::AND2X1, a);
}

NetId
orReduce(Netlist &nl, const Bus &a)
{
    if (a.empty())
        return nl.constZero();
    return reduceTree(nl, CellKind::OR2X1, a);
}

NetId
isZero(Netlist &nl, const Bus &a)
{
    if (a.empty())
        return nl.constOne();
    if (a.size() == 1)
        return inv(nl, a[0]);
    // NOR pairs then AND-reduce: 1 iff every bit is 0.
    Bus nors;
    for (std::size_t i = 0; i + 1 < a.size(); i += 2)
        nors.push_back(nl.addGate(CellKind::NOR2X1, a[i], a[i + 1]));
    if (a.size() & 1)
        nors.push_back(inv(nl, a.back()));
    return andReduce(nl, nors);
}

// ----------------------------------------------------------------
// Selection
// ----------------------------------------------------------------

NetId
mux2(Netlist &nl, NetId sel, NetId a, NetId b)
{
    // sel ? b : a built from NANDs: cheaper cells than AND/OR in the
    // printed library (Table 2: NAND2X1 is the cheapest 2-input cell).
    const NetId nsel = inv(nl, sel);
    const NetId t0 = nl.addGate(CellKind::NAND2X1, a, nsel);
    const NetId t1 = nl.addGate(CellKind::NAND2X1, b, sel);
    return nl.addGate(CellKind::NAND2X1, t0, t1);
}

Bus
busMux2(Netlist &nl, NetId sel, const Bus &a, const Bus &b)
{
    panicIf(a.size() != b.size(), "busMux2: width mismatch");
    const NetId nsel = inv(nl, sel);
    Bus out;
    out.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const NetId t0 = nl.addGate(CellKind::NAND2X1, a[i], nsel);
        const NetId t1 = nl.addGate(CellKind::NAND2X1, b[i], sel);
        out.push_back(nl.addGate(CellKind::NAND2X1, t0, t1));
    }
    return out;
}

Bus
busMuxOneHot(Netlist &nl, const std::vector<NetId> &sels,
             const std::vector<Bus> &choices)
{
    panicIf(sels.size() != choices.size() || sels.empty(),
            "busMuxOneHot: bad arguments");
    const std::size_t width = choices[0].size();
    for (const Bus &c : choices)
        panicIf(c.size() != width, "busMuxOneHot: width mismatch");

    Bus out;
    out.reserve(width);
    for (std::size_t bitpos = 0; bitpos < width; ++bitpos) {
        Bus terms;
        terms.reserve(sels.size());
        for (std::size_t i = 0; i < sels.size(); ++i)
            terms.push_back(nl.addGate(CellKind::AND2X1,
                                       choices[i][bitpos], sels[i]));
        out.push_back(orReduce(nl, terms));
    }
    return out;
}

Bus
busMuxTristate(Netlist &nl, const std::vector<NetId> &sels,
               const std::vector<Bus> &choices)
{
    panicIf(sels.size() != choices.size() || sels.empty(),
            "busMuxTristate: bad arguments");
    const std::size_t width = choices[0].size();
    for (const Bus &c : choices)
        panicIf(c.size() != width, "busMuxTristate: width mismatch");

    Bus out;
    out.reserve(width);
    for (std::size_t bitpos = 0; bitpos < width; ++bitpos) {
        const NetId bus = nl.addNet();
        for (std::size_t i = 0; i < sels.size(); ++i)
            nl.addTristate(choices[i][bitpos], sels[i], bus);
        out.push_back(bus);
    }
    return out;
}

std::vector<NetId>
binaryDecoder(Netlist &nl, const Bus &sel, std::size_t limit)
{
    const std::size_t total = std::size_t(1) << sel.size();
    const std::size_t count = limit == 0 ? total
                                         : std::min(limit, total);
    // Share per-bit inverters across the product terms.
    Bus nsel = busNot(nl, sel);
    std::vector<NetId> out;
    out.reserve(count);
    for (std::size_t v = 0; v < count; ++v) {
        Bus terms;
        terms.reserve(sel.size());
        for (std::size_t b = 0; b < sel.size(); ++b)
            terms.push_back((v >> b) & 1 ? sel[b] : nsel[b]);
        out.push_back(andReduce(nl, terms));
    }
    return out;
}

NetId
equalsConst(Netlist &nl, const Bus &a, std::uint64_t value)
{
    Bus terms;
    terms.reserve(a.size());
    for (std::size_t b = 0; b < a.size(); ++b)
        terms.push_back((value >> b) & 1 ? a[b] : inv(nl, a[b]));
    return andReduce(nl, terms);
}

// ----------------------------------------------------------------
// Arithmetic
// ----------------------------------------------------------------

namespace
{

/**
 * One full adder: 2 XOR + 3 NAND (5 cells). The NAND-NAND carry
 * (cout = NAND(NAND(a,b), NAND(a^b,cin))) is both smaller and
 * faster than AND/OR in the printed library (Table 2: NAND2X1 is
 * the cheapest 2-input cell), which matters because the ripple
 * carry chain dominates the ALU critical path.
 */
void
fullAdder(Netlist &nl, NetId a, NetId b, NetId cin, NetId &sum,
          NetId &cout)
{
    const NetId axb = nl.addGate(CellKind::XOR2X1, a, b);
    sum = nl.addGate(CellKind::XOR2X1, axb, cin);
    const NetId t0 = nl.addGate(CellKind::NAND2X1, a, b);
    const NetId t1 = nl.addGate(CellKind::NAND2X1, axb, cin);
    cout = nl.addGate(CellKind::NAND2X1, t0, t1);
}

} // anonymous namespace

AddResult
rippleAdder(Netlist &nl, const Bus &a, const Bus &b, NetId carry_in)
{
    panicIf(a.size() != b.size() || a.empty(),
            "rippleAdder: width mismatch");
    AddResult res;
    res.sum.resize(a.size());
    NetId carry = carry_in == invalidNet ? nl.constZero() : carry_in;
    NetId carry_into_msb = carry;
    for (std::size_t i = 0; i < a.size(); ++i) {
        carry_into_msb = carry;
        NetId sum, cout;
        fullAdder(nl, a[i], b[i], carry, sum, cout);
        res.sum[i] = sum;
        carry = cout;
    }
    res.carryOut = carry;
    // Signed overflow: carry into MSB xor carry out of MSB.
    res.overflow = nl.addGate(CellKind::XOR2X1, carry_into_msb, carry);
    return res;
}

AddResult
rippleAddSub(Netlist &nl, const Bus &a, const Bus &b, NetId subtract,
             NetId carry_in)
{
    // b XOR subtract complements b when subtracting; the carry-in is
    // supplied by the caller (for SUB it is !borrow = 1).
    Bus b_eff;
    b_eff.reserve(b.size());
    for (NetId n : b)
        b_eff.push_back(nl.addGate(CellKind::XOR2X1, n, subtract));
    return rippleAdder(nl, a, b_eff, carry_in);
}

Bus
incrementer(Netlist &nl, const Bus &a)
{
    // Half-adder chain: sum = a ^ c, c' = a & c, with c0 = 1.
    Bus out;
    out.reserve(a.size());
    NetId carry = nl.constOne();
    for (std::size_t i = 0; i < a.size(); ++i) {
        out.push_back(nl.addGate(CellKind::XOR2X1, a[i], carry));
        if (i + 1 < a.size())
            carry = nl.addGate(CellKind::AND2X1, a[i], carry);
    }
    return out;
}

// ----------------------------------------------------------------
// Rotates
// ----------------------------------------------------------------

RotateResult
rotateLeft1(const Bus &a)
{
    panicIf(a.empty(), "rotateLeft1: empty bus");
    RotateResult res;
    res.data.push_back(a.back());
    for (std::size_t i = 0; i + 1 < a.size(); ++i)
        res.data.push_back(a[i]);
    res.carryOut = a.back();
    return res;
}

RotateResult
rotateLeft1Carry(const Bus &a, NetId carry_in)
{
    panicIf(a.empty(), "rotateLeft1Carry: empty bus");
    RotateResult res;
    res.data.push_back(carry_in);
    for (std::size_t i = 0; i + 1 < a.size(); ++i)
        res.data.push_back(a[i]);
    res.carryOut = a.back();
    return res;
}

RotateResult
rotateRight1(const Bus &a)
{
    panicIf(a.empty(), "rotateRight1: empty bus");
    RotateResult res;
    for (std::size_t i = 1; i < a.size(); ++i)
        res.data.push_back(a[i]);
    res.data.push_back(a.front());
    res.carryOut = a.front();
    return res;
}

RotateResult
rotateRight1Carry(const Bus &a, NetId carry_in)
{
    panicIf(a.empty(), "rotateRight1Carry: empty bus");
    RotateResult res;
    for (std::size_t i = 1; i < a.size(); ++i)
        res.data.push_back(a[i]);
    res.data.push_back(carry_in);
    res.carryOut = a.front();
    return res;
}

RotateResult
shiftRightArith1(const Bus &a)
{
    panicIf(a.empty(), "shiftRightArith1: empty bus");
    RotateResult res;
    for (std::size_t i = 1; i < a.size(); ++i)
        res.data.push_back(a[i]);
    res.data.push_back(a.back()); // duplicate sign bit
    res.carryOut = a.front();
    return res;
}

// ----------------------------------------------------------------
// Registers
// ----------------------------------------------------------------

Bus
registerBank(Netlist &nl, const Bus &d)
{
    Bus q;
    q.reserve(d.size());
    for (NetId n : d)
        q.push_back(nl.addFlop(n));
    return q;
}

Bus
registerBankReset(Netlist &nl, const Bus &d, NetId rn)
{
    Bus q;
    q.reserve(d.size());
    for (NetId n : d)
        q.push_back(nl.addFlopReset(n, rn));
    return q;
}

Bus
registerEnable(Netlist &nl, const Bus &d, NetId en, NetId rn)
{
    // q feeds back through the hold mux, so q must exist before its
    // own D; use feedback placeholders.
    Bus q_fb;
    q_fb.reserve(d.size());
    for (std::size_t i = 0; i < d.size(); ++i)
        q_fb.push_back(nl.makeFeedback());

    const Bus next = busMux2(nl, en, q_fb, d);
    const Bus q = rn == invalidNet ? registerBank(nl, next)
                                   : registerBankReset(nl, next, rn);
    for (std::size_t i = 0; i < d.size(); ++i)
        nl.resolveFeedback(q_fb[i], q[i]);
    return q;
}

} // namespace printed::synth
