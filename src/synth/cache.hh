/**
 * @file
 * Thread-safe memoizing cache in front of buildCore + characterize.
 *
 * The bench binaries and the test suite synthesize the same handful
 * of CoreConfigs over and over (the 24 Figure 7 points, the p1_8_2
 * workhorse, the Table 8 cores); a full build-and-characterize pass
 * is by far the hottest path in the flow. This cache memoizes both
 * stages:
 *
 *   netlist          = f(canonical CoreConfig key)
 *   characterization = f(canonical CoreConfig key, tech, activity)
 *
 * Keying rules (documented in DESIGN.md):
 *   - The netlist key is the exhaustive tuple of every CoreConfig
 *     field that buildCore() reads: stages, the full IsaConfig
 *     (datawidth, barCount, pcBits, operandBits, flagCount),
 *     flagMask, barBits, opcodeMask, tristateResultMux, addrBits.
 *     Two configs with equal keys elaborate identical netlists, so
 *     sharing is sound; coreConfigHash() is a mixed hash of the
 *     same tuple used for bucketing, with full-key equality on
 *     lookup (a hash collision can never alias two configs).
 *   - The characterization key extends the netlist key with the
 *     technology kind and the exact activity-factor bits.
 *
 * Concurrency: lookups are guarded by a mutex; a miss installs a
 * shared_future before building so concurrent requests for the same
 * key synthesize once and share the result. Values are immutable
 * (shared_ptr<const T>), so sweep workers can hold them without
 * copying. If the build throws, the exception is stored in the
 * promise *before* the map entry is dropped, so every concurrent
 * waiter sees the original FatalError (never a broken_promise) and
 * a later call re-attempts the build.
 *
 * Bounding: setCapacity(n) caps each map (netlists and
 * characterizations separately) at n entries with least-recently-
 * used eviction — off by default (0 = unbounded, the bench/test
 * behavior), switched on by the long-running printedd server so
 * resident memory stays bounded under an unbounded request stream.
 * Only *settled* entries are evicted: an in-flight build is never
 * dropped out from under its waiters, which preserves the
 * set-exception-before-erase failure semantics. Eviction removes
 * the map entry only; callers holding the shared_ptr keep a valid
 * object, and a later lookup of the same key rebuilds (a miss).
 *
 * Statistics: hit/miss counts are lock-free metrics::Counter
 * instruments. The process-wide global() instance publishes them
 * in the metrics registry under "synth.cache.*" (they appear in
 * every bench's --json metrics block); locally constructed caches
 * keep private counters so tests can assert exact counts.
 */

#ifndef PRINTED_SYNTH_CACHE_HH
#define PRINTED_SYNTH_CACHE_HH

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>

#include "analysis/characterize.hh"
#include "common/metrics.hh"
#include "core/config.hh"
#include "netlist/netlist.hh"
#include "tech/library.hh"

namespace printed
{

class DiskCache;

/**
 * Canonical identity of a CoreConfig for caching: every field
 * buildCore() consumes, nothing else (the label is derived, not
 * identity).
 */
struct CoreConfigKey
{
    unsigned stages = 0;
    unsigned datawidth = 0;
    unsigned barCount = 0;
    unsigned pcBits = 0;
    unsigned operandBits = 0;
    unsigned isaFlagCount = 0;
    unsigned flagMask = 0;
    unsigned barBits = 0;
    unsigned opcodeMask = 0;
    unsigned addrBits = 0;
    bool tristateResultMux = false;

    auto operator<=>(const CoreConfigKey &) const = default;
};

/** Canonical cache key of a config. */
CoreConfigKey coreConfigKey(const CoreConfig &config);

/** Mixed 64-bit hash of the canonical key (for bucketing/reports). */
std::uint64_t coreConfigHash(const CoreConfig &config);

/** Cache hit/miss counters (monotonic since construction/clear). */
struct SynthCacheStats
{
    std::uint64_t netlistHits = 0;
    std::uint64_t netlistMisses = 0;
    std::uint64_t charHits = 0;
    std::uint64_t charMisses = 0;
    std::uint64_t netlistEvictions = 0;
    std::uint64_t charEvictions = 0;
    /** Entries currently resident (not monotonic). */
    std::size_t netlistEntries = 0;
    std::size_t charEntries = 0;
};

/** Memoizing synthesis + characterization cache. */
class SynthCache
{
  public:
    /**
     * @param publishMetrics back the hit/miss counters by the
     *        process-wide metrics registry ("synth.cache.*") —
     *        used by global(); local instances keep private
     *        counters.
     */
    explicit SynthCache(bool publishMetrics = false);

    /**
     * The netlist of buildCore(config), synthesized at most once
     * per canonical key. Concurrent callers block until the one
     * builder finishes.
     */
    std::shared_ptr<const Netlist> core(const CoreConfig &config);

    /**
     * The characterization of buildCore(config) in one technology
     * (going through core(), so the netlist is shared too).
     */
    std::shared_ptr<const Characterization>
    characterization(const CoreConfig &config, TechKind tech,
                     double activity = paperActivityFactor);

    /** Snapshot of the hit/miss counters. */
    SynthCacheStats stats() const;

    /** Drop all entries and reset the counters. */
    void clear();

    /**
     * Cap each map (netlists, characterizations) at `maxEntries`
     * with LRU eviction of settled entries; 0 restores the default
     * unbounded behavior. Lowering the cap evicts immediately.
     */
    void setCapacity(std::size_t maxEntries);

    /** Current per-map entry cap (0 = unbounded). */
    std::size_t capacity() const;

    /**
     * Attach (or with nullptr, detach) a persistent disk tier
     * (synth/disk_cache.hh). With a tier attached the cache is
     * read-through/write-through: a memory miss consults the disk
     * before synthesizing, and freshly built results are persisted
     * crash-safely, so a restarted process starts warm. Failure
     * isolation: disk errors and corrupt entries degrade to plain
     * misses and never fail a lookup.
     */
    void setDiskTier(std::shared_ptr<DiskCache> disk);

    /** The attached disk tier, or nullptr. */
    std::shared_ptr<DiskCache> diskTier() const;

    /** The process-wide cache used by sweeps and benches. */
    static SynthCache &global();

  private:
    struct CharKey
    {
        CoreConfigKey config;
        TechKind tech = TechKind::EGFET;
        std::uint64_t activityBits = 0;

        auto operator<=>(const CharKey &) const = default;
    };

    /**
     * One cached build: the shared future plus the LRU bookkeeping.
     * `id` identifies this *installation* of the key, so a failed
     * builder erases only its own entry (the entry could have been
     * evicted and re-installed by another miss in the meantime).
     */
    template <typename T>
    struct Entry
    {
        std::shared_future<std::shared_ptr<const T>> future;
        std::uint64_t lastUse = 0;
        std::uint64_t id = 0;
    };

    /** Evict settled LRU entries until `map` fits the cap. */
    template <typename Map>
    void enforceCap(Map &map, metrics::Counter &evictions);

    mutable std::mutex mutex_;
    std::shared_ptr<DiskCache> disk_; ///< persistent tier (optional)
    std::map<CoreConfigKey, Entry<Netlist>> cores_;
    std::map<CharKey, Entry<Characterization>> chars_;
    std::size_t capacity_ = 0; ///< per-map entry cap; 0 = unbounded
    std::uint64_t tick_ = 0;   ///< LRU clock (bumped per access)
    std::uint64_t nextId_ = 0; ///< entry installation ids

    /** Private counter storage for non-published instances. */
    metrics::Counter ownCounters_[6];
    /** Hit/miss counters (own or registry-backed, see ctor). */
    metrics::Counter *netlistHits_;
    metrics::Counter *netlistMisses_;
    metrics::Counter *charHits_;
    metrics::Counter *charMisses_;
    metrics::Counter *netlistEvictions_;
    metrics::Counter *charEvictions_;
};

} // namespace printed

#endif // PRINTED_SYNTH_CACHE_HH
