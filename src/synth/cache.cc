#include "cache.hh"

#include <bit>
#include <chrono>

#include "common/rng.hh"
#include "common/trace.hh"
#include "core/generator.hh"
#include "synth/disk_cache.hh"

namespace printed
{

namespace
{

/** Milliseconds between a steady_clock point and now. */
double
elapsedMs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Has this shared_future been satisfied (value or exception)? */
template <typename Future>
bool
settled(const Future &f)
{
    return f.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
}

} // anonymous namespace

SynthCache::SynthCache(bool publishMetrics)
{
    if (publishMetrics) {
        netlistHits_ = &metrics::counter("synth.cache.netlist_hits");
        netlistMisses_ =
            &metrics::counter("synth.cache.netlist_misses");
        charHits_ = &metrics::counter("synth.cache.char_hits");
        charMisses_ = &metrics::counter("synth.cache.char_misses");
        netlistEvictions_ =
            &metrics::counter("synth.cache.netlist_evictions");
        charEvictions_ =
            &metrics::counter("synth.cache.char_evictions");
    } else {
        netlistHits_ = &ownCounters_[0];
        netlistMisses_ = &ownCounters_[1];
        charHits_ = &ownCounters_[2];
        charMisses_ = &ownCounters_[3];
        netlistEvictions_ = &ownCounters_[4];
        charEvictions_ = &ownCounters_[5];
    }
}

CoreConfigKey
coreConfigKey(const CoreConfig &config)
{
    CoreConfigKey key;
    key.stages = config.stages;
    key.datawidth = config.isa.datawidth;
    key.barCount = config.isa.barCount;
    key.pcBits = config.isa.pcBits;
    key.operandBits = config.isa.operandBits;
    key.isaFlagCount = config.isa.flagCount;
    key.flagMask = config.flagMask;
    key.barBits = config.barBits;
    key.opcodeMask = config.opcodeMask;
    key.addrBits = config.addrBits;
    key.tristateResultMux = config.tristateResultMux;
    return key;
}

std::uint64_t
coreConfigHash(const CoreConfig &config)
{
    const CoreConfigKey k = coreConfigKey(config);
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    for (std::uint64_t field :
         {std::uint64_t(k.stages), std::uint64_t(k.datawidth),
          std::uint64_t(k.barCount), std::uint64_t(k.pcBits),
          std::uint64_t(k.operandBits), std::uint64_t(k.isaFlagCount),
          std::uint64_t(k.flagMask), std::uint64_t(k.barBits),
          std::uint64_t(k.opcodeMask), std::uint64_t(k.addrBits),
          std::uint64_t(k.tristateResultMux)})
        h = mixSeed(h, field);
    return h;
}

template <typename Map>
void
SynthCache::enforceCap(Map &map, metrics::Counter &evictions)
{
    // Caller holds mutex_. Only settled entries are candidates:
    // in-flight builds have live waiters and a builder that still
    // needs to find (or id-miss) its own entry.
    while (capacity_ != 0 && map.size() > capacity_) {
        auto victim = map.end();
        for (auto it = map.begin(); it != map.end(); ++it) {
            if (!settled(it->second.future))
                continue;
            if (victim == map.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == map.end())
            return; // everything in flight; cap exceeded briefly
        map.erase(victim);
        evictions.add();
    }
}

std::shared_ptr<const Netlist>
SynthCache::core(const CoreConfig &config)
{
    const CoreConfigKey key = coreConfigKey(config);
    std::promise<std::shared_ptr<const Netlist>> promise;
    std::shared_future<std::shared_ptr<const Netlist>> future;
    bool builder = false;
    std::uint64_t entryId = 0;
    std::shared_ptr<DiskCache> disk;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        disk = disk_;
        auto it = cores_.find(key);
        if (it == cores_.end()) {
            builder = true;
            future = promise.get_future().share();
            entryId = ++nextId_;
            cores_.emplace(key,
                           Entry<Netlist>{future, ++tick_, entryId});
            netlistMisses_->add();
            enforceCap(cores_, *netlistEvictions_);
        } else {
            it->second.lastUse = ++tick_;
            future = it->second.future;
            netlistHits_->add();
        }
    }
    if (builder) {
        trace::Span span("cache.build_core", config.label());
        try {
            // Read-through: a valid disk entry replaces synthesis;
            // anything wrong with it (corrupt, stale version, hash
            // collision) already degraded to nullptr inside the
            // DiskCache, so the rebuild below re-persists it.
            std::shared_ptr<const Netlist> built;
            if (disk)
                built = disk->loadNetlist(key);
            const bool fromDisk = built != nullptr;
            if (!built)
                built = std::make_shared<const Netlist>(
                    buildCore(config));
            promise.set_value(built);
            if (disk && !fromDisk)
                disk->storeNetlist(key, *built);
            // The entry was exempt from eviction while in flight;
            // now that it settled, stamp it fresh and re-enforce
            // the cap (inserts that raced with the build skipped
            // it as unevictable).
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = cores_.find(key);
            if (it != cores_.end() && it->second.id == entryId)
                it->second.lastUse = ++tick_;
            enforceCap(cores_, *netlistEvictions_);
        } catch (...) {
            // Don't cache failures — but satisfy the promise with
            // the exception *before* dropping the entry: concurrent
            // waiters hold the shared_future, and erasing first
            // risks destroying an unsatisfied promise path where
            // they would see std::future_error (broken_promise)
            // instead of the original FatalError. A later call
            // re-attempts (and re-reports) the build. The id check
            // keeps a concurrent evict-then-reinstall of the same
            // key from losing an innocent entry.
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = cores_.find(key);
            if (it != cores_.end() && it->second.id == entryId)
                cores_.erase(it);
        }
        return future.get();
    }
    // Hit path: record how long this caller stalled on a build in
    // flight (near zero for a settled future).
    const auto waitStart = std::chrono::steady_clock::now();
    const std::shared_ptr<const Netlist> result = future.get();
    static metrics::Distribution &wait =
        metrics::distribution("synth.cache.build_wait_ms");
    wait.record(elapsedMs(waitStart));
    return result;
}

std::shared_ptr<const Characterization>
SynthCache::characterization(const CoreConfig &config, TechKind tech,
                             double activity)
{
    CharKey key;
    key.config = coreConfigKey(config);
    key.tech = tech;
    key.activityBits = std::bit_cast<std::uint64_t>(activity);

    std::promise<std::shared_ptr<const Characterization>> promise;
    std::shared_future<std::shared_ptr<const Characterization>> future;
    bool builder = false;
    std::uint64_t entryId = 0;
    std::shared_ptr<DiskCache> disk;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        disk = disk_;
        auto it = chars_.find(key);
        if (it == chars_.end()) {
            builder = true;
            future = promise.get_future().share();
            entryId = ++nextId_;
            chars_.emplace(key, Entry<Characterization>{
                                    future, ++tick_, entryId});
            charMisses_->add();
            enforceCap(chars_, *charEvictions_);
        } else {
            it->second.lastUse = ++tick_;
            future = it->second.future;
            charHits_->add();
        }
    }
    if (builder) {
        trace::Span span("cache.characterize", config.label());
        try {
            // Read-through, as in core(). A disk hit here skips
            // both the characterization *and* the netlist
            // elaboration it would have needed.
            std::shared_ptr<const Characterization> built;
            if (disk)
                built = disk->loadCharacterization(key.config, tech,
                                                   activity);
            const bool fromDisk = built != nullptr;
            if (!built) {
                const std::shared_ptr<const Netlist> nl =
                    core(config);
                built = std::make_shared<const Characterization>(
                    characterize(*nl, libraryFor(tech), activity));
            }
            promise.set_value(built);
            if (disk && !fromDisk)
                disk->storeCharacterization(key.config, tech,
                                            activity, *built);
            // Same post-settle refresh + cap re-enforcement as
            // core().
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = chars_.find(key);
            if (it != chars_.end() && it->second.id == entryId)
                it->second.lastUse = ++tick_;
            enforceCap(chars_, *charEvictions_);
        } catch (...) {
            // Same ordering rule as core(): satisfy the promise
            // first so waiters get the real error, then un-cache
            // (own entry only, see core()).
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = chars_.find(key);
            if (it != chars_.end() && it->second.id == entryId)
                chars_.erase(it);
        }
    }
    return future.get();
}

SynthCacheStats
SynthCache::stats() const
{
    SynthCacheStats s;
    s.netlistHits = netlistHits_->value();
    s.netlistMisses = netlistMisses_->value();
    s.charHits = charHits_->value();
    s.charMisses = charMisses_->value();
    s.netlistEvictions = netlistEvictions_->value();
    s.charEvictions = charEvictions_->value();
    std::lock_guard<std::mutex> lock(mutex_);
    s.netlistEntries = cores_.size();
    s.charEntries = chars_.size();
    return s;
}

void
SynthCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cores_.clear();
    chars_.clear();
    netlistHits_->reset();
    netlistMisses_->reset();
    charHits_->reset();
    charMisses_->reset();
    netlistEvictions_->reset();
    charEvictions_->reset();
}

void
SynthCache::setCapacity(std::size_t maxEntries)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = maxEntries;
    enforceCap(cores_, *netlistEvictions_);
    enforceCap(chars_, *charEvictions_);
}

std::size_t
SynthCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

void
SynthCache::setDiskTier(std::shared_ptr<DiskCache> disk)
{
    std::lock_guard<std::mutex> lock(mutex_);
    disk_ = std::move(disk);
}

std::shared_ptr<DiskCache>
SynthCache::diskTier() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return disk_;
}

SynthCache &
SynthCache::global()
{
    static SynthCache cache(/*publishMetrics=*/true);
    return cache;
}

} // namespace printed
