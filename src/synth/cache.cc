#include "cache.hh"

#include <bit>

#include "common/rng.hh"
#include "core/generator.hh"

namespace printed
{

CoreConfigKey
coreConfigKey(const CoreConfig &config)
{
    CoreConfigKey key;
    key.stages = config.stages;
    key.datawidth = config.isa.datawidth;
    key.barCount = config.isa.barCount;
    key.pcBits = config.isa.pcBits;
    key.operandBits = config.isa.operandBits;
    key.isaFlagCount = config.isa.flagCount;
    key.flagMask = config.flagMask;
    key.barBits = config.barBits;
    key.opcodeMask = config.opcodeMask;
    key.addrBits = config.addrBits;
    key.tristateResultMux = config.tristateResultMux;
    return key;
}

std::uint64_t
coreConfigHash(const CoreConfig &config)
{
    const CoreConfigKey k = coreConfigKey(config);
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    for (std::uint64_t field :
         {std::uint64_t(k.stages), std::uint64_t(k.datawidth),
          std::uint64_t(k.barCount), std::uint64_t(k.pcBits),
          std::uint64_t(k.operandBits), std::uint64_t(k.isaFlagCount),
          std::uint64_t(k.flagMask), std::uint64_t(k.barBits),
          std::uint64_t(k.opcodeMask), std::uint64_t(k.addrBits),
          std::uint64_t(k.tristateResultMux)})
        h = mixSeed(h, field);
    return h;
}

std::shared_ptr<const Netlist>
SynthCache::core(const CoreConfig &config)
{
    const CoreConfigKey key = coreConfigKey(config);
    std::promise<std::shared_ptr<const Netlist>> promise;
    std::shared_future<std::shared_ptr<const Netlist>> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cores_.find(key);
        if (it == cores_.end()) {
            builder = true;
            future = promise.get_future().share();
            cores_.emplace(key, future);
            ++stats_.netlistMisses;
        } else {
            future = it->second;
            ++stats_.netlistHits;
        }
    }
    if (builder) {
        try {
            promise.set_value(
                std::make_shared<const Netlist>(buildCore(config)));
        } catch (...) {
            // Don't cache failures: drop the entry so a later call
            // re-attempts (and re-reports) the error.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                cores_.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

std::shared_ptr<const Characterization>
SynthCache::characterization(const CoreConfig &config, TechKind tech,
                             double activity)
{
    CharKey key;
    key.config = coreConfigKey(config);
    key.tech = tech;
    key.activityBits = std::bit_cast<std::uint64_t>(activity);

    std::promise<std::shared_ptr<const Characterization>> promise;
    std::shared_future<std::shared_ptr<const Characterization>> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = chars_.find(key);
        if (it == chars_.end()) {
            builder = true;
            future = promise.get_future().share();
            chars_.emplace(key, future);
            ++stats_.charMisses;
        } else {
            future = it->second;
            ++stats_.charHits;
        }
    }
    if (builder) {
        try {
            const std::shared_ptr<const Netlist> nl = core(config);
            promise.set_value(std::make_shared<const Characterization>(
                characterize(*nl, libraryFor(tech), activity)));
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                chars_.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

SynthCacheStats
SynthCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
SynthCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cores_.clear();
    chars_.clear();
    stats_ = SynthCacheStats{};
}

SynthCache &
SynthCache::global()
{
    static SynthCache cache;
    return cache;
}

} // namespace printed
