#include "opt.hh"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"

namespace printed::synth
{

namespace
{

/** Three-value constant lattice per net. */
enum class Lat : std::uint8_t { Unknown, Zero, One };

Lat
latOfSource(NetSource source)
{
    switch (source) {
      case NetSource::Const0:
        return Lat::Zero;
      case NetSource::Const1:
        return Lat::One;
      default:
        return Lat::Unknown;
    }
}

/**
 * One constant-folding + identity-simplification sweep.
 * Returns number of gates simplified.
 */
std::size_t
foldConstants(Netlist &nl)
{
    // Materialize the constant nets up front so rewiring to them
    // never grows the net array mid-pass.
    nl.constZero();
    nl.constOne();

    std::vector<Lat> lat(nl.netCount(), Lat::Unknown);
    for (NetId n = 0; n < nl.netCount(); ++n)
        lat[n] = latOfSource(nl.netSource(n));

    std::size_t folded = 0;
    const auto order = nl.levelize();
    for (GateId gi : order) {
        const Gate g = nl.gate(gi);
        if (g.kind == CellKind::TSBUFX1)
            continue; // bus drivers are left alone

        const Lat a = lat[g.in0];
        const Lat b = g.in1 != invalidNet ? lat[g.in1] : Lat::Unknown;

        auto replace_with_const = [&](bool one) {
            nl.rewireUses(g.out, one ? nl.constOne() : nl.constZero());
            lat[g.out] = one ? Lat::One : Lat::Zero;
            ++folded;
        };
        auto replace_with_net = [&](NetId n) {
            nl.rewireUses(g.out, n);
            lat[g.out] = lat[n];
            ++folded;
        };
        auto become_inv_of = [&](NetId n) {
            nl.setGate(gi, CellKind::INVX1, n);
            lat[g.out] = lat[n] == Lat::Zero  ? Lat::One
                       : lat[n] == Lat::One   ? Lat::Zero
                                              : Lat::Unknown;
            ++folded;
        };

        const bool same_inputs = g.in1 != invalidNet && g.in0 == g.in1;

        switch (g.kind) {
          case CellKind::INVX1:
            if (a == Lat::Zero)
                replace_with_const(true);
            else if (a == Lat::One)
                replace_with_const(false);
            break;

          case CellKind::AND2X1:
            if (a == Lat::Zero || b == Lat::Zero)
                replace_with_const(false);
            else if (a == Lat::One)
                replace_with_net(g.in1);
            else if (b == Lat::One || same_inputs)
                replace_with_net(g.in0);
            break;

          case CellKind::OR2X1:
            if (a == Lat::One || b == Lat::One)
                replace_with_const(true);
            else if (a == Lat::Zero)
                replace_with_net(g.in1);
            else if (b == Lat::Zero || same_inputs)
                replace_with_net(g.in0);
            break;

          case CellKind::NAND2X1:
            if (a == Lat::Zero || b == Lat::Zero)
                replace_with_const(true);
            else if (a == Lat::One)
                become_inv_of(g.in1);
            else if (b == Lat::One || same_inputs)
                become_inv_of(g.in0);
            break;

          case CellKind::NOR2X1:
            if (a == Lat::One || b == Lat::One)
                replace_with_const(false);
            else if (a == Lat::Zero)
                become_inv_of(g.in1);
            else if (b == Lat::Zero || same_inputs)
                become_inv_of(g.in0);
            break;

          case CellKind::XOR2X1:
            if (same_inputs)
                replace_with_const(false);
            else if (a == Lat::Zero)
                replace_with_net(g.in1);
            else if (b == Lat::Zero)
                replace_with_net(g.in0);
            else if (a == Lat::One)
                become_inv_of(g.in1);
            else if (b == Lat::One)
                become_inv_of(g.in0);
            else if (a != Lat::Unknown && b != Lat::Unknown)
                replace_with_const(a != b);
            break;

          case CellKind::XNOR2X1:
            if (same_inputs)
                replace_with_const(true);
            else if (a == Lat::One)
                replace_with_net(g.in1);
            else if (b == Lat::One)
                replace_with_net(g.in0);
            else if (a == Lat::Zero)
                become_inv_of(g.in1);
            else if (b == Lat::Zero)
                become_inv_of(g.in0);
            break;

          default:
            break;
        }
    }
    return folded;
}

/** Collapse INV(INV(x)) -> x. Returns number of pairs removed. */
std::size_t
collapseInvPairs(Netlist &nl)
{
    std::size_t pairs = 0;
    for (GateId gi = 0; gi < nl.gateCount(); ++gi) {
        if (nl.gateKind(gi) != CellKind::INVX1)
            continue;
        const NetId in = nl.gateIn0(gi);
        if (nl.netSource(in) != NetSource::GateOutput)
            continue;
        const GateId drv = nl.netSoleDriver(in);
        if (drv == invalidGate ||
            nl.gateKind(drv) != CellKind::INVX1)
            continue;
        nl.rewireUses(nl.gateOut(gi), nl.gateIn0(drv));
        ++pairs;
    }
    return pairs;
}

/**
 * Structural CSE: combinational gates with identical kind and inputs
 * (inputs normalized for commutative cells) share one instance.
 */
std::size_t
shareDuplicates(Netlist &nl)
{
    std::unordered_map<std::uint64_t, GateId> seen;
    std::size_t shared = 0;
    const auto order = nl.levelize();
    for (GateId gi : order) {
        const Gate &g = nl.gate(gi);
        if (g.kind == CellKind::TSBUFX1)
            continue;
        NetId lo = g.in0, hi = g.in1;
        // All 2-input combinational library cells are commutative.
        if (hi != invalidNet && hi < lo)
            std::swap(lo, hi);
        const std::uint64_t key =
            (std::uint64_t(static_cast<unsigned>(g.kind)) << 58) ^
            (std::uint64_t(lo) << 29) ^ std::uint64_t(hi + 1);
        auto [it, inserted] = seen.emplace(key, gi);
        if (inserted)
            continue;
        const Gate &prev = nl.gate(it->second);
        NetId plo = prev.in0, phi = prev.in1;
        if (phi != invalidNet && phi < plo)
            std::swap(plo, phi);
        if (prev.kind == g.kind && plo == lo && phi == hi &&
            prev.out != g.out) {
            nl.rewireUses(g.out, prev.out);
            ++shared;
        }
    }
    return shared;
}

/**
 * Remove gates not reachable (backwards) from any primary output.
 * Returns the number of gates removed.
 */
std::size_t
sweepDead(Netlist &nl)
{
    // Live nets: transitive fan-in of the primary outputs.
    std::vector<bool> net_live(nl.netCount(), false);
    std::vector<NetId> work;
    for (const auto &p : nl.outputs()) {
        if (!net_live[p.net]) {
            net_live[p.net] = true;
            work.push_back(p.net);
        }
    }
    while (!work.empty()) {
        const NetId n = work.back();
        work.pop_back();
        nl.forEachDriver(n, [&](GateId gi) {
            for (NetId in : {nl.gateIn0(gi), nl.gateIn1(gi)}) {
                if (in != invalidNet && !net_live[in]) {
                    net_live[in] = true;
                    work.push_back(in);
                }
            }
        });
    }

    std::vector<bool> dead(nl.gateCount(), false);
    std::size_t removed = 0;
    for (GateId gi = 0; gi < nl.gateCount(); ++gi) {
        if (!net_live[nl.gateOut(gi)]) {
            dead[gi] = true;
            ++removed;
        }
    }
    if (removed)
        nl.removeGates(dead);
    return removed;
}

} // anonymous namespace

OptStats
optimize(Netlist &nl)
{
    trace::Span span("synth.optimize", nl.name());
    OptStats stats;
    stats.gatesBefore = nl.gateCount();

    bool progress = true;
    while (progress && stats.iterations < 32) {
        ++stats.iterations;
        std::size_t folded, pairs, shared, dead;
        {
            trace::Span s("opt.fold_constants");
            folded = foldConstants(nl);
        }
        {
            trace::Span s("opt.collapse_inv_pairs");
            pairs = collapseInvPairs(nl);
        }
        {
            trace::Span s("opt.share_duplicates");
            shared = shareDuplicates(nl);
        }
        {
            trace::Span s("opt.sweep_dead");
            dead = sweepDead(nl);
        }
        stats.constFolded += folded;
        stats.invPairs += pairs;
        stats.shared += shared;
        stats.deadRemoved += dead;
        progress = folded + pairs + shared + dead > 0;
    }

    {
        // Renumber nets densely: orphaned nets accumulated by the
        // rewiring passes above would otherwise bloat every per-net
        // array the consumers allocate (simulator values, timing
        // arrivals). Port bindings and constant handles survive the
        // remap by construction.
        trace::Span s("opt.compact");
        const std::size_t nets_before = nl.netCount();
        nl.compact();
        stats.netsRemoved = nets_before - nl.netCount();
    }

    nl.validate();
    stats.gatesAfter = nl.gateCount();

    static metrics::Counter &runs = metrics::counter("synth.opt.runs");
    static metrics::Counter &folded =
        metrics::counter("synth.opt.const_folded");
    static metrics::Counter &pairs =
        metrics::counter("synth.opt.inv_pairs");
    static metrics::Counter &shared =
        metrics::counter("synth.opt.shared");
    static metrics::Counter &dead =
        metrics::counter("synth.opt.dead_removed");
    static metrics::Counter &removed =
        metrics::counter("synth.opt.gates_removed");
    static metrics::Counter &nets =
        metrics::counter("synth.opt.nets_removed");
    runs.add(1);
    folded.add(stats.constFolded);
    pairs.add(stats.invPairs);
    shared.add(stats.shared);
    dead.add(stats.deadRemoved);
    nets.add(stats.netsRemoved);
    removed.add(stats.gatesAfter <= stats.gatesBefore
                    ? stats.gatesBefore - stats.gatesAfter
                    : 0);
    return stats;
}

} // namespace printed::synth
