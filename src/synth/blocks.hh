/**
 * @file
 * Structural synthesis generators.
 *
 * These functions play the role of Synopsys Design Compiler in the
 * paper's flow: they elaborate datapath and control blocks directly
 * into gate-level netlists over the eleven-cell printed standard-cell
 * library. All buses are LSB-first.
 *
 * The generators deliberately use the cheap topologies appropriate
 * for printed technologies: ripple-carry arithmetic (no carry
 * lookahead: printed cells are area-dominated), AND-OR one-hot
 * muxes, and single-bit rotators (the paper rejects barrel shifters
 * as too large - 152 cells for 8 bits).
 */

#ifndef PRINTED_SYNTH_BLOCKS_HH
#define PRINTED_SYNTH_BLOCKS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hh"

namespace printed::synth
{

// ----------------------------------------------------------------
// Bus plumbing
// ----------------------------------------------------------------

/** Create `width` primary inputs named name[0..width). */
Bus busInputs(Netlist &nl, const std::string &name, unsigned width);

/** Expose a bus as primary outputs named name[0..width). */
void busOutputs(Netlist &nl, const std::string &name, const Bus &bus);

/** A bus of constant nets carrying `value` (LSB first). */
Bus busConst(Netlist &nl, unsigned width, std::uint64_t value);

/** Slice bits [first, first+count) of a bus. */
Bus busSlice(const Bus &bus, unsigned first, unsigned count);

/** Concatenate: lo bits first, then hi bits. */
Bus busConcat(const Bus &lo, const Bus &hi);

/** Zero-extend (or truncate) a bus to `width` bits. */
Bus busExtend(Netlist &nl, const Bus &bus, unsigned width);

// ----------------------------------------------------------------
// Bitwise logic
// ----------------------------------------------------------------

NetId inv(Netlist &nl, NetId a);
Bus busNot(Netlist &nl, const Bus &a);
Bus busAnd(Netlist &nl, const Bus &a, const Bus &b);
Bus busOr(Netlist &nl, const Bus &a, const Bus &b);
Bus busXor(Netlist &nl, const Bus &a, const Bus &b);

/** AND of all bus bits (balanced tree). Empty bus -> constant 1. */
NetId andReduce(Netlist &nl, const Bus &a);

/** OR of all bus bits (balanced tree). Empty bus -> constant 0. */
NetId orReduce(Netlist &nl, const Bus &a);

/** NOR of all bus bits: 1 iff the bus is all zero. */
NetId isZero(Netlist &nl, const Bus &a);

// ----------------------------------------------------------------
// Selection
// ----------------------------------------------------------------

/** 2:1 mux, one bit: sel ? b : a. */
NetId mux2(Netlist &nl, NetId sel, NetId a, NetId b);

/** 2:1 mux, bus: sel ? b : a. */
Bus busMux2(Netlist &nl, NetId sel, const Bus &a, const Bus &b);

/**
 * One-hot AND-OR mux: output = OR_i (choices[i] AND sels[i]).
 * Exactly one select is expected to be high (zero output if none).
 */
Bus busMuxOneHot(Netlist &nl, const std::vector<NetId> &sels,
                 const std::vector<Bus> &choices);

/**
 * One-hot tri-state bus mux: each choice drives a shared bus
 * through TSBUFX1 cells. Cheaper than the AND-OR mux for wide
 * many-way selection (one cell per choice per bit), at the cost of
 * requiring exactly-one-hot selects. This is the idiom the printed
 * library's tri-state buffer exists for.
 */
Bus busMuxTristate(Netlist &nl, const std::vector<NetId> &sels,
                   const std::vector<Bus> &choices);

/**
 * Binary decoder: 2^sel.size() one-hot outputs. When `limit` is
 * nonzero only the first `limit` outputs are generated.
 */
std::vector<NetId> binaryDecoder(Netlist &nl, const Bus &sel,
                                 std::size_t limit = 0);

/** 1 iff bus equals the constant value. */
NetId equalsConst(Netlist &nl, const Bus &a, std::uint64_t value);

// ----------------------------------------------------------------
// Arithmetic
// ----------------------------------------------------------------

/** Result of an addition/subtraction. */
struct AddResult
{
    Bus sum;              ///< n-bit result
    NetId carryOut = invalidNet;  ///< carry (add) / not-borrow (sub)
    NetId overflow = invalidNet;  ///< signed overflow flag
};

/** Ripple-carry adder: a + b + carryIn. */
AddResult rippleAdder(Netlist &nl, const Bus &a, const Bus &b,
                      NetId carry_in);

/**
 * Ripple add/sub: subtract==0 -> a + b + carryIn,
 * subtract==1 -> a - b - (1 - carryIn), i.e. b is complemented and
 * carryIn is the inverted borrow, the standard shared-adder trick.
 */
AddResult rippleAddSub(Netlist &nl, const Bus &a, const Bus &b,
                       NetId subtract, NetId carry_in);

/** a + 1 using a half-adder chain (cheap PC incrementer). */
Bus incrementer(Netlist &nl, const Bus &a);

// ----------------------------------------------------------------
// Rotates (single position, as in TP-ISA)
// ----------------------------------------------------------------

/** Rotate result bundle: data plus the carry-out bit. */
struct RotateResult
{
    Bus data;
    NetId carryOut = invalidNet; ///< bit shifted out
};

/** Rotate left by one; carryOut is the old MSB. */
RotateResult rotateLeft1(const Bus &a);

/** Rotate left through carry; carryOut is the old MSB. */
RotateResult rotateLeft1Carry(const Bus &a, NetId carry_in);

/** Rotate right by one; carryOut is the old LSB. */
RotateResult rotateRight1(const Bus &a);

/** Rotate right through carry; carryOut is the old LSB. */
RotateResult rotateRight1Carry(const Bus &a, NetId carry_in);

/** Arithmetic shift right by one (MSB duplicated). */
RotateResult shiftRightArith1(const Bus &a);

// ----------------------------------------------------------------
// Registers
// ----------------------------------------------------------------

/** Bank of plain DFFs. */
Bus registerBank(Netlist &nl, const Bus &d);

/** Bank of DFFNRs sharing one active-low reset. */
Bus registerBankReset(Netlist &nl, const Bus &d, NetId rn);

/**
 * Register with write enable (and asynchronous reset): q is fed back
 * through a 2:1 mux so the value holds when en is low.
 */
Bus registerEnable(Netlist &nl, const Bus &d, NetId en, NetId rn);

} // namespace printed::synth

#endif // PRINTED_SYNTH_BLOCKS_HH
