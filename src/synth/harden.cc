#include "harden.hh"

#include <array>

#include "common/logging.hh"

namespace printed::synth
{

namespace
{

/** True when a net is a tri-state bus (driven by TSBUF instances). */
bool
isTristateBus(const Netlist &nl, NetId n)
{
    const GateId first = nl.netFirstDriver(n);
    return nl.netSource(n) == NetSource::GateOutput &&
           first != invalidGate &&
           nl.gateKind(first) == CellKind::TSBUFX1;
}

/**
 * Net-translation state for one redundant copy of the source
 * netlist. Inputs, constants, and voted flop outputs are shared
 * across copies; everything else is per-copy.
 */
struct CopyMap
{
    std::vector<NetId> map;

    explicit CopyMap(std::size_t nets)
        : map(nets, invalidNet)
    {}

    NetId
    xlate(const Netlist &src, Netlist &dst, NetId n)
    {
        panicIf(n >= map.size(), "harden: bad source net");
        NetId &m = map[n];
        if (m != invalidNet)
            return m;
        switch (src.netSource(n)) {
          case NetSource::Const0:
            m = dst.constZero();
            break;
          case NetSource::Const1:
            m = dst.constOne();
            break;
          default:
            panic("harden: net '" + src.netLabel(n) +
                  "' used before it is defined");
        }
        return m;
    }
};

Netlist
tmrFull(const Netlist &src, HardenReport &report)
{
    Netlist dst(src.name() + "_tmrfull");
    const auto order = src.levelize();
    std::array<CopyMap, 3> maps = {CopyMap(src.netCount()),
                                   CopyMap(src.netCount()),
                                   CopyMap(src.netCount())};

    // Primary input traces are shared by all three copies (the
    // voter cannot protect the pads themselves).
    for (const auto &p : src.inputs()) {
        const NetId n = dst.addInput(p.name);
        for (CopyMap &m : maps)
            m.map[p.net] = n;
    }

    // Tri-state bus nets must exist before their drivers are added.
    for (NetId n = 0; n < src.netCount(); ++n) {
        if (!isTristateBus(src, n))
            continue;
        for (unsigned k = 0; k < 3; ++k)
            maps[k].map[n] = dst.addNet();
    }

    // All copies read the *voted* flop state, so a defect in one
    // copy's state is corrected at the next boundary crossing.
    std::vector<NetId> votedQ(src.gateCount(), invalidNet);
    for (GateId gi = 0; gi < src.gateCount(); ++gi) {
        const Gate &g = src.gate(gi);
        if (!cellIsSequential(g.kind))
            continue;
        votedQ[gi] = dst.makeFeedback();
        for (CopyMap &m : maps)
            m.map[g.out] = votedQ[gi];
    }

    // Triplicate the combinational logic in levelized order (three
    // consecutive copies per original gate; harden.hh documents
    // this layout).
    for (GateId gi : order) {
        const Gate &g = src.gate(gi);
        for (CopyMap &m : maps) {
            const NetId a = m.xlate(src, dst, g.in0);
            if (g.kind == CellKind::TSBUFX1) {
                dst.addTristate(a, m.xlate(src, dst, g.in1),
                                m.map[g.out]);
            } else {
                const NetId b = g.in1 != invalidNet
                                    ? m.xlate(src, dst, g.in1)
                                    : invalidNet;
                m.map[g.out] = dst.addGate(g.kind, a, b);
            }
        }
    }

    // Triplicate the sequential cells and vote their outputs.
    for (GateId gi = 0; gi < src.gateCount(); ++gi) {
        const Gate &g = src.gate(gi);
        if (!cellIsSequential(g.kind))
            continue;
        std::array<NetId, 3> q{};
        for (unsigned k = 0; k < 3; ++k) {
            const NetId a = maps[k].xlate(src, dst, g.in0);
            const NetId b = g.in1 != invalidNet
                                ? maps[k].xlate(src, dst, g.in1)
                                : invalidNet;
            q[k] = dst.addGate(g.kind, a, b);
        }
        const NetId v = majority3(dst, q[0], q[1], q[2]);
        dst.resolveFeedback(votedQ[gi], v);
        ++report.votersInserted;
        for (CopyMap &m : maps)
            m.map[g.out] = v;
    }

    // Vote every primary output whose three copies diverged (flop-
    // fed or shared-net outputs are already voted/shared).
    for (const auto &p : src.outputs()) {
        const NetId a = maps[0].xlate(src, dst, p.net);
        const NetId b = maps[1].xlate(src, dst, p.net);
        const NetId c = maps[2].xlate(src, dst, p.net);
        if (a == b && b == c) {
            dst.addOutput(p.name, a);
        } else {
            dst.addOutput(p.name, majority3(dst, a, b, c));
            ++report.votersInserted;
        }
    }

    report.gatesTriplicated = src.gateCount();
    return dst;
}

Netlist
tmrSequential(const Netlist &src, HardenReport &report)
{
    Netlist dst(src.name() + "_tmrseq");
    const auto order = src.levelize();
    CopyMap m(src.netCount());

    for (const auto &p : src.inputs())
        m.map[p.net] = dst.addInput(p.name);

    for (NetId n = 0; n < src.netCount(); ++n)
        if (isTristateBus(src, n))
            m.map[n] = dst.addNet();

    std::vector<NetId> votedQ(src.gateCount(), invalidNet);
    for (GateId gi = 0; gi < src.gateCount(); ++gi) {
        const Gate &g = src.gate(gi);
        if (!cellIsSequential(g.kind))
            continue;
        votedQ[gi] = dst.makeFeedback();
        m.map[g.out] = votedQ[gi];
    }

    for (GateId gi : order) {
        const Gate &g = src.gate(gi);
        const NetId a = m.xlate(src, dst, g.in0);
        if (g.kind == CellKind::TSBUFX1) {
            dst.addTristate(a, m.xlate(src, dst, g.in1),
                            m.map[g.out]);
        } else {
            const NetId b = g.in1 != invalidNet
                                ? m.xlate(src, dst, g.in1)
                                : invalidNet;
            m.map[g.out] = dst.addGate(g.kind, a, b);
        }
    }

    // The combinational logic is single-copy; only the (defect-
    // dense) sequential cells are triplicated, fed by the same next-
    // state value and voted on their outputs.
    for (GateId gi = 0; gi < src.gateCount(); ++gi) {
        const Gate &g = src.gate(gi);
        if (!cellIsSequential(g.kind))
            continue;
        const NetId a = m.xlate(src, dst, g.in0);
        const NetId b = g.in1 != invalidNet
                            ? m.xlate(src, dst, g.in1)
                            : invalidNet;
        std::array<NetId, 3> q{};
        for (unsigned k = 0; k < 3; ++k)
            q[k] = dst.addGate(g.kind, a, b);
        const NetId v = majority3(dst, q[0], q[1], q[2]);
        dst.resolveFeedback(votedQ[gi], v);
        ++report.votersInserted;
        m.map[g.out] = v;
        ++report.gatesTriplicated;
    }

    for (const auto &p : src.outputs())
        dst.addOutput(p.name, m.xlate(src, dst, p.net));

    return dst;
}

} // anonymous namespace

const char *
hardenStrategyName(HardenStrategy strategy)
{
    switch (strategy) {
      case HardenStrategy::TmrFull:
        return "TMR-full";
      case HardenStrategy::TmrSequential:
        return "TMR-seq";
    }
    panic("hardenStrategyName: unknown strategy");
}

NetId
majority3(Netlist &nl, NetId a, NetId b, NetId c)
{
    // maj = ab + ac + bc as a NAND tree: cheapest realization in
    // the stage model (6 printed devices).
    const NetId nab = nl.addGate(CellKind::NAND2X1, a, b);
    const NetId nac = nl.addGate(CellKind::NAND2X1, a, c);
    const NetId nbc = nl.addGate(CellKind::NAND2X1, b, c);
    const NetId pair = nl.addGate(CellKind::AND2X1, nab, nac);
    return nl.addGate(CellKind::NAND2X1, pair, nbc);
}

Netlist
harden(const Netlist &src, HardenStrategy strategy,
       HardenReport *report)
{
    src.validate();
    HardenReport local;
    local.gatesBefore = src.gateCount();

    Netlist dst = strategy == HardenStrategy::TmrFull
                      ? tmrFull(src, local)
                      : tmrSequential(src, local);

    local.gatesAfter = dst.gateCount();
    dst.validate();
    if (report)
        *report = local;
    return dst;
}

} // namespace printed::synth
