/**
 * @file
 * Content-addressed on-disk synthesis cache.
 *
 * Persists the two products the in-memory SynthCache memoizes —
 * synthesized netlists and characterizations — across process
 * restarts, keyed by the same canonical CoreConfigKey (plus
 * technology and activity bits for characterizations). A printedd
 * restart or a fresh bench process starts warm: repeated synth
 * traffic after a deploy hits disk instead of re-running synthesis.
 *
 * One entry is one file in the cache directory:
 *
 *   nl-<16-hex-key-hash>.psc     a netlist
 *   ch-<16-hex-key-hash>.psc     a characterization
 *
 * File layout (all integers little-endian, doubles as IEEE-754 bit
 * patterns):
 *
 *   magic "PSC1" | u32 format version | u64 payload bytes
 *   | u64 FNV-1a checksum of payload | payload
 *
 * The payload starts with the full canonical key (not just its
 * hash), so a hash collision can never alias two configs: a loaded
 * entry whose key record differs from the request is counted as a
 * key mismatch and treated as a miss.
 *
 * Crash safety: writes go to a "tmp-*" file in the same directory,
 * are fsync()ed, and then atomically rename()d over the final name
 * (the directory is fsync()ed after the rename). A kill -9 at any
 * point leaves either the old entry, the new entry, or a stray
 * tmp file (removed by the next constructor) — never a torn entry
 * under the final name.
 *
 * Corruption handling: a bad magic, version, length, checksum, or
 * a payload that fails structural validation is *quarantined* (the
 * file is renamed to "<name>.corrupt-<n>" for post-mortem) and the
 * lookup returns a miss, so one flipped bit costs one re-synthesis,
 * never a crash or a wrong result.
 *
 * Failure policy: loads never throw (any error is a miss); stores
 * are best-effort (errors are counted, the in-memory result is
 * unaffected). The cache is safe to share between processes on one
 * machine: writers never modify an entry in place.
 */

#ifndef PRINTED_SYNTH_DISK_CACHE_HH
#define PRINTED_SYNTH_DISK_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "analysis/characterize.hh"
#include "common/metrics.hh"
#include "netlist/netlist.hh"
#include "synth/cache.hh"
#include "tech/library.hh"

namespace printed
{

/** Monotonic counters of one DiskCache (see stats()). */
struct DiskCacheStats
{
    std::uint64_t netlistHits = 0;
    std::uint64_t netlistMisses = 0;
    std::uint64_t charHits = 0;
    std::uint64_t charMisses = 0;
    std::uint64_t stores = 0;
    std::uint64_t storeErrors = 0;
    std::uint64_t corruptQuarantined = 0;
    std::uint64_t versionMismatches = 0;
    std::uint64_t keyMismatches = 0;
};

/** The persistent tier behind SynthCache (see file comment). */
class DiskCache
{
  public:
    /**
     * Entry-format version; bumped on any layout change.
     * v1: per-net (source, name) records.
     * v2: packed source bytes + sparse (net, name) pairs, matching
     *     the struct-of-arrays netlist core. v1 entries count as
     *     version_mismatches and are quarantined (a rebuild).
     */
    static constexpr std::uint32_t formatVersion = 2;

    /**
     * Open (creating if needed) a cache directory. Stray tmp files
     * from a crashed writer are removed. Throws FatalError when the
     * directory cannot be created.
     *
     * @param publishMetrics back the counters by the process-wide
     *        metrics registry ("synth.disk_cache.*"); local/test
     *        instances keep private counters.
     */
    explicit DiskCache(std::string dir, bool publishMetrics = false);

    const std::string &dir() const { return dir_; }

    /** Load a netlist entry; nullptr on miss (never throws). */
    std::shared_ptr<const Netlist>
    loadNetlist(const CoreConfigKey &key);

    /** Persist a netlist entry (best-effort, never throws). */
    void storeNetlist(const CoreConfigKey &key, const Netlist &nl);

    /** Load a characterization entry; nullptr on miss. */
    std::shared_ptr<const Characterization>
    loadCharacterization(const CoreConfigKey &key, TechKind tech,
                         double activity);

    /** Persist a characterization entry (best-effort). */
    void storeCharacterization(const CoreConfigKey &key,
                               TechKind tech, double activity,
                               const Characterization &ch);

    /** Resident entry files (excludes quarantined/tmp files). */
    std::size_t entryCount() const;

    /**
     * Deterministically pick one resident entry (by `seed`) and
     * flip a byte inside its payload — the disk half of the
     * service fault-injection harness. Returns the victim's file
     * name, or "" when the cache is empty.
     */
    std::string corruptOneEntry(std::uint64_t seed);

    /** Snapshot of the counters. */
    DiskCacheStats stats() const;

  private:
    /** Read + verify one entry file; "" on any failure (counted). */
    std::string readEntry(const std::string &path);

    /** Crash-safe write of one finished entry file. */
    bool writeEntry(const std::string &path,
                    const std::string &payload);

    /** Move a bad entry aside and count it. */
    void quarantine(const std::string &path);

    std::string dir_;
    std::mutex writeMutex_; ///< serializes tmp-name generation
    std::uint64_t tmpSeq_ = 0;

    /** Private counter storage for non-published instances. */
    metrics::Counter ownCounters_[9];
    metrics::Counter *netlistHits_;
    metrics::Counter *netlistMisses_;
    metrics::Counter *charHits_;
    metrics::Counter *charMisses_;
    metrics::Counter *stores_;
    metrics::Counter *storeErrors_;
    metrics::Counter *corrupt_;
    metrics::Counter *versionMismatches_;
    metrics::Counter *keyMismatches_;
};

} // namespace printed

#endif // PRINTED_SYNTH_DISK_CACHE_HH
