/**
 * @file
 * Redundancy-hardening passes for defect tolerance.
 *
 * Section 3.1's device yields (90-99% measured) make every printed
 * gate a liability; this module spends area to buy back functional
 * yield. Two strategies over the 11-cell library:
 *
 *   - TmrFull: triple modular redundancy of the whole netlist.
 *     Every gate is triplicated; majority voters (5 cells: 4x NAND2
 *     + 1x AND2, 6 printed devices) are inserted at each flop
 *     boundary and at every primary output, so a single defect in
 *     any one copy is corrected each cycle. Voters and primary
 *     input traces remain single points of failure - the honest TMR
 *     cost model.
 *
 *   - TmrSequential: selective hardening of the sequential cells
 *     only. Flops are the most defect-prone instances in the stage
 *     model (8-10 printed devices vs 1-3 for combinational cells),
 *     so triplicating just the state plus a voter per flop is the
 *     cost-effective point: ~3x the flop area instead of >3x the
 *     whole core.
 *
 * Hardened netlists must NOT be re-run through synth::optimize():
 * structural common-subexpression sharing would collapse the
 * redundant copies right back into one.
 */

#ifndef PRINTED_SYNTH_HARDEN_HH
#define PRINTED_SYNTH_HARDEN_HH

#include <cstddef>

#include "netlist/netlist.hh"

namespace printed::synth
{

/** Which redundancy scheme harden() applies. */
enum class HardenStrategy
{
    TmrFull,       ///< triplicate everything, vote at state/outputs
    TmrSequential, ///< triplicate sequential cells only
};

/** Cost accounting of one harden() run. */
struct HardenReport
{
    std::size_t gatesBefore = 0;
    std::size_t gatesAfter = 0;
    std::size_t gatesTriplicated = 0; ///< original gates triplicated
    std::size_t votersInserted = 0;   ///< majority voters added
};

/** Display name of a strategy ("TMR-full" / "TMR-seq"). */
const char *hardenStrategyName(HardenStrategy strategy);

/**
 * Build a majority-of-three voter from library cells:
 * maj(a,b,c) = NAND(AND(NAND(a,b), NAND(a,c)), NAND(b,c)).
 * @return the voted output net (5 gates, 6 printed devices)
 */
NetId majority3(Netlist &nl, NetId a, NetId b, NetId c);

/**
 * Return a hardened copy of `src` (same ports, same function in the
 * absence of defects). `src` must validate(); the result does.
 *
 * For TmrFull the gate order of the result is: all triplicated
 * combinational gates (three consecutive copies per original gate,
 * in levelized order), then per sequential cell its three copies
 * followed by its voter, then the primary-output voters.
 */
Netlist harden(const Netlist &src, HardenStrategy strategy,
               HardenReport *report = nullptr);

} // namespace printed::synth

#endif // PRINTED_SYNTH_HARDEN_HH
