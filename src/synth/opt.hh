/**
 * @file
 * Netlist optimization passes.
 *
 * A light-weight stand-in for the logic optimization a commercial
 * synthesis tool performs after elaboration: constant propagation,
 * double-inverter removal, structural common-subexpression sharing,
 * and dead-gate sweeping. The generators in blocks.hh are written
 * for clarity and rely on these passes to clean up, e.g., adders fed
 * with constant operands (a PC incrementer elaborated from a generic
 * adder) or decoders with shared product terms.
 */

#ifndef PRINTED_SYNTH_OPT_HH
#define PRINTED_SYNTH_OPT_HH

#include <cstddef>

#include "netlist/netlist.hh"

namespace printed::synth
{

/** Statistics of one optimize() run. */
struct OptStats
{
    std::size_t gatesBefore = 0;
    std::size_t gatesAfter = 0;
    std::size_t constFolded = 0;   ///< gates simplified by constants
    std::size_t invPairs = 0;      ///< INV(INV(x)) collapsed
    std::size_t shared = 0;        ///< structurally duplicate gates
    std::size_t deadRemoved = 0;   ///< unreachable gates swept
    std::size_t netsRemoved = 0;   ///< orphaned nets compacted away
    unsigned iterations = 0;       ///< fixpoint iterations
};

/**
 * Optimize a netlist in place until no pass makes progress.
 * The netlist must validate() before and will validate() after.
 */
OptStats optimize(Netlist &nl);

} // namespace printed::synth

#endif // PRINTED_SYNTH_OPT_HH
