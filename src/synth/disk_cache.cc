#include "disk_cache.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace fs = std::filesystem;

namespace printed
{

namespace
{

constexpr char magic[4] = {'P', 'S', 'C', '1'};
constexpr std::size_t headerBytes = 4 + 4 + 8 + 8;

/** Payload kind tags (first u32 of every payload). */
constexpr std::uint32_t kindNetlist = 1;
constexpr std::uint32_t kindChar = 2;

std::uint64_t
fnv1a(const std::string &data)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : data) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

// ---------------------------------------------------------------
// Little-endian append/read primitives. The reader throws
// FatalError on any out-of-bounds access; loaders catch it (and
// any validation PanicError) and quarantine the entry.
// ---------------------------------------------------------------

void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(char(v));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(char((v >> (8 * i)) & 0xFF));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(char((v >> (8 * i)) & 0xFF));
}

void
putF64(std::string &out, double v)
{
    putU64(out, std::bit_cast<std::uint64_t>(v));
}

void
putString(std::string &out, const std::string &s)
{
    putU32(out, std::uint32_t(s.size()));
    out += s;
}

struct BlobReader
{
    const std::string &data;
    std::size_t pos = 0;

    void
    need(std::size_t n) const
    {
        fatalIf(pos + n > data.size(), "disk cache blob truncated");
    }

    std::uint8_t
    u8()
    {
        need(1);
        return std::uint8_t(data[pos++]);
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(std::uint8_t(data[pos + i]))
                 << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(std::uint8_t(data[pos + i]))
                 << (8 * i);
        pos += 8;
        return v;
    }

    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        // An entry is at most a few MB; a length beyond the blob is
        // corruption, not a big string.
        need(n);
        std::string s = data.substr(pos, n);
        pos += n;
        return s;
    }
};

// ---------------------------------------------------------------
// Key records. The full canonical key is stored in (and verified
// against) every entry, so the file-name hash is only a locator.
// ---------------------------------------------------------------

void
putKey(std::string &out, const CoreConfigKey &k)
{
    putU32(out, k.stages);
    putU32(out, k.datawidth);
    putU32(out, k.barCount);
    putU32(out, k.pcBits);
    putU32(out, k.operandBits);
    putU32(out, k.isaFlagCount);
    putU32(out, k.flagMask);
    putU32(out, k.barBits);
    putU32(out, k.opcodeMask);
    putU32(out, k.addrBits);
    putU8(out, k.tristateResultMux ? 1 : 0);
}

CoreConfigKey
readKey(BlobReader &r)
{
    CoreConfigKey k;
    k.stages = r.u32();
    k.datawidth = r.u32();
    k.barCount = r.u32();
    k.pcBits = r.u32();
    k.operandBits = r.u32();
    k.isaFlagCount = r.u32();
    k.flagMask = r.u32();
    k.barBits = r.u32();
    k.opcodeMask = r.u32();
    k.addrBits = r.u32();
    k.tristateResultMux = r.u8() != 0;
    return k;
}

std::uint64_t
keyHash(const CoreConfigKey &k)
{
    std::uint64_t h = 0x13198a2e03707344ULL;
    for (std::uint64_t field :
         {std::uint64_t(k.stages), std::uint64_t(k.datawidth),
          std::uint64_t(k.barCount), std::uint64_t(k.pcBits),
          std::uint64_t(k.operandBits),
          std::uint64_t(k.isaFlagCount), std::uint64_t(k.flagMask),
          std::uint64_t(k.barBits), std::uint64_t(k.opcodeMask),
          std::uint64_t(k.addrBits),
          std::uint64_t(k.tristateResultMux)})
        h = mixSeed(h, field);
    return h;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

// ---------------------------------------------------------------
// Netlist blob
// ---------------------------------------------------------------

std::string
encodeNetlist(const Netlist &nl)
{
    std::string out;
    putString(out, nl.name());
    putU32(out, std::uint32_t(nl.netCount()));
    for (NetId n = 0; n < nl.netCount(); ++n)
        putU8(out, std::uint8_t(nl.netSource(n)));
    // Names are sparse: (net, name) pairs for named nets only.
    std::uint32_t named = 0;
    for (NetId n = 0; n < nl.netCount(); ++n)
        if (nl.netHasName(n))
            ++named;
    putU32(out, named);
    for (NetId n = 0; n < nl.netCount(); ++n) {
        if (nl.netHasName(n)) {
            putU32(out, n);
            putString(out, nl.netName(n));
        }
    }
    putU32(out, std::uint32_t(nl.gateCount()));
    for (GateId gi = 0; gi < nl.gateCount(); ++gi) {
        const Gate g = nl.gate(gi);
        putU8(out, std::uint8_t(g.kind));
        putU32(out, g.in0);
        putU32(out, g.in1);
        putU32(out, g.out);
    }
    putU32(out, std::uint32_t(nl.inputs().size()));
    for (const PortBinding &p : nl.inputs()) {
        putString(out, p.name);
        putU32(out, p.net);
    }
    putU32(out, std::uint32_t(nl.outputs().size()));
    for (const PortBinding &p : nl.outputs()) {
        putString(out, p.name);
        putU32(out, p.net);
    }
    putU32(out, nl.constZeroId());
    putU32(out, nl.constOneId());
    return out;
}

Netlist
decodeNetlist(BlobReader &r)
{
    std::string name = r.str();
    const std::uint32_t netCount = r.u32();
    std::vector<NetSource> sources;
    sources.reserve(std::min<std::uint32_t>(netCount, 1u << 20));
    for (std::uint32_t i = 0; i < netCount; ++i) {
        const std::uint8_t src = r.u8();
        fatalIf(src > std::uint8_t(NetSource::GateOutput),
                "disk cache: bad net source");
        sources.push_back(NetSource(src));
    }
    const std::uint32_t named = r.u32();
    std::vector<std::pair<NetId, std::string>> netNames;
    netNames.reserve(std::min<std::uint32_t>(named, 1u << 20));
    for (std::uint32_t i = 0; i < named; ++i) {
        const NetId n = r.u32();
        fatalIf(n >= netCount, "disk cache: bad named net");
        netNames.emplace_back(n, r.str());
    }
    const std::uint32_t gateCount = r.u32();
    std::vector<Gate> gates;
    gates.reserve(std::min<std::uint32_t>(gateCount, 1u << 20));
    for (std::uint32_t i = 0; i < gateCount; ++i) {
        Gate g;
        const std::uint8_t kind = r.u8();
        fatalIf(kind >= numCellKinds, "disk cache: bad cell kind");
        g.kind = CellKind(kind);
        g.in0 = r.u32();
        g.in1 = r.u32();
        g.out = r.u32();
        gates.push_back(g);
    }
    auto readPorts = [&] {
        const std::uint32_t n = r.u32();
        std::vector<PortBinding> ports;
        ports.reserve(std::min<std::uint32_t>(n, 1u << 16));
        for (std::uint32_t i = 0; i < n; ++i) {
            PortBinding p;
            p.name = r.str();
            p.net = r.u32();
            ports.push_back(std::move(p));
        }
        return ports;
    };
    std::vector<PortBinding> inputs = readPorts();
    std::vector<PortBinding> outputs = readPorts();
    const NetId const0 = r.u32();
    const NetId const1 = r.u32();
    // restore() rebuilds driver lists and validate()s; structural
    // nonsense panics, which the loader quarantines.
    return Netlist::restore(std::move(name), std::move(sources),
                            std::move(netNames), std::move(gates),
                            std::move(inputs), std::move(outputs),
                            const0, const1);
}

// ---------------------------------------------------------------
// Characterization blob
// ---------------------------------------------------------------

std::string
encodeChar(const Characterization &ch)
{
    std::string out;
    putString(out, ch.label);
    putU8(out, std::uint8_t(ch.tech));
    putU32(out, std::uint32_t(numCellKinds));
    for (std::size_t n : ch.stats.histogram)
        putU64(out, n);
    putU64(out, ch.stats.totalGates);
    putU64(out, ch.stats.combGates);
    putU64(out, ch.stats.seqGates);
    putU64(out, ch.stats.logicDepth);
    putU64(out, ch.stats.inputCount);
    putU64(out, ch.stats.outputCount);
    putF64(out, ch.area.total_mm2);
    putF64(out, ch.area.comb_mm2);
    putF64(out, ch.area.seq_mm2);
    for (double a : ch.area.perCell_mm2)
        putF64(out, a);
    putF64(out, ch.timing.outputDelayUs);
    putF64(out, ch.timing.regPathUs);
    putF64(out, ch.timing.criticalPathUs);
    putF64(out, ch.timing.periodUs);
    putF64(out, ch.timing.fmaxHz);
    putF64(out, ch.powerAtFmax.frequencyHz);
    putF64(out, ch.powerAtFmax.activity);
    putF64(out, ch.powerAtFmax.dynamic_mW);
    putF64(out, ch.powerAtFmax.static_mW);
    putF64(out, ch.powerAtFmax.total_mW);
    putF64(out, ch.powerAtFmax.comb_mW);
    putF64(out, ch.powerAtFmax.seq_mW);
    putF64(out, ch.powerAtFmax.energyPerCycle_nJ);
    return out;
}

Characterization
decodeChar(BlobReader &r)
{
    Characterization ch;
    ch.label = r.str();
    const std::uint8_t tech = r.u8();
    fatalIf(tech > std::uint8_t(TechKind::CNT_TFT),
            "disk cache: bad tech kind");
    ch.tech = TechKind(tech);
    fatalIf(r.u32() != numCellKinds,
            "disk cache: cell-kind count mismatch");
    for (std::size_t &n : ch.stats.histogram)
        n = std::size_t(r.u64());
    ch.stats.totalGates = std::size_t(r.u64());
    ch.stats.combGates = std::size_t(r.u64());
    ch.stats.seqGates = std::size_t(r.u64());
    ch.stats.logicDepth = std::size_t(r.u64());
    ch.stats.inputCount = std::size_t(r.u64());
    ch.stats.outputCount = std::size_t(r.u64());
    ch.area.total_mm2 = r.f64();
    ch.area.comb_mm2 = r.f64();
    ch.area.seq_mm2 = r.f64();
    for (double &a : ch.area.perCell_mm2)
        a = r.f64();
    ch.timing.outputDelayUs = r.f64();
    ch.timing.regPathUs = r.f64();
    ch.timing.criticalPathUs = r.f64();
    ch.timing.periodUs = r.f64();
    ch.timing.fmaxHz = r.f64();
    ch.powerAtFmax.frequencyHz = r.f64();
    ch.powerAtFmax.activity = r.f64();
    ch.powerAtFmax.dynamic_mW = r.f64();
    ch.powerAtFmax.static_mW = r.f64();
    ch.powerAtFmax.total_mW = r.f64();
    ch.powerAtFmax.comb_mW = r.f64();
    ch.powerAtFmax.seq_mW = r.f64();
    ch.powerAtFmax.energyPerCycle_nJ = r.f64();
    return ch;
}

} // anonymous namespace

DiskCache::DiskCache(std::string dir, bool publishMetrics)
    : dir_(std::move(dir))
{
    if (publishMetrics) {
        netlistHits_ =
            &metrics::counter("synth.disk_cache.netlist_hits");
        netlistMisses_ =
            &metrics::counter("synth.disk_cache.netlist_misses");
        charHits_ = &metrics::counter("synth.disk_cache.char_hits");
        charMisses_ =
            &metrics::counter("synth.disk_cache.char_misses");
        stores_ = &metrics::counter("synth.disk_cache.stores");
        storeErrors_ =
            &metrics::counter("synth.disk_cache.store_errors");
        corrupt_ = &metrics::counter("synth.disk_cache.corrupt");
        versionMismatches_ =
            &metrics::counter("synth.disk_cache.version_mismatches");
        keyMismatches_ =
            &metrics::counter("synth.disk_cache.key_mismatches");
    } else {
        netlistHits_ = &ownCounters_[0];
        netlistMisses_ = &ownCounters_[1];
        charHits_ = &ownCounters_[2];
        charMisses_ = &ownCounters_[3];
        stores_ = &ownCounters_[4];
        storeErrors_ = &ownCounters_[5];
        corrupt_ = &ownCounters_[6];
        versionMismatches_ = &ownCounters_[7];
        keyMismatches_ = &ownCounters_[8];
    }

    std::error_code ec;
    fs::create_directories(dir_, ec);
    fatalIf(ec || !fs::is_directory(dir_),
            "disk cache: cannot create directory '" + dir_ + "'");

    // Remove writer tmp files left behind by a crash: they were
    // never renamed into place, so they are dead weight, never
    // entries.
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        const std::string name = e.path().filename().string();
        if (name.rfind("tmp-", 0) == 0)
            fs::remove(e.path(), ec);
    }
}

std::string
DiskCache::readEntry(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {}; // plain miss: no such entry
    std::string raw;
    char chunk[1 << 16];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        raw.append(chunk, n);
    const bool readError = std::ferror(f);
    std::fclose(f);

    if (readError || raw.size() < headerBytes ||
        std::memcmp(raw.data(), magic, sizeof(magic)) != 0) {
        quarantine(path);
        return {};
    }
    BlobReader header{raw, sizeof(magic)};
    const std::uint32_t version = header.u32();
    const std::uint64_t payloadBytes = header.u64();
    const std::uint64_t checksum = header.u64();
    if (version != formatVersion) {
        versionMismatches_->add();
        quarantine(path);
        return {};
    }
    if (payloadBytes != raw.size() - headerBytes) {
        quarantine(path);
        return {};
    }
    std::string payload = raw.substr(headerBytes);
    if (fnv1a(payload) != checksum) {
        quarantine(path);
        return {};
    }
    return payload;
}

bool
DiskCache::writeEntry(const std::string &path,
                      const std::string &payload)
{
    std::string tmp;
    {
        std::lock_guard lk(writeMutex_);
        tmp = dir_ + "/tmp-" + std::to_string(::getpid()) + "-" +
              std::to_string(++tmpSeq_);
    }
    std::string framed(magic, sizeof(magic));
    putU32(framed, formatVersion);
    putU64(framed, payload.size());
    putU64(framed, fnv1a(payload));
    framed += payload;

    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL,
                          0644);
    if (fd < 0)
        return false;
    std::size_t written = 0;
    while (written < framed.size()) {
        const ssize_t w = ::write(fd, framed.data() + written,
                                  framed.size() - written);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        written += std::size_t(w);
    }
    // fsync the data before the rename: the atomic rename must
    // never publish a name whose bytes could still be lost.
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    // Make the rename itself durable.
    const int dirFd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirFd >= 0) {
        ::fsync(dirFd);
        ::close(dirFd);
    }
    return true;
}

void
DiskCache::quarantine(const std::string &path)
{
    corrupt_->add();
    std::error_code ec;
    for (unsigned n = 0; n < 1000; ++n) {
        const std::string target =
            path + ".corrupt-" + std::to_string(n);
        if (fs::exists(target, ec))
            continue;
        fs::rename(path, target, ec);
        if (!ec)
            return;
    }
    fs::remove(path, ec); // last resort: drop it
}

std::shared_ptr<const Netlist>
DiskCache::loadNetlist(const CoreConfigKey &key)
{
    const std::string path =
        dir_ + "/nl-" + hex16(keyHash(key)) + ".psc";
    const std::string payload = readEntry(path);
    if (payload.empty()) {
        netlistMisses_->add();
        return nullptr;
    }
    try {
        BlobReader r{payload, 0};
        fatalIf(r.u32() != kindNetlist,
                "disk cache: wrong entry kind");
        if (readKey(r) != key) {
            // A hash collision, not corruption: leave the entry
            // (it is some other config's valid netlist).
            keyMismatches_->add();
            netlistMisses_->add();
            return nullptr;
        }
        auto nl = std::make_shared<const Netlist>(decodeNetlist(r));
        netlistHits_->add();
        return nl;
    } catch (const std::exception &) {
        // Truncated/mutated payload that survived the checksum is
        // impossible in practice, but a hostile or torn file must
        // still degrade to a miss.
        quarantine(path);
        netlistMisses_->add();
        return nullptr;
    }
}

void
DiskCache::storeNetlist(const CoreConfigKey &key, const Netlist &nl)
{
    std::string payload;
    putU32(payload, kindNetlist);
    putKey(payload, key);
    payload += encodeNetlist(nl);
    const std::string path =
        dir_ + "/nl-" + hex16(keyHash(key)) + ".psc";
    if (writeEntry(path, payload))
        stores_->add();
    else
        storeErrors_->add();
}

std::shared_ptr<const Characterization>
DiskCache::loadCharacterization(const CoreConfigKey &key,
                                TechKind tech, double activity)
{
    const std::uint64_t activityBits =
        std::bit_cast<std::uint64_t>(activity);
    const std::uint64_t hash = mixSeed(
        mixSeed(keyHash(key), std::uint64_t(tech)), activityBits);
    const std::string path = dir_ + "/ch-" + hex16(hash) + ".psc";
    const std::string payload = readEntry(path);
    if (payload.empty()) {
        charMisses_->add();
        return nullptr;
    }
    try {
        BlobReader r{payload, 0};
        fatalIf(r.u32() != kindChar, "disk cache: wrong entry kind");
        const CoreConfigKey storedKey = readKey(r);
        const std::uint32_t storedTech = r.u32();
        const std::uint64_t storedActivity = r.u64();
        if (storedKey != key ||
            storedTech != std::uint32_t(tech) ||
            storedActivity != activityBits) {
            keyMismatches_->add();
            charMisses_->add();
            return nullptr;
        }
        auto ch = std::make_shared<const Characterization>(
            decodeChar(r));
        charHits_->add();
        return ch;
    } catch (const std::exception &) {
        quarantine(path);
        charMisses_->add();
        return nullptr;
    }
}

void
DiskCache::storeCharacterization(const CoreConfigKey &key,
                                 TechKind tech, double activity,
                                 const Characterization &ch)
{
    const std::uint64_t activityBits =
        std::bit_cast<std::uint64_t>(activity);
    std::string payload;
    putU32(payload, kindChar);
    putKey(payload, key);
    putU32(payload, std::uint32_t(tech));
    putU64(payload, activityBits);
    payload += encodeChar(ch);
    const std::uint64_t hash = mixSeed(
        mixSeed(keyHash(key), std::uint64_t(tech)), activityBits);
    const std::string path = dir_ + "/ch-" + hex16(hash) + ".psc";
    if (writeEntry(path, payload))
        stores_->add();
    else
        storeErrors_->add();
}

std::size_t
DiskCache::entryCount() const
{
    std::error_code ec;
    std::size_t n = 0;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        const std::string name = e.path().filename().string();
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".psc") == 0)
            ++n;
    }
    return n;
}

std::string
DiskCache::corruptOneEntry(std::uint64_t seed)
{
    std::error_code ec;
    std::vector<std::string> entries;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        const std::string name = e.path().filename().string();
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".psc") == 0)
            entries.push_back(name);
    }
    if (entries.empty())
        return "";
    std::sort(entries.begin(), entries.end());
    Rng rng(seed);
    const std::string victim =
        entries[std::size_t(rng.below(entries.size()))];
    const std::string path = dir_ + "/" + victim;

    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f)
        return "";
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size <= long(headerBytes)) {
        std::fclose(f);
        return "";
    }
    // Flip one payload byte somewhere past the header.
    const long offset =
        long(headerBytes) +
        long(rng.below(std::uint64_t(size - long(headerBytes))));
    std::fseek(f, offset, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, offset, SEEK_SET);
    std::fputc((c ^ 0x5A) & 0xFF, f);
    std::fclose(f);
    return victim;
}

DiskCacheStats
DiskCache::stats() const
{
    DiskCacheStats s;
    s.netlistHits = netlistHits_->value();
    s.netlistMisses = netlistMisses_->value();
    s.charHits = charHits_->value();
    s.charMisses = charMisses_->value();
    s.stores = stores_->value();
    s.storeErrors = storeErrors_->value();
    s.corruptQuarantined = corrupt_->value();
    s.versionMismatches = versionMismatches_->value();
    s.keyMismatches = keyMismatches_->value();
    return s;
}

} // namespace printed
