#include "golden.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace printed
{

const char *
kernelName(Kernel k)
{
    switch (k) {
      case Kernel::Mult:   return "mult";
      case Kernel::Div:    return "div";
      case Kernel::InSort: return "inSort";
      case Kernel::IntAvg: return "intAvg";
      case Kernel::THold:  return "tHold";
      case Kernel::Crc8:   return "crc8";
      case Kernel::DTree:  return "dTree";
      default:
        panic("kernelName: unknown kernel");
    }
}

namespace golden
{

std::uint64_t
mult(std::uint64_t a, std::uint64_t b, unsigned width)
{
    const std::uint64_t mask = maskBits(width);
    std::uint64_t product = 0;
    a &= mask;
    b &= mask;
    for (unsigned i = 0; i < width; ++i) {
        if ((b >> i) & 1)
            product += a << i;
    }
    return product & mask;
}

DivResult
div(std::uint64_t a, std::uint64_t b, unsigned width)
{
    const std::uint64_t mask = maskBits(width);
    a &= mask;
    b &= mask;
    fatalIf(b == 0, "golden::div: divide by zero");
    return {a / b, a % b};
}

std::vector<std::uint64_t>
inSort(std::vector<std::uint64_t> data)
{
    for (std::size_t i = 1; i < data.size(); ++i) {
        const std::uint64_t key = data[i];
        std::size_t j = i;
        while (j > 0 && data[j - 1] > key) {
            data[j] = data[j - 1];
            --j;
        }
        data[j] = key;
    }
    return data;
}

std::uint64_t
intAvg(const std::vector<std::uint64_t> &data, unsigned width)
{
    const std::uint64_t mask = maskBits(width);
    std::uint64_t sum = 0;
    for (std::uint64_t v : data)
        sum = (sum + (v & mask)) & mask;
    return (sum / data.size()) & mask;
}

std::uint64_t
tHold(const std::vector<std::uint64_t> &data, std::uint64_t threshold)
{
    std::uint64_t count = 0;
    for (std::uint64_t v : data)
        if (v > threshold)
            ++count;
    return count;
}

std::uint8_t
crc8(const std::vector<std::uint8_t> &stream)
{
    std::uint8_t crc = 0;
    for (std::uint8_t byte : stream) {
        crc ^= byte;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & 0x80)
                crc = std::uint8_t((crc << 1) ^ 0x07);
            else
                crc = std::uint8_t(crc << 1);
        }
    }
    return crc;
}

namespace
{

/**
 * Tree shape shared with the TP-ISA dTree generator: a full
 * depth-5 binary tree (internal node ids 1..31) whose first 19
 * depth-5 leaves (ids 32..50) are promoted to internal nodes,
 * sizing the program to exactly 256 instruction words.
 */
constexpr unsigned dTreePromotedLeaves = 19;

bool
dTreeIsInternal(unsigned node)
{
    return node < 32 || (node >= 32 && node < 32 + dTreePromotedLeaves);
}

unsigned
dTreeDepth(unsigned node)
{
    unsigned depth = 0;
    while (node > 1) {
        node >>= 1;
        ++depth;
    }
    return depth;
}

} // anonymous namespace

std::uint8_t
dTreeThreshold(unsigned node_index)
{
    return std::uint8_t((node_index * 37u + 11u) % 199u);
}

std::uint64_t
dTree(std::uint64_t s0, std::uint64_t s1, std::uint64_t s2,
      unsigned width)
{
    const std::uint64_t mask = maskBits(width);
    const std::uint64_t s[3] = {s0 & mask, s1 & mask, s2 & mask};
    unsigned node = 1;
    while (dTreeIsInternal(node)) {
        const std::uint64_t input = s[dTreeDepth(node) % 3];
        const std::uint64_t thr = dTreeThreshold(node);
        node = 2 * node + (input > thr ? 1 : 0);
    }
    return node; // leaf id is the class label
}

} // namespace golden

} // namespace printed
