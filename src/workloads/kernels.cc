#include "kernels.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/builder.hh"

namespace printed
{

void
Workload::load(const Poke &poke,
               const std::vector<std::uint64_t> &inputs) const
{
    // Stream inputs bypass memory entirely.
    if (kind == Kernel::Crc8)
        return;
    fatalIf(inputs.size() != inputAddrs.size(),
            "Workload::load: expected " +
            std::to_string(inputAddrs.size()) + " inputs");
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        for (unsigned w = 0; w < wordsPerVar; ++w) {
            const std::uint64_t slice =
                (inputs[i] >> (w * coreWidth)) & maskBits(coreWidth);
            poke(inputAddrs[i] + w, slice);
        }
    }
}

std::vector<std::uint64_t>
Workload::read(const Peek &peek) const
{
    std::vector<std::uint64_t> out;
    out.reserve(outputAddrs.size());
    for (unsigned base : outputAddrs) {
        std::uint64_t v = 0;
        for (unsigned w = 0; w < wordsPerVar; ++w)
            v |= peek(base + w) << (w * coreWidth);
        out.push_back(v & maskBits(dataWidth));
    }
    return out;
}

std::vector<std::uint64_t>
Workload::streamInputs(const std::vector<std::uint64_t> &inputs) const
{
    if (kind != Kernel::Crc8)
        return {};
    return inputs;
}

namespace
{

/** mult: shift-and-add multiply, W iterations. */
Workload
makeMult(AsmBuilder &b)
{
    Workload wl;
    const unsigned p = b.allocVar("product");
    const unsigned m = b.allocVar("multiplicand");
    const unsigned q = b.allocVar("multiplier");
    const unsigned cnt = b.allocWord("count");
    const unsigned c1 = b.allocWord("one");

    b.storeVarImm(p, 0);
    b.storeW({0, cnt}, b.dataWidth());
    b.storeW({0, c1}, 1);
    const std::string loop = b.newLabel("loop");
    const std::string skip = b.newLabel("skip");
    b.placeLabel(loop);
    b.shrVar(q);          // C = multiplier LSB
    b.brNC(skip);
    b.addVar(p, m);       // product += multiplicand
    b.placeLabel(skip);
    b.shlVar(m);          // multiplicand <<= 1
    b.subW({0, cnt}, {0, c1});
    b.brNZ(loop);
    b.halt();

    wl.inputAddrs = {m, q};
    wl.outputAddrs = {p};
    return wl;
}

/** div: restoring division, W iterations; quotient and remainder. */
Workload
makeDiv(AsmBuilder &b)
{
    Workload wl;
    const unsigned q = b.allocVar("dividend_quotient");
    const unsigned d = b.allocVar("divisor");
    const unsigned r = b.allocVar("remainder");
    const unsigned cnt = b.allocWord("count");
    const unsigned c1 = b.allocWord("one");
    const unsigned w = b.wordsPerVar();

    b.storeVarImm(r, 0);
    b.storeW({0, cnt}, b.dataWidth());
    b.storeW({0, c1}, 1);
    const std::string loop = b.newLabel("loop");
    const std::string setbit = b.newLabel("setbit");
    const std::string next = b.newLabel("next");
    b.placeLabel(loop);
    // (R:Q) <<= 1 as one carry chain across both variables.
    b.testW({0, q}, {0, q});
    for (unsigned i = 0; i < w; ++i)
        b.ins("RLC", {0, q + i}, {0, q + i});
    for (unsigned i = 0; i < w; ++i)
        b.ins("RLC", {0, r + i}, {0, r + i});
    b.subVar(r, d);
    b.brC(setbit);        // no borrow: R >= D, quotient bit is 1
    b.addVar(r, d);       // restore
    b.jmp(next);
    b.placeLabel(setbit);
    b.orW({0, q}, {0, c1});
    b.placeLabel(next);
    b.subW({0, cnt}, {0, c1});
    b.brNZ(loop);
    b.halt();

    wl.inputAddrs = {q, d};
    wl.outputAddrs = {q, r};
    return wl;
}

/** inSort: insertion sort of 16 elements via BAR pointers. */
Workload
makeInSort(AsmBuilder &b)
{
    Workload wl;
    const unsigned w = b.wordsPerVar();
    const unsigned arr = b.allocArray("arr", kernelArrayLen);
    const unsigned key = b.allocVar("key");
    const unsigned tmp = b.allocVar("tmp");
    const unsigned scratch = b.allocVar("scratch");
    const unsigned i_ptr = b.allocWord("iPtr");
    const unsigned rd_ptr = b.allocWord("rdPtr");
    const unsigned wr_ptr = b.allocWord("wrPtr");
    const unsigned c_stride = b.allocWord("stride");
    const unsigned c_base = b.allocWord("base");
    const unsigned c_end = b.allocWord("end");

    b.storeW({0, i_ptr}, arr + w);
    b.storeW({0, c_stride}, w);
    b.storeW({0, c_base}, arr);
    b.storeW({0, c_end}, arr + unsigned(kernelArrayLen) * w);

    const std::string outer = b.newLabel("outer");
    const std::string inner = b.newLabel("inner");
    const std::string place = b.newLabel("place");

    b.placeLabel(outer);
    b.setbar(i_ptr, 1);
    b.movVarFromBar(key, 1);          // key = arr[i]
    b.movW({0, rd_ptr}, {0, i_ptr});
    b.subW({0, rd_ptr}, {0, c_stride});
    b.movW({0, wr_ptr}, {0, i_ptr});

    b.placeLabel(inner);
    // Hit the front of the array when the write slot is arr[0]
    // (equality test: rd_ptr may wrap below the array base).
    b.cmpW({0, wr_ptr}, {0, c_base});
    b.brZ(place);
    b.setbar(rd_ptr, 1);
    b.movVarFromBar(tmp, 1);          // tmp = arr[rd]
    if (w == 1) {
        b.cmpW({0, key}, {0, tmp});   // key - tmp, no writeback
    } else {
        b.movVar(scratch, key);
        b.subVar(scratch, tmp);       // key - tmp
    }
    b.brC(place);                     // no borrow: tmp <= key
    b.setbar(wr_ptr, 1);
    b.movVarToBar(1, 0, tmp);         // arr[wr] = tmp (shift right)
    b.subW({0, rd_ptr}, {0, c_stride});
    b.subW({0, wr_ptr}, {0, c_stride});
    b.jmp(inner);

    b.placeLabel(place);
    b.setbar(wr_ptr, 1);
    b.movVarToBar(1, 0, key);         // arr[wr] = key
    b.addW({0, i_ptr}, {0, c_stride});
    b.cmpW({0, i_ptr}, {0, c_end});
    b.brNZ(outer);
    b.halt();

    for (unsigned e = 0; e < kernelArrayLen; ++e) {
        wl.inputAddrs.push_back(arr + e * w);
        wl.outputAddrs.push_back(arr + e * w);
    }
    return wl;
}

/** intAvg: unrolled sum of 16 elements, then divide by 16. */
Workload
makeIntAvg(AsmBuilder &b)
{
    Workload wl;
    const unsigned w = b.wordsPerVar();
    const unsigned arr = b.allocArray("arr", kernelArrayLen);
    const unsigned sum = b.allocVar("sum");

    // Straight-line: no BARs, no conditional branches (the inputs
    // are bounded so the W-bit sum cannot overflow, matching the
    // paper's flag-light intAvg).
    b.movVar(sum, arr);
    for (unsigned e = 1; e < kernelArrayLen; ++e)
        b.addVar(sum, arr + e * w);
    for (int s = 0; s < 4; ++s)
        b.shrVar(sum); // /16
    b.halt();

    for (unsigned e = 0; e < kernelArrayLen; ++e)
        wl.inputAddrs.push_back(arr + e * w);
    wl.outputAddrs = {sum};
    return wl;
}

/** tHold: count elements strictly above a threshold. */
Workload
makeTHold(AsmBuilder &b)
{
    Workload wl;
    const unsigned w = b.wordsPerVar();
    const unsigned arr = b.allocArray("arr", kernelArrayLen);
    const unsigned thr = b.allocVar("threshold");
    const unsigned tmp = b.allocVar("tmp");
    const unsigned count = b.allocVar("count");
    const unsigned ptr = b.allocWord("ptr");
    const unsigned cnt = b.allocWord("cnt");
    const unsigned c1 = b.allocWord("one");
    const unsigned c_stride = b.allocWord("stride");

    b.storeVarImm(count, 0);
    b.storeW({0, ptr}, arr);
    b.storeW({0, cnt}, unsigned(kernelArrayLen));
    b.storeW({0, c1}, 1);
    b.storeW({0, c_stride}, w);

    const std::string loop = b.newLabel("loop");
    const std::string skip = b.newLabel("skip");
    b.placeLabel(loop);
    b.setbar(ptr, 1);
    b.movVar(tmp, thr);
    b.subVarFromBar(tmp, 1);          // thr - arr[i]
    b.brC(skip);                      // no borrow: arr[i] <= thr
    b.addW({0, count}, {0, c1});
    b.placeLabel(skip);
    b.addW({0, ptr}, {0, c_stride});
    b.subW({0, cnt}, {0, c1});
    b.brNZ(loop);
    b.halt();

    for (unsigned e = 0; e < kernelArrayLen; ++e)
        wl.inputAddrs.push_back(arr + e * w);
    wl.inputAddrs.push_back(thr);
    wl.outputAddrs = {count};
    return wl;
}

/** crc8: CRC-8 over a 16-byte memory-mapped stream (8-bit only). */
Workload
makeCrc8(AsmBuilder &b)
{
    fatalIf(b.dataWidth() != 8 || b.coreWidth() != 8,
            "crc8 is an 8-bit kernel (Table 8)");
    Workload wl;
    const unsigned crc = b.allocVar("crc");
    const unsigned stream = b.allocWord("stream_port");
    const unsigned cnt = b.allocWord("byte_count");
    const unsigned bit = b.allocWord("bit_count");
    const unsigned c1 = b.allocWord("one");
    const unsigned poly = b.allocWord("poly_adj");

    b.storeW({0, crc}, 0);
    b.storeW({0, cnt}, unsigned(crcStreamLen));
    b.storeW({0, c1}, 1);
    // RL sets bit0 to the rotated-out MSB (1 on the XOR path), so
    // the polynomial 0x07 is pre-adjusted to 0x06.
    b.storeW({0, poly}, 0x06);

    const std::string byteloop = b.newLabel("byteloop");
    const std::string bitloop = b.newLabel("bitloop");
    const std::string nofix = b.newLabel("nofix");
    b.placeLabel(byteloop);
    b.xorW({0, crc}, {0, stream});    // crc ^= next stream byte
    b.storeW({0, bit}, 8);
    b.placeLabel(bitloop);
    b.ins("RL", {0, crc}, {0, crc});  // C = old MSB
    b.brNC(nofix);
    b.xorW({0, crc}, {0, poly});
    b.placeLabel(nofix);
    b.subW({0, bit}, {0, c1});
    b.brNZ(bitloop);
    b.subW({0, cnt}, {0, c1});
    b.brNZ(byteloop);
    b.halt();

    wl.streamAddr = long(stream);
    wl.outputAddrs = {crc};
    return wl;
}

/** dTree: the 256-instruction hardcoded decision tree. */
Workload
makeDTree(AsmBuilder &b)
{
    fatalIf(b.wordsPerVar() != 1,
            "dTree runs at the core's native width only (Section 8)");
    Workload wl;
    const unsigned s0 = b.allocVar("s0");
    const unsigned s1 = b.allocVar("s1");
    const unsigned s2 = b.allocVar("s2");
    const unsigned tmp = b.allocVar("tmp");
    const unsigned out = b.allocVar("class");
    const unsigned sensors[3] = {s0, s1, s2};

    const std::string end = "tree_end";

    // Emit the tree in DFS pre-order; right children get labels.
    struct Frame
    {
        unsigned node;
        bool needLabel;
    };
    std::vector<Frame> stack = {{1, false}};
    auto is_internal = [](unsigned node) {
        return node < 32 || node < 32 + 19; // see golden.cc
    };
    auto depth_of = [](unsigned node) {
        unsigned d = 0;
        while (node > 1) {
            node >>= 1;
            ++d;
        }
        return d;
    };

    unsigned instructions = 0;
    while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        if (f.needLabel)
            b.placeLabel("node_" + std::to_string(f.node));
        if (is_internal(f.node)) {
            const unsigned input = sensors[depth_of(f.node) % 3];
            b.storeW({0, tmp}, golden::dTreeThreshold(f.node));
            b.cmpW({0, tmp}, {0, input}); // thr - s
            b.branch("node_" + std::to_string(2 * f.node + 1), "C",
                     true); // taken when s > thr
            instructions += 3;
            // Right child needs its label; left child continues
            // inline (push right first so left pops next).
            stack.push_back({2 * f.node + 1, true});
            stack.push_back({2 * f.node, false});
        } else {
            b.storeW({0, out}, f.node); // class label = leaf id
            b.jmp(end);
            instructions += 2;
        }
    }

    // Pad to exactly 256 instruction words (the paper sizes dTree
    // to fill the whole 8-bit PC space).
    while (instructions + 1 < 256) {
        b.testW({0, tmp}, {0, tmp});
        ++instructions;
    }
    b.placeLabel(end);
    b.branch(end, "#0", true); // halt spin
    ++instructions;
    panicIf(instructions != 256, "dTree: expected 256 instructions");

    wl.inputAddrs = {s0, s1, s2};
    wl.outputAddrs = {out};
    return wl;
}

} // anonymous namespace

Workload
makeWorkload(Kernel kind, unsigned data_width, unsigned core_width,
             unsigned bar_count)
{
    AsmBuilder b(data_width, core_width, bar_count);
    Workload wl;
    switch (kind) {
      case Kernel::Mult:   wl = makeMult(b); break;
      case Kernel::Div:    wl = makeDiv(b); break;
      case Kernel::InSort: wl = makeInSort(b); break;
      case Kernel::IntAvg: wl = makeIntAvg(b); break;
      case Kernel::THold:  wl = makeTHold(b); break;
      case Kernel::Crc8:   wl = makeCrc8(b); break;
      case Kernel::DTree:  wl = makeDTree(b); break;
      default:
        fatal("makeWorkload: unknown kernel");
    }
    wl.kind = kind;
    wl.dataWidth = data_width;
    wl.coreWidth = core_width;
    wl.wordsPerVar = b.wordsPerVar();
    wl.dmemWords = b.dmemWords();
    wl.program = b.assemble(std::string(kernelName(kind)) + "_" +
                            std::to_string(data_width) + "_on_" +
                            std::to_string(core_width));
    return wl;
}

std::vector<std::uint64_t>
defaultInputs(Kernel kind, unsigned data_width, std::uint64_t seed)
{
    Rng rng(seed * 7919 + data_width);
    const std::uint64_t mask = maskBits(data_width);
    std::vector<std::uint64_t> in;
    switch (kind) {
      case Kernel::Mult:
        in = {rng.next() & mask, rng.next() & mask};
        break;
      case Kernel::Div: {
        std::uint64_t divisor = rng.next() & mask;
        if (divisor == 0)
            divisor = 3;
        in = {rng.next() & mask, divisor};
        break;
      }
      case Kernel::InSort:
        for (std::size_t i = 0; i < kernelArrayLen; ++i)
            in.push_back(rng.next() & mask);
        break;
      case Kernel::IntAvg:
        // Bounded so the W-bit sum of 16 values cannot overflow.
        for (std::size_t i = 0; i < kernelArrayLen; ++i)
            in.push_back(rng.next() & maskBits(data_width - 4));
        break;
      case Kernel::THold:
        for (std::size_t i = 0; i < kernelArrayLen; ++i)
            in.push_back(rng.next() & mask);
        in.push_back(rng.next() & mask);
        break;
      case Kernel::Crc8:
        for (std::size_t i = 0; i < crcStreamLen; ++i)
            in.push_back(rng.next() & 0xff);
        break;
      case Kernel::DTree:
        in = {rng.next() & mask, rng.next() & mask,
              rng.next() & mask};
        break;
      default:
        fatal("defaultInputs: unknown kernel");
    }
    return in;
}

std::vector<std::uint64_t>
goldenOutputs(Kernel kind, unsigned data_width,
              const std::vector<std::uint64_t> &inputs)
{
    switch (kind) {
      case Kernel::Mult:
        return {golden::mult(inputs.at(0), inputs.at(1), data_width)};
      case Kernel::Div: {
        const auto r =
            golden::div(inputs.at(0), inputs.at(1), data_width);
        return {r.quotient, r.remainder};
      }
      case Kernel::InSort:
        return golden::inSort(inputs);
      case Kernel::IntAvg:
        return {golden::intAvg(inputs, data_width)};
      case Kernel::THold: {
        std::vector<std::uint64_t> data(inputs.begin(),
                                        inputs.end() - 1);
        return {golden::tHold(data, inputs.back())};
      }
      case Kernel::Crc8: {
        std::vector<std::uint8_t> bytes;
        for (std::uint64_t v : inputs)
            bytes.push_back(std::uint8_t(v));
        return {golden::crc8(bytes)};
      }
      case Kernel::DTree:
        return {golden::dTree(inputs.at(0), inputs.at(1),
                              inputs.at(2), data_width)};
      default:
        fatal("goldenOutputs: unknown kernel");
    }
}

std::vector<KernelPoint>
paperKernelPoints()
{
    std::vector<KernelPoint> points;
    for (Kernel k : {Kernel::Mult, Kernel::Div, Kernel::InSort,
                     Kernel::IntAvg, Kernel::THold, Kernel::DTree}) {
        for (unsigned w : {8u, 16u, 32u})
            points.push_back({k, w});
    }
    points.push_back({Kernel::Crc8, 8});
    return points;
}

} // namespace printed
