/**
 * @file
 * Golden (reference) implementations of the paper's seven
 * benchmarks (Section 8; multiply, divide, inSort, intAvg,
 * threshold, CRC8 from Zhai et al. [121], plus the paper's new
 * decision tree). Every TP-ISA program and every legacy-ISA code
 * sequence in this repository is validated against these.
 */

#ifndef PRINTED_WORKLOADS_GOLDEN_HH
#define PRINTED_WORKLOADS_GOLDEN_HH

#include <cstdint>
#include <vector>

namespace printed
{

/** The paper's benchmark suite. */
enum class Kernel
{
    Mult,   ///< W-bit multiply (shift-and-add)
    Div,    ///< W-bit divide (restoring), quotient + remainder
    InSort, ///< insertion sort of 16 W-bit words
    IntAvg, ///< average of 16 W-bit words (sum bounded to W bits)
    THold,  ///< count of 16 W-bit words strictly above a threshold
    Crc8,   ///< CRC-8 (poly 0x07) over a 16-byte stream
    DTree,  ///< 3-input decision tree, 256 static instructions
    NumKernels
};

constexpr unsigned numKernels =
    static_cast<unsigned>(Kernel::NumKernels);

/** Display name, e.g. "mult", "inSort". */
const char *kernelName(Kernel k);

/** Array length used by the array kernels (the paper uses 16). */
constexpr std::size_t kernelArrayLen = 16;

/** CRC stream length in bytes (the paper uses 16). */
constexpr std::size_t crcStreamLen = 16;

namespace golden
{

/** a * b mod 2^width. */
std::uint64_t mult(std::uint64_t a, std::uint64_t b, unsigned width);

/** Quotient and remainder of a / b (b != 0). */
struct DivResult
{
    std::uint64_t quotient = 0;
    std::uint64_t remainder = 0;
};
DivResult div(std::uint64_t a, std::uint64_t b, unsigned width);

/** Ascending insertion sort. */
std::vector<std::uint64_t> inSort(std::vector<std::uint64_t> data);

/** Floor average (sum must fit in `width` bits, as in the paper's
 *  flag-free straight-line version). */
std::uint64_t intAvg(const std::vector<std::uint64_t> &data,
                     unsigned width);

/** Count of elements strictly greater than the threshold. */
std::uint64_t tHold(const std::vector<std::uint64_t> &data,
                    std::uint64_t threshold);

/** CRC-8 with polynomial x^8 + x^2 + x + 1 (0x07), init 0. */
std::uint8_t crc8(const std::vector<std::uint8_t> &stream);

/**
 * The decision-tree classifier: three sensor inputs are pushed
 * through a depth-6 threshold tree (thresholds hardcoded, exactly
 * as the paper embeds them in the instruction stream).
 * @return the leaf class id.
 */
std::uint64_t dTree(std::uint64_t s0, std::uint64_t s1,
                    std::uint64_t s2, unsigned width);

/**
 * The dTree threshold for a node index (deterministic; shared by
 * the golden model and the TP-ISA program generator so both walk
 * the same tree).
 */
std::uint8_t dTreeThreshold(unsigned node_index);

} // namespace golden

} // namespace printed

#endif // PRINTED_WORKLOADS_GOLDEN_HH
