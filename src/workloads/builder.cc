#include "builder.hh"

#include "common/bits.hh"
#include "common/logging.hh"
#include "isa/assembler.hh"

namespace printed
{

AsmBuilder::AsmBuilder(unsigned data_width, unsigned core_width,
                       unsigned bar_count)
    : dataWidth_(data_width), coreWidth_(core_width),
      barCount_(bar_count)
{
    fatalIf(core_width == 0 || data_width % core_width != 0,
            "AsmBuilder: core width must divide data width");
    words_ = data_width / core_width;
    fatalIf(words_ == 0 || words_ > 8,
            "AsmBuilder: at most 8 words per variable");
}

IsaConfig
AsmBuilder::isaConfig() const
{
    IsaConfig cfg;
    cfg.datawidth = coreWidth_;
    cfg.barCount = barCount_;
    return cfg;
}

unsigned
AsmBuilder::allocVar(const std::string &name)
{
    const unsigned addr = nextAddr_;
    nextAddr_ += words_;
    comment("var " + name + " @ " + std::to_string(addr) + " (" +
            std::to_string(words_) + " words)");
    return addr;
}

unsigned
AsmBuilder::allocWord(const std::string &name)
{
    const unsigned addr = nextAddr_;
    nextAddr_ += 1;
    comment("word " + name + " @ " + std::to_string(addr));
    return addr;
}

unsigned
AsmBuilder::allocArray(const std::string &name, std::size_t elems)
{
    const unsigned addr = nextAddr_;
    nextAddr_ += unsigned(elems) * words_;
    comment("array " + name + "[" + std::to_string(elems) + "] @ " +
            std::to_string(addr));
    return addr;
}

std::string
AsmBuilder::newLabel(const std::string &hint)
{
    return hint + "_" + std::to_string(labelCounter_++);
}

void
AsmBuilder::placeLabel(const std::string &label)
{
    src_ << label << ":\n";
}

void
AsmBuilder::branch(const std::string &label, const std::string &mask,
                   bool negated)
{
    src_ << "    " << (negated ? "BRN" : "BR") << " " << label << ", "
         << mask << "\n";
}

void
AsmBuilder::halt()
{
    const std::string label = newLabel("halt");
    placeLabel(label);
    branch(label, "#0", true); // BRN with empty mask: always taken
}

std::string
AsmBuilder::opText(AsmOp op) const
{
    if (op.bar == 0)
        return "[" + std::to_string(op.off) + "]";
    return "[b" + std::to_string(op.bar) + "+" +
           std::to_string(op.off) + "]";
}

void
AsmBuilder::ins(const std::string &mnemonic, AsmOp a, AsmOp b)
{
    src_ << "    " << mnemonic << " " << opText(a) << ", "
         << opText(b) << "\n";
}

void
AsmBuilder::storeW(AsmOp a, unsigned imm)
{
    fatalIf(imm > 255, "storeW: immediate exceeds 8 bits");
    src_ << "    STORE " << opText(a) << ", #" << imm << "\n";
}

void
AsmBuilder::movW(AsmOp dst, AsmOp src)
{
    storeW(dst, 0);
    orW(dst, src);
}

void
AsmBuilder::setbar(unsigned ptr_word, unsigned index)
{
    src_ << "    SETBAR [" << ptr_word << "], #" << index << "\n";
}

void
AsmBuilder::comment(const std::string &text)
{
    src_ << "    ; " << text << "\n";
}

void
AsmBuilder::storeVarImm(unsigned var, std::uint64_t value)
{
    for (unsigned w = 0; w < words_; ++w) {
        const std::uint64_t slice =
            (value >> (w * coreWidth_)) &
            maskBits(std::min(coreWidth_, 8u));
        // Word slices wider than 8 bits can only be STOREd when the
        // upper bits are zero.
        const std::uint64_t full =
            (value >> (w * coreWidth_)) & maskBits(coreWidth_);
        fatalIf(full > 255,
                "storeVarImm: word slice exceeds the 8-bit STORE "
                "immediate");
        storeW({0, var + w}, unsigned(slice));
    }
}

void
AsmBuilder::addVar(unsigned a, unsigned b)
{
    for (unsigned w = 0; w < words_; ++w)
        ins(w == 0 ? "ADD" : "ADC", {0, a + w}, {0, b + w});
}

void
AsmBuilder::subVar(unsigned a, unsigned b)
{
    for (unsigned w = 0; w < words_; ++w)
        ins(w == 0 ? "SUB" : "SBB", {0, a + w}, {0, b + w});
}

void
AsmBuilder::subVarFromBar(unsigned a, unsigned bar, unsigned off)
{
    for (unsigned w = 0; w < words_; ++w)
        ins(w == 0 ? "SUB" : "SBB", {0, a + w}, {bar, off + w});
}

void
AsmBuilder::addVarFromBar(unsigned a, unsigned bar, unsigned off)
{
    for (unsigned w = 0; w < words_; ++w)
        ins(w == 0 ? "ADD" : "ADC", {0, a + w}, {bar, off + w});
}

void
AsmBuilder::movVar(unsigned dst, unsigned src)
{
    for (unsigned w = 0; w < words_; ++w)
        movW({0, dst + w}, {0, src + w});
}

void
AsmBuilder::movVarFromBar(unsigned dst, unsigned bar, unsigned off)
{
    for (unsigned w = 0; w < words_; ++w)
        movW({0, dst + w}, {bar, off + w});
}

void
AsmBuilder::movVarToBar(unsigned bar, unsigned off, unsigned src)
{
    for (unsigned w = 0; w < words_; ++w)
        movW({bar, off + w}, {0, src + w});
}

void
AsmBuilder::shlVar(unsigned var)
{
    // TEST clears C; RLC low-to-high shifts zero into the LSB and
    // chains the carries (the paper's coalescing idiom).
    testW({0, var}, {0, var});
    for (unsigned w = 0; w < words_; ++w)
        ins("RLC", {0, var + w}, {0, var + w});
}

void
AsmBuilder::shrVar(unsigned var)
{
    testW({0, var}, {0, var});
    for (unsigned w = words_; w-- > 0;)
        ins("RRC", {0, var + w}, {0, var + w});
}

Program
AsmBuilder::assemble(const std::string &name) const
{
    return printed::assemble(source(), isaConfig(), name);
}

} // namespace printed
