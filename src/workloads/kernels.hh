/**
 * @file
 * The paper's benchmark programs as TP-ISA workloads.
 *
 * makeWorkload() instantiates a kernel for a (data width, core
 * width) pair: equal widths give the native program, and a wider
 * data width on a narrower core emits the data-coalescing sequences
 * of Section 5.1 (e.g. mult16 on an 8-bit core). Each Workload
 * carries its program, memory budget, and the I/O map needed to run
 * it on the instruction-set simulator or the gate-level cosim.
 */

#ifndef PRINTED_WORKLOADS_KERNELS_HH
#define PRINTED_WORKLOADS_KERNELS_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "isa/program.hh"
#include "workloads/golden.hh"

namespace printed
{

/** A kernel instantiated for one (W, D) pair. */
struct Workload
{
    Kernel kind = Kernel::Mult;
    unsigned dataWidth = 8;  ///< logical data width W
    unsigned coreWidth = 8;  ///< target core datawidth D
    unsigned wordsPerVar = 1;

    Program program;
    std::size_t dmemWords = 0;

    /** Base addresses of the logical inputs, in input order. */
    std::vector<unsigned> inputAddrs;

    /** Base addresses of the logical outputs, in output order. */
    std::vector<unsigned> outputAddrs;

    /** Stream-port address (crc8), or -1 when unused. */
    long streamAddr = -1;

    /** Writer callback: (word address, word value). */
    using Poke = std::function<void(std::size_t, std::uint64_t)>;

    /** Reader callback: word address -> word value. */
    using Peek = std::function<std::uint64_t(std::size_t)>;

    /**
     * Split logical input values into core words and write them.
     * Stream inputs (crc8) are not written here - pass them to the
     * machine's stream port instead.
     */
    void load(const Poke &poke,
              const std::vector<std::uint64_t> &inputs) const;

    /** Reassemble the logical outputs from core words. */
    std::vector<std::uint64_t> read(const Peek &peek) const;

    /** Values that go to the stream port (crc8), from inputs. */
    std::vector<std::uint64_t>
    streamInputs(const std::vector<std::uint64_t> &inputs) const;
};

/**
 * Build a kernel program.
 * @param kind which benchmark
 * @param data_width logical width (8/16/32; crc8 is 8-bit only,
 *        dTree requires data_width == core_width)
 * @param core_width target core datawidth (must divide data_width)
 * @param bar_count ISA BAR count (default 2, as the paper's
 *        benchmarks were originally written for the 2-BAR variant)
 */
Workload makeWorkload(Kernel kind, unsigned data_width,
                      unsigned core_width, unsigned bar_count = 2);

/** Deterministic default inputs for a kernel at a data width. */
std::vector<std::uint64_t> defaultInputs(Kernel kind,
                                         unsigned data_width,
                                         std::uint64_t seed = 1);

/** Golden outputs for the given inputs. */
std::vector<std::uint64_t>
goldenOutputs(Kernel kind, unsigned data_width,
              const std::vector<std::uint64_t> &inputs);

/** All (kernel, width) points of Figure 8 / Table 8: every kernel
 *  at 8/16/32 bits except crc8 (8-bit only); dTree at the core's
 *  native width. */
struct KernelPoint
{
    Kernel kind;
    unsigned dataWidth;
};
std::vector<KernelPoint> paperKernelPoints();

} // namespace printed

#endif // PRINTED_WORKLOADS_KERNELS_HH
