/**
 * @file
 * TP-ISA assembly builder with data coalescing.
 *
 * Kernels are written once against this builder and parameterized
 * by (data width W, core width D). When W > D a logical variable
 * spans W/D consecutive memory words (little-endian) and the
 * builder emits the paper's coalescing sequences: ADD/ADC chains,
 * SUB/SBB chains, and carry-linked RLC/RRC shifts (Section 5.1).
 */

#ifndef PRINTED_WORKLOADS_BUILDER_HH
#define PRINTED_WORKLOADS_BUILDER_HH

#include <cstdint>
#include <sstream>
#include <string>

#include "isa/program.hh"

namespace printed
{

/** An operand: either an absolute word address (bar == 0 with the
 *  address as offset) or a BAR-relative offset. */
struct AsmOp
{
    unsigned bar = 0;
    unsigned off = 0;
};

/** Emit TP-ISA assembly for one (W, D) kernel instantiation. */
class AsmBuilder
{
  public:
    /**
     * @param data_width logical data width W (4/8/16/32)
     * @param core_width core datawidth D (divides W)
     * @param bar_count ISA BAR count (2 or 4; includes BAR[0])
     */
    AsmBuilder(unsigned data_width, unsigned core_width,
               unsigned bar_count = 2);

    /** Words per logical variable (W / D). */
    unsigned wordsPerVar() const { return words_; }

    unsigned dataWidth() const { return dataWidth_; }
    unsigned coreWidth() const { return coreWidth_; }

    // ------------------------------------------------------------
    // Data layout
    // ------------------------------------------------------------

    /** Allocate one logical variable; returns its base address. */
    unsigned allocVar(const std::string &name);

    /** Allocate a single memory word (loop counters, pointers). */
    unsigned allocWord(const std::string &name);

    /** Allocate an array of `elems` variables; returns the base. */
    unsigned allocArray(const std::string &name, std::size_t elems);

    /** Data-memory high-water mark (words). */
    std::size_t dmemWords() const { return nextAddr_; }

    // ------------------------------------------------------------
    // Labels / control flow
    // ------------------------------------------------------------

    std::string newLabel(const std::string &hint);
    void placeLabel(const std::string &label);

    void branch(const std::string &label, const std::string &mask,
                bool negated);
    void brZ(const std::string &l) { branch(l, "Z", false); }
    void brNZ(const std::string &l) { branch(l, "Z", true); }
    void brC(const std::string &l) { branch(l, "C", false); }
    void brNC(const std::string &l) { branch(l, "C", true); }
    void brS(const std::string &l) { branch(l, "S", false); }
    void jmp(const std::string &l) { branch(l, "#0", true); }

    /** Idle spin: the workload halt convention. */
    void halt();

    // ------------------------------------------------------------
    // Single-word operations
    // ------------------------------------------------------------

    void ins(const std::string &mnemonic, AsmOp a, AsmOp b);
    void storeW(AsmOp a, unsigned imm);
    void addW(AsmOp a, AsmOp b) { ins("ADD", a, b); }
    void subW(AsmOp a, AsmOp b) { ins("SUB", a, b); }
    void cmpW(AsmOp a, AsmOp b) { ins("CMP", a, b); }
    void andW(AsmOp a, AsmOp b) { ins("AND", a, b); }
    void orW(AsmOp a, AsmOp b) { ins("OR", a, b); }
    void xorW(AsmOp a, AsmOp b) { ins("XOR", a, b); }
    void testW(AsmOp a, AsmOp b) { ins("TEST", a, b); }
    /** dst = src | 0 (two instructions: STORE 0 then OR). */
    void movW(AsmOp dst, AsmOp src);

    /** BAR[index] = mem[ptr_word]. */
    void setbar(unsigned ptr_word, unsigned index);

    void comment(const std::string &text);

    // ------------------------------------------------------------
    // Multi-word (coalesced) variable operations
    // ------------------------------------------------------------

    /**
     * Store a constant into a variable. Every D-bit word slice of
     * the value must fit the 8-bit STORE immediate.
     */
    void storeVarImm(unsigned var, std::uint64_t value);

    /** a += b via ADD/ADC chain. */
    void addVar(unsigned a, unsigned b);

    /** a -= b via SUB/SBB chain (C = no-borrow afterwards). */
    void subVar(unsigned a, unsigned b);

    /** a -= BAR-relative variable (element access). */
    void subVarFromBar(unsigned a, unsigned bar, unsigned off = 0);

    /** a += BAR-relative variable. */
    void addVarFromBar(unsigned a, unsigned bar, unsigned off = 0);

    /** dst = src (STORE 0 + OR per word). */
    void movVar(unsigned dst, unsigned src);

    /** dst = BAR-relative variable. */
    void movVarFromBar(unsigned dst, unsigned bar, unsigned off = 0);

    /** BAR-relative variable = src. */
    void movVarToBar(unsigned bar, unsigned off, unsigned src);

    /** Logical shift left by one across all words (clears carry
     *  first with TEST, then RLC low to high; C = bit shifted out). */
    void shlVar(unsigned var);

    /** Logical shift right by one (TEST, then RRC high to low;
     *  C = original LSB afterwards - the multiply loop hinges on
     *  this). */
    void shrVar(unsigned var);

    // ------------------------------------------------------------
    // Output
    // ------------------------------------------------------------

    /** Accumulated assembly text. */
    std::string source() const { return src_.str(); }

    /** Assemble with the matching IsaConfig. */
    Program assemble(const std::string &name) const;

    /** The ISA configuration programs built here target. */
    IsaConfig isaConfig() const;

  private:
    std::string opText(AsmOp op) const;

    unsigned dataWidth_;
    unsigned coreWidth_;
    unsigned barCount_;
    unsigned words_;
    unsigned nextAddr_ = 0;
    unsigned labelCounter_ = 0;
    std::ostringstream src_;
};

} // namespace printed

#endif // PRINTED_WORKLOADS_BUILDER_HH
