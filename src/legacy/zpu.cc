#include "zpu.hh"

#include <map>

#include "common/bits.hh"
#include "common/logging.hh"
#include "legacy/batch_iss.hh"

namespace printed::legacy
{

namespace
{

// One-byte opcodes (ZPU encoding space).
enum Op : std::uint8_t
{
    BREAK = 0x00,
    POPPC = 0x04,
    ADD = 0x05,
    AND = 0x06,
    OR = 0x07,
    LOAD = 0x08,
    NOT = 0x09,
    FLIP = 0x0A,
    NOP = 0x0B,
    STORE = 0x0C,
    // EMULATE space (0x20..0x3F): taxed with zpuEmulatePenalty.
    ULESSTHAN = 0x25,
    LSHIFTRIGHT = 0x2A,
    EQ = 0x2E,
    SUB = 0x32,
    XOR = 0x33,
    NEQBRANCH = 0x38,
    // LOADSP 0 (dup).
    LOADSP0 = 0x60,
    // IM: 0x80 | 7-bit payload.
};

bool
isEmulate(std::uint8_t op)
{
    return op >= 0x20 && op < 0x40;
}

// Memory map (byte addresses, word-aligned): virtual registers at
// 0, data array at 0x80, stack grows down from the top.
constexpr std::uint32_t dataBase = 0x80;
constexpr std::uint32_t ramBytes = 0x1000;

class Compiler
{
  public:
    explicit Compiler(const IrProgram &prog) : prog_(prog)
    {
        fatalIf(prog.regCount * 4 > dataBase,
                "zpu: too many virtual registers");
        for (const IrInst &in : prog_.code)
            lower(in);
        patch();
    }

    std::vector<std::uint8_t> take() { return std::move(code_); }

  private:
    std::uint32_t slot(Reg r) const { return r * 4; }

    void byte(std::uint8_t b) { code_.push_back(b); }

    /** Shortest IM chain for a value. */
    void
    im(std::uint32_t value)
    {
        // Collect 7-bit groups, most significant first.
        std::vector<std::uint8_t> groups;
        std::int64_t v = std::int64_t(std::int32_t(value));
        while (true) {
            groups.insert(groups.begin(),
                          std::uint8_t(v & 0x7f));
            v >>= 7;
            // Sign-extension of the first IM reproduces the rest.
            const std::int64_t sign =
                (groups.front() & 0x40) ? -1 : 0;
            if (v == sign)
                break;
        }
        for (std::uint8_t g : groups)
            byte(std::uint8_t(0x80 | g));
    }

    /** Fixed-width 3-byte IM chain, backpatched with a label. */
    void
    imLabel(const std::string &label)
    {
        fixups_.emplace_back(code_.size(), label);
        byte(0x80);
        byte(0x80);
        byte(0x80);
    }

    void
    patch()
    {
        for (const auto &[pos, label] : fixups_) {
            auto it = labels_.find(label);
            fatalIf(it == labels_.end(),
                    "zpu: undefined label " + label);
            const std::uint32_t t = std::uint32_t(it->second);
            fatalIf(t >= (1u << 21), "zpu: target out of IM range");
            code_[pos] = std::uint8_t(0x80 | ((t >> 14) & 0x7f));
            code_[pos + 1] = std::uint8_t(0x80 | ((t >> 7) & 0x7f));
            code_[pos + 2] = std::uint8_t(0x80 | (t & 0x7f));
        }
    }

    void
    pushReg(Reg r)
    {
        im(slot(r));
        byte(LOAD);
    }

    void
    popToReg(Reg r)
    {
        im(slot(r));
        byte(STORE);
    }

    /** Mask the top of stack to the IR width (no-op for 32-bit). */
    void
    maskTop()
    {
        if (prog_.width == 32)
            return;
        im(std::uint32_t(maskBits(prog_.width)));
        byte(AND);
    }

    void
    binop(std::uint8_t op, Reg dst, Reg src, bool needs_mask)
    {
        pushReg(dst);
        pushReg(src);
        byte(op);
        if (needs_mask)
            maskTop();
        popToReg(dst);
    }

    void
    lower(const IrInst &in)
    {
        switch (in.op) {
          case IrOp::Li:
            im(std::uint32_t(in.imm));
            byte(NOP); // break the IM chain before the slot address
            popToReg(in.dst);
            break;
          case IrOp::Mov:
            pushReg(in.src);
            popToReg(in.dst);
            break;
          case IrOp::Add: binop(ADD, in.dst, in.src, true); break;
          case IrOp::Sub: binop(SUB, in.dst, in.src, true); break;
          case IrOp::And: binop(AND, in.dst, in.src, false); break;
          case IrOp::Or: binop(OR, in.dst, in.src, false); break;
          case IrOp::Xor: binop(XOR, in.dst, in.src, false); break;
          case IrOp::Shl:
            pushReg(in.dst);
            byte(LOADSP0); // dup
            byte(ADD);
            maskTop();
            popToReg(in.dst);
            break;
          case IrOp::Shr:
            pushReg(in.dst);
            im(1);
            byte(LSHIFTRIGHT);
            popToReg(in.dst);
            break;
          case IrOp::Ld:
          case IrOp::St: {
            if (in.op == IrOp::St)
                pushReg(in.dst); // value under the address
            // byte address = dataBase + idx * 4
            pushReg(in.src);
            byte(LOADSP0);
            byte(ADD);
            byte(LOADSP0);
            byte(ADD);
            im(dataBase);
            byte(ADD);
            if (in.op == IrOp::Ld) {
                byte(LOAD);
                popToReg(in.dst);
            } else {
                byte(STORE);
            }
            break;
          }
          case IrOp::Label:
            labels_[in.label] = code_.size();
            break;
          case IrOp::Jmp:
            imLabel(in.label);
            byte(POPPC);
            break;
          case IrOp::Beqz:
            pushReg(in.dst);
            im(0);
            byte(EQ);
            imLabel(in.label);
            byte(NEQBRANCH);
            break;
          case IrOp::Bnez:
            pushReg(in.dst);
            imLabel(in.label);
            byte(NEQBRANCH);
            break;
          case IrOp::Bltu:
            pushReg(in.dst);
            pushReg(in.src);
            byte(ULESSTHAN);
            imLabel(in.label);
            byte(NEQBRANCH);
            break;
          case IrOp::Bgeu:
            pushReg(in.dst);
            pushReg(in.src);
            byte(ULESSTHAN);
            im(0);
            byte(EQ);
            imLabel(in.label);
            byte(NEQBRANCH);
            break;
          case IrOp::Halt:
            byte(BREAK);
            break;
        }
    }

    const IrProgram &prog_;
    std::vector<std::uint8_t> code_;
    std::map<std::string, std::size_t> labels_;
    std::vector<std::pair<std::size_t, std::string>> fixups_;
};

/**
 * ZPU core state + interpreter. Scalar oracle of the batch engine:
 * both engines share the trap contract (PC outside the code image
 * kills the machine before the fetch; any access to a misaligned
 * or out-of-range RAM word, or an unimplemented opcode, kills it
 * after the instruction was counted and charged - ZPU counts and
 * charges at fetch) and must agree bit for bit.
 */
class Machine
{
  public:
    explicit Machine(std::vector<std::uint8_t> code)
        : code_(std::move(code)), ram_(ramBytes / 4, 0),
          sp_(ramBytes)
    {}

    /** Unchecked accessors for the run harness's I/O words. */
    std::uint32_t
    ramWord(std::uint32_t byte_addr) const
    {
        panicIf(byte_addr % 4 || byte_addr / 4 >= ram_.size(),
                "zpu: bad word address");
        return ram_[byte_addr / 4];
    }

    void
    setRamWord(std::uint32_t byte_addr, std::uint32_t v)
    {
        panicIf(byte_addr % 4 || byte_addr / 4 >= ram_.size(),
                "zpu: bad word address");
        ram_[byte_addr / 4] = v;
    }

    MachineStatus
    run(std::uint64_t max_steps, std::uint64_t &instructions,
        std::uint64_t &cycles)
    {
        instructions = 0;
        cycles = 0;
        while (!halted_) {
            if (instructions >= max_steps)
                return MachineStatus::OutOfBudget;
            if (pc_ >= code_.size())
                return MachineStatus::Killed;
            const std::uint8_t op = code_[pc_++];
            ++instructions;
            cycles += zpuBaseCpi;
            if (isEmulate(op))
                cycles += zpuEmulatePenalty;

            if (op & 0x80) { // IM
                const std::uint32_t payload = op & 0x7f;
                if (idim_) {
                    push((pop() << 7) | payload);
                } else {
                    push(std::uint32_t(signExtend(payload, 7)));
                }
                idim_ = true;
                if (dead_)
                    return MachineStatus::Killed;
                continue;
            }
            idim_ = false;

            switch (op) {
              case BREAK: halted_ = true; break;
              case NOP: break;
              case POPPC: pc_ = pop(); break;
              case ADD: { const auto b = pop(); push(pop() + b);
                break; }
              case SUB: { const auto b = pop(); push(pop() - b);
                break; }
              case AND: { const auto b = pop(); push(pop() & b);
                break; }
              case OR: { const auto b = pop(); push(pop() | b);
                break; }
              case XOR: { const auto b = pop(); push(pop() ^ b);
                break; }
              case NOT: push(~pop()); break;
              case FLIP: {
                std::uint32_t v = pop(), r = 0;
                for (int i = 0; i < 32; ++i)
                    r |= ((v >> i) & 1) << (31 - i);
                push(r);
                break;
              }
              case LOAD: push(rd(pop())); break;
              case STORE: {
                const auto addr = pop();
                wr(addr, pop());
                break;
              }
              case ULESSTHAN: {
                const auto b = pop();
                const auto a = pop();
                push(a < b ? 1 : 0);
                break;
              }
              case EQ: {
                const auto b = pop();
                push(pop() == b ? 1 : 0);
                break;
              }
              case LSHIFTRIGHT: {
                const auto amount = pop() & 31;
                push(pop() >> amount);
                break;
              }
              case NEQBRANCH: {
                const auto target = pop();
                const auto cond = pop();
                if (cond != 0)
                    pc_ = target;
                break;
              }
              case LOADSP0:
                push(rd(sp_));
                break;
              default:
                return MachineStatus::Killed;
            }
            if (dead_)
                return MachineStatus::Killed;
        }
        return MachineStatus::Halted;
    }

  private:
    /**
     * Checked word access: a bad address marks the machine dead
     * and reads as zero; the instruction still runs to completion
     * (later valid accesses land) before the kill is observed -
     * the batch engine replays this sequence exactly.
     */
    std::uint32_t
    rd(std::uint32_t byte_addr)
    {
        if (byte_addr % 4 || byte_addr / 4 >= ram_.size()) {
            dead_ = true;
            return 0;
        }
        return ram_[byte_addr / 4];
    }

    void
    wr(std::uint32_t byte_addr, std::uint32_t v)
    {
        if (byte_addr % 4 || byte_addr / 4 >= ram_.size()) {
            dead_ = true;
            return;
        }
        ram_[byte_addr / 4] = v;
    }

    void
    push(std::uint32_t v)
    {
        sp_ -= 4;
        wr(sp_, v);
    }

    std::uint32_t
    pop()
    {
        const std::uint32_t v = rd(sp_);
        sp_ += 4;
        return v;
    }

    std::vector<std::uint8_t> code_;
    std::vector<std::uint32_t> ram_;
    std::uint32_t sp_;
    std::uint32_t pc_ = 0;
    bool halted_ = false;
    bool idim_ = false;
    bool dead_ = false;
};

/**
 * Struct-of-arrays ZPU batch engine: one shared read-only code
 * image, per-machine RAM/SP/PC/IM-chain columns. Mirrors the
 * scalar Machine bit for bit, including the dead-flag semantics
 * of bad accesses mid-instruction.
 */
class BatchZpu
{
  public:
    BatchZpu(std::vector<std::uint8_t> code, std::size_t machines)
        : code_(std::move(code)),
          ram_(machines * ramWords, 0),
          sp_(machines, ramBytes),
          pc_(machines, 0),
          idim_(machines, 0),
          status_(machines, MachineStatus::Halted),
          insns_(machines, 0),
          cycles_(machines, 0)
    {
        predecode();
    }

    std::uint32_t *ram(std::size_t m) { return &ram_[m * ramWords]; }
    MachineStatus status(std::size_t m) const { return status_[m]; }
    std::uint64_t instructions(std::size_t m) const { return insns_[m]; }
    std::uint64_t cycles(std::size_t m) const { return cycles_[m]; }

    /**
     * Lock-step rounds of up to issQuantum instructions per
     * still-active machine (quantum-invariant — machines never
     * interact; the quantum keeps one machine's SP/PC/IM-chain and
     * counters in locals and its RAM hot in cache).
     */
    void
    runBlock(std::size_t begin, std::size_t end,
             std::uint64_t max_steps)
    {
        std::uint64_t active = 0;
        for (std::size_t m = begin; m < end; ++m)
            active |= std::uint64_t(1) << (m - begin);
        while (active) {
            for (std::uint64_t w = active; w; w &= w - 1) {
                const unsigned b =
                    unsigned(__builtin_ctzll(w));
                const int st = runQuantum(begin + b, max_steps);
                if (st >= 0) {
                    status_[begin + b] = MachineStatus(st);
                    active &= ~(std::uint64_t(1) << b);
                }
            }
        }
    }

  private:
    static constexpr std::size_t ramWords = ramBytes / 4;

    /**
     * Per-byte predecode record for the shared image. An address
     * whose byte starts an IM chain folds the *whole* maximal run
     * from that address into one immediate (the fold an empty-chain
     * entry would compute — a branch target mid-run simply uses its
     * own record); other bytes carry the opcode and its full cycle
     * charge so dispatch skips the EMULATE test.
     */
    struct ZDec
    {
        std::uint8_t op;  ///< raw opcode; 0x80 flags an IM run
        std::uint8_t len; ///< bytes (= instructions) in the run
        std::uint32_t imm; ///< folded IM value (empty-chain entry)
        std::uint32_t cyc; ///< cycles for one non-IM dispatch
    };

    void
    predecode()
    {
        dec_.resize(code_.size());
        for (std::size_t a = 0; a < code_.size(); ++a) {
            const std::uint8_t op = code_[a];
            if (op & 0x80) {
                std::size_t end = a + 1;
                while (end < code_.size() &&
                       (code_[end] & 0x80) && end - a < 255)
                    ++end;
                std::uint32_t v = std::uint32_t(
                    signExtend(op & 0x7f, 7));
                for (std::size_t i = a + 1; i < end; ++i)
                    v = (v << 7) | (code_[i] & 0x7f);
                dec_[a] = {0x80, std::uint8_t(end - a), v,
                           zpuBaseCpi};
            } else {
                dec_[a] = {op, 1, 0,
                           zpuBaseCpi + (isEmulate(op)
                                             ? zpuEmulatePenalty
                                             : 0)};
            }
        }
    }

    /**
     * Up to issQuantum scalar-oracle iterations for machine m: -1
     * while still running, otherwise its final MachineStatus. SP is
     * always word-aligned (only push/pop move it, by whole words),
     * so the quantum tracks it in word units and the stack accesses
     * drop the alignment test the scalar rd/wr perform.
     */
    int
    runQuantum(std::size_t m, std::uint64_t max_steps)
    {
        std::uint32_t *const ram = &ram_[m * ramWords];
        const std::uint8_t *const code = code_.data();
        const ZDec *const dec = dec_.data();
        const std::size_t codeSize = code_.size();
        std::uint32_t spw = sp_[m] >> 2, pc = pc_[m];
        bool idim = idim_[m] != 0;
        std::uint64_t insns = insns_[m], cycles = cycles_[m];

        int result = -1;
        for (unsigned q = 0; q < issQuantum && result < 0; ++q) {
            if (insns >= max_steps) {
                result = int(MachineStatus::OutOfBudget);
                break;
            }
            if (pc >= codeSize) {
                result = int(MachineStatus::Killed);
                break;
            }
            const ZDec d = dec[pc];

            bool dead = false;
            const auto rd = [&](std::uint32_t a) -> std::uint32_t {
                if (a % 4 || a / 4 >= ramWords) {
                    dead = true;
                    return 0;
                }
                return ram[a / 4];
            };
            const auto wr = [&](std::uint32_t a, std::uint32_t v) {
                if (a % 4 || a / 4 >= ramWords) {
                    dead = true;
                    return;
                }
                ram[a / 4] = v;
            };
            const auto push = [&](std::uint32_t v) {
                --spw;
                if (spw >= ramWords)
                    dead = true;
                else
                    ram[spw] = v;
            };
            const auto pop = [&]() -> std::uint32_t {
                std::uint32_t v = 0;
                if (spw >= ramWords)
                    dead = true;
                else
                    v = ram[spw];
                ++spw;
                return v;
            };

            if (d.op & 0x80) { // IM chain
                if (!idim && insns + d.len <= max_steps) {
                    // Entered with an empty chain and inside the
                    // step budget: one push of the folded value
                    // retires the whole run. A trapping push kills
                    // on the run's first byte, exactly like the
                    // byte-wise engine.
                    push(d.imm);
                    idim = true;
                    const unsigned n = dead ? 1 : d.len;
                    pc += n;
                    insns += n;
                    cycles += std::uint64_t(zpuBaseCpi) * n;
                    if (dead)
                        result = int(MachineStatus::Killed);
                    continue;
                }
                // Mid-chain entry or the budget expires inside the
                // run: byte-wise, the exact scalar sequence.
                const std::uint32_t payload = code[pc] & 0x7f;
                ++pc;
                ++insns;
                cycles += zpuBaseCpi;
                if (idim)
                    push((pop() << 7) | payload);
                else
                    push(std::uint32_t(signExtend(payload, 7)));
                idim = true;
                if (dead)
                    result = int(MachineStatus::Killed);
                continue;
            }

            ++pc;
            ++insns;
            cycles += d.cyc;
            idim = false;
            bool bad_op = false;
            bool halted = false;
            switch (d.op) {
              case BREAK: halted = true; break;
              case NOP: break;
              case POPPC: pc = pop(); break;
              case ADD: { const auto b = pop(); push(pop() + b);
                break; }
              case SUB: { const auto b = pop(); push(pop() - b);
                break; }
              case AND: { const auto b = pop(); push(pop() & b);
                break; }
              case OR: { const auto b = pop(); push(pop() | b);
                break; }
              case XOR: { const auto b = pop(); push(pop() ^ b);
                break; }
              case NOT: push(~pop()); break;
              case FLIP: {
                std::uint32_t v = pop(), r = 0;
                for (int i = 0; i < 32; ++i)
                    r |= ((v >> i) & 1) << (31 - i);
                push(r);
                break;
              }
              case LOAD: push(rd(pop())); break;
              case STORE: {
                const auto addr = pop();
                wr(addr, pop());
                break;
              }
              case ULESSTHAN: {
                const auto b = pop();
                const auto a = pop();
                push(a < b ? 1 : 0);
                break;
              }
              case EQ: {
                const auto b = pop();
                push(pop() == b ? 1 : 0);
                break;
              }
              case LSHIFTRIGHT: {
                const auto amount = pop() & 31;
                push(pop() >> amount);
                break;
              }
              case NEQBRANCH: {
                const auto target = pop();
                const auto cond = pop();
                if (cond != 0)
                    pc = target;
                break;
              }
              case LOADSP0: {
                std::uint32_t v = 0;
                if (spw >= ramWords)
                    dead = true;
                else
                    v = ram[spw];
                push(v);
                break;
              }
              default:
                bad_op = true;
                break;
            }

            if (dead || bad_op)
                result = int(MachineStatus::Killed);
            else if (halted)
                result = int(MachineStatus::Halted);
        }

        sp_[m] = spw << 2;
        pc_[m] = pc;
        idim_[m] = idim ? 1 : 0;
        insns_[m] = insns;
        cycles_[m] = cycles;
        return result;
    }

    std::vector<std::uint8_t> code_; ///< shared, read-only
    std::vector<ZDec> dec_;          ///< shared predecode of code_
    std::vector<std::uint32_t> ram_; ///< ramWords per machine
    std::vector<std::uint32_t> sp_;
    std::vector<std::uint32_t> pc_;
    std::vector<std::uint8_t> idim_; ///< mid-IM-chain flag
    std::vector<MachineStatus> status_;
    std::vector<std::uint64_t> insns_;
    std::vector<std::uint64_t> cycles_;
};

} // anonymous namespace

LegacySize
sizeZpu(const IrProgram &prog)
{
    Compiler c(prog);
    LegacySize sz;
    sz.codeBytes = c.take().size();
    // ZPU stores every logical word in a 32-bit RAM word.
    sz.dataBytes = prog.dataWords * 4;
    return sz;
}

LegacyRun
runZpu(const IrProgram &prog,
       const std::vector<std::uint64_t> &inputs,
       std::uint64_t max_steps)
{
    Compiler c(prog);
    auto code = c.take();

    LegacyRun result;
    result.codeBytes = code.size();
    result.dataBytes = prog.dataWords * 4;

    Machine m(std::move(code));
    fatalIf(inputs.size() != prog.inputAddrs.size(),
            "runZpu: input count mismatch");
    for (std::size_t i = 0; i < inputs.size(); ++i)
        m.setRamWord(dataBase + prog.inputAddrs[i] * 4,
                     std::uint32_t(inputs[i]));

    const MachineStatus st =
        m.run(max_steps, result.instructions, result.cycles);
    fatalIf(st == MachineStatus::OutOfBudget,
            "zpu: step budget exhausted");
    fatalIf(st == MachineStatus::Killed,
            "zpu: machine killed (bad pc, address, or opcode)");

    for (unsigned addr : prog.outputAddrs)
        result.outputs.push_back(m.ramWord(dataBase + addr * 4) &
                                 maskBits(prog.width));
    return result;
}

IssBatchResult
batchRunZpu(const IrProgram &prog,
            const std::vector<std::vector<std::uint64_t>> &inputs,
            const IssBatchOptions &opts)
{
    Compiler c(prog);
    auto code = c.take();
    const std::size_t machines = inputs.size();

    IssBatchResult res;
    res.codeBytes = code.size();
    res.dataBytes = prog.dataWords * 4;
    res.runs.resize(machines);
    res.status.resize(machines, MachineStatus::Halted);
    for (std::size_t m = 0; m < machines; ++m) {
        fatalIf(inputs[m].size() != prog.inputAddrs.size(),
                "batchRunZpu: input count mismatch");
        res.runs[m].codeBytes = res.codeBytes;
        res.runs[m].dataBytes = res.dataBytes;
    }
    fatalIf(dataBase + std::size_t(prog.dataWords) * 4 > ramBytes,
            "batchRunZpu: data array exceeds RAM");

    if (opts.engine == IssEngine::Scalar) {
        issForEachBlock(opts, machines, [&](std::size_t begin,
                                            std::size_t end) {
            for (std::size_t m = begin; m < end; ++m) {
                Machine mach(code); // per-machine copy: baseline
                for (std::size_t i = 0;
                     i < prog.inputAddrs.size(); ++i)
                    mach.setRamWord(
                        dataBase + prog.inputAddrs[i] * 4,
                        std::uint32_t(inputs[m][i]));
                res.status[m] =
                    mach.run(opts.maxSteps,
                             res.runs[m].instructions,
                             res.runs[m].cycles);
                for (unsigned addr : prog.outputAddrs)
                    res.runs[m].outputs.push_back(
                        mach.ramWord(dataBase + addr * 4) &
                        maskBits(prog.width));
            }
        });
    } else {
        BatchZpu b(std::move(code), machines);
        for (std::size_t m = 0; m < machines; ++m)
            for (std::size_t i = 0; i < prog.inputAddrs.size(); ++i)
                b.ram(m)[(dataBase + prog.inputAddrs[i] * 4) / 4] =
                    std::uint32_t(inputs[m][i]);
        issForEachBlock(opts, machines, [&](std::size_t begin,
                                            std::size_t end) {
            b.runBlock(begin, end, opts.maxSteps);
        });
        for (std::size_t m = 0; m < machines; ++m) {
            res.status[m] = b.status(m);
            res.runs[m].instructions = b.instructions(m);
            res.runs[m].cycles = b.cycles(m);
            for (unsigned addr : prog.outputAddrs)
                res.runs[m].outputs.push_back(
                    b.ram(m)[(dataBase + addr * 4) / 4] &
                    maskBits(prog.width));
        }
    }

    issFinishResult(res, opts.engine);
    return res;
}

} // namespace printed::legacy
