#include "zpu.hh"

#include <map>

#include "common/bits.hh"
#include "common/logging.hh"

namespace printed::legacy
{

namespace
{

// One-byte opcodes (ZPU encoding space).
enum Op : std::uint8_t
{
    BREAK = 0x00,
    POPPC = 0x04,
    ADD = 0x05,
    AND = 0x06,
    OR = 0x07,
    LOAD = 0x08,
    NOT = 0x09,
    FLIP = 0x0A,
    NOP = 0x0B,
    STORE = 0x0C,
    // EMULATE space (0x20..0x3F): taxed with zpuEmulatePenalty.
    ULESSTHAN = 0x25,
    LSHIFTRIGHT = 0x2A,
    EQ = 0x2E,
    SUB = 0x32,
    XOR = 0x33,
    NEQBRANCH = 0x38,
    // LOADSP 0 (dup).
    LOADSP0 = 0x60,
    // IM: 0x80 | 7-bit payload.
};

bool
isEmulate(std::uint8_t op)
{
    return op >= 0x20 && op < 0x40;
}

// Memory map (byte addresses, word-aligned): virtual registers at
// 0, data array at 0x80, stack grows down from the top.
constexpr std::uint32_t dataBase = 0x80;
constexpr std::uint32_t ramBytes = 0x1000;

class Compiler
{
  public:
    explicit Compiler(const IrProgram &prog) : prog_(prog)
    {
        fatalIf(prog.regCount * 4 > dataBase,
                "zpu: too many virtual registers");
        for (const IrInst &in : prog_.code)
            lower(in);
        patch();
    }

    std::vector<std::uint8_t> take() { return std::move(code_); }

  private:
    std::uint32_t slot(Reg r) const { return r * 4; }

    void byte(std::uint8_t b) { code_.push_back(b); }

    /** Shortest IM chain for a value. */
    void
    im(std::uint32_t value)
    {
        // Collect 7-bit groups, most significant first.
        std::vector<std::uint8_t> groups;
        std::int64_t v = std::int64_t(std::int32_t(value));
        while (true) {
            groups.insert(groups.begin(),
                          std::uint8_t(v & 0x7f));
            v >>= 7;
            // Sign-extension of the first IM reproduces the rest.
            const std::int64_t sign =
                (groups.front() & 0x40) ? -1 : 0;
            if (v == sign)
                break;
        }
        for (std::uint8_t g : groups)
            byte(std::uint8_t(0x80 | g));
    }

    /** Fixed-width 3-byte IM chain, backpatched with a label. */
    void
    imLabel(const std::string &label)
    {
        fixups_.emplace_back(code_.size(), label);
        byte(0x80);
        byte(0x80);
        byte(0x80);
    }

    void
    patch()
    {
        for (const auto &[pos, label] : fixups_) {
            auto it = labels_.find(label);
            fatalIf(it == labels_.end(),
                    "zpu: undefined label " + label);
            const std::uint32_t t = std::uint32_t(it->second);
            fatalIf(t >= (1u << 21), "zpu: target out of IM range");
            code_[pos] = std::uint8_t(0x80 | ((t >> 14) & 0x7f));
            code_[pos + 1] = std::uint8_t(0x80 | ((t >> 7) & 0x7f));
            code_[pos + 2] = std::uint8_t(0x80 | (t & 0x7f));
        }
    }

    void
    pushReg(Reg r)
    {
        im(slot(r));
        byte(LOAD);
    }

    void
    popToReg(Reg r)
    {
        im(slot(r));
        byte(STORE);
    }

    /** Mask the top of stack to the IR width (no-op for 32-bit). */
    void
    maskTop()
    {
        if (prog_.width == 32)
            return;
        im(std::uint32_t(maskBits(prog_.width)));
        byte(AND);
    }

    void
    binop(std::uint8_t op, Reg dst, Reg src, bool needs_mask)
    {
        pushReg(dst);
        pushReg(src);
        byte(op);
        if (needs_mask)
            maskTop();
        popToReg(dst);
    }

    void
    lower(const IrInst &in)
    {
        switch (in.op) {
          case IrOp::Li:
            im(std::uint32_t(in.imm));
            byte(NOP); // break the IM chain before the slot address
            popToReg(in.dst);
            break;
          case IrOp::Mov:
            pushReg(in.src);
            popToReg(in.dst);
            break;
          case IrOp::Add: binop(ADD, in.dst, in.src, true); break;
          case IrOp::Sub: binop(SUB, in.dst, in.src, true); break;
          case IrOp::And: binop(AND, in.dst, in.src, false); break;
          case IrOp::Or: binop(OR, in.dst, in.src, false); break;
          case IrOp::Xor: binop(XOR, in.dst, in.src, false); break;
          case IrOp::Shl:
            pushReg(in.dst);
            byte(LOADSP0); // dup
            byte(ADD);
            maskTop();
            popToReg(in.dst);
            break;
          case IrOp::Shr:
            pushReg(in.dst);
            im(1);
            byte(LSHIFTRIGHT);
            popToReg(in.dst);
            break;
          case IrOp::Ld:
          case IrOp::St: {
            if (in.op == IrOp::St)
                pushReg(in.dst); // value under the address
            // byte address = dataBase + idx * 4
            pushReg(in.src);
            byte(LOADSP0);
            byte(ADD);
            byte(LOADSP0);
            byte(ADD);
            im(dataBase);
            byte(ADD);
            if (in.op == IrOp::Ld) {
                byte(LOAD);
                popToReg(in.dst);
            } else {
                byte(STORE);
            }
            break;
          }
          case IrOp::Label:
            labels_[in.label] = code_.size();
            break;
          case IrOp::Jmp:
            imLabel(in.label);
            byte(POPPC);
            break;
          case IrOp::Beqz:
            pushReg(in.dst);
            im(0);
            byte(EQ);
            imLabel(in.label);
            byte(NEQBRANCH);
            break;
          case IrOp::Bnez:
            pushReg(in.dst);
            imLabel(in.label);
            byte(NEQBRANCH);
            break;
          case IrOp::Bltu:
            pushReg(in.dst);
            pushReg(in.src);
            byte(ULESSTHAN);
            imLabel(in.label);
            byte(NEQBRANCH);
            break;
          case IrOp::Bgeu:
            pushReg(in.dst);
            pushReg(in.src);
            byte(ULESSTHAN);
            im(0);
            byte(EQ);
            imLabel(in.label);
            byte(NEQBRANCH);
            break;
          case IrOp::Halt:
            byte(BREAK);
            break;
        }
    }

    const IrProgram &prog_;
    std::vector<std::uint8_t> code_;
    std::map<std::string, std::size_t> labels_;
    std::vector<std::pair<std::size_t, std::string>> fixups_;
};

class Machine
{
  public:
    explicit Machine(std::vector<std::uint8_t> code)
        : code_(std::move(code)), ram_(ramBytes / 4, 0),
          sp_(ramBytes)
    {}

    std::uint32_t
    ramWord(std::uint32_t byte_addr) const
    {
        panicIf(byte_addr % 4 || byte_addr / 4 >= ram_.size(),
                "zpu: bad word address");
        return ram_[byte_addr / 4];
    }

    void
    setRamWord(std::uint32_t byte_addr, std::uint32_t v)
    {
        panicIf(byte_addr % 4 || byte_addr / 4 >= ram_.size(),
                "zpu: bad word address");
        ram_[byte_addr / 4] = v;
    }

    void
    run(std::uint64_t max_steps, std::uint64_t &instructions,
        std::uint64_t &cycles)
    {
        instructions = 0;
        cycles = 0;
        bool idim = false;
        while (!halted_) {
            fatalIf(instructions >= max_steps,
                    "zpu: step budget exhausted");
            fatalIf(pc_ >= code_.size(), "zpu: PC out of code");
            const std::uint8_t op = code_[pc_++];
            ++instructions;
            cycles += zpuBaseCpi;
            if (isEmulate(op))
                cycles += zpuEmulatePenalty;

            if (op & 0x80) { // IM
                const std::uint32_t payload = op & 0x7f;
                if (idim) {
                    push((pop() << 7) | payload);
                } else {
                    push(std::uint32_t(signExtend(payload, 7)));
                }
                idim = true;
                continue;
            }
            idim = false;

            switch (op) {
              case BREAK: halted_ = true; break;
              case NOP: break;
              case POPPC: pc_ = pop(); break;
              case ADD: { const auto b = pop(); push(pop() + b);
                break; }
              case SUB: { const auto b = pop(); push(pop() - b);
                break; }
              case AND: { const auto b = pop(); push(pop() & b);
                break; }
              case OR: { const auto b = pop(); push(pop() | b);
                break; }
              case XOR: { const auto b = pop(); push(pop() ^ b);
                break; }
              case NOT: push(~pop()); break;
              case FLIP: {
                std::uint32_t v = pop(), r = 0;
                for (int i = 0; i < 32; ++i)
                    r |= ((v >> i) & 1) << (31 - i);
                push(r);
                break;
              }
              case LOAD: push(ramWord(pop())); break;
              case STORE: {
                const auto addr = pop();
                setRamWord(addr, pop());
                break;
              }
              case ULESSTHAN: {
                const auto b = pop();
                const auto a = pop();
                push(a < b ? 1 : 0);
                break;
              }
              case EQ: {
                const auto b = pop();
                push(pop() == b ? 1 : 0);
                break;
              }
              case LSHIFTRIGHT: {
                const auto amount = pop() & 31;
                push(pop() >> amount);
                break;
              }
              case NEQBRANCH: {
                const auto target = pop();
                const auto cond = pop();
                if (cond != 0)
                    pc_ = target;
                break;
              }
              case LOADSP0:
                push(ramWord(sp_));
                break;
              default:
                panic("zpu: unimplemented opcode " +
                      std::to_string(op));
            }
        }
    }

  private:
    void
    push(std::uint32_t v)
    {
        sp_ -= 4;
        setRamWord(sp_, v);
    }

    std::uint32_t
    pop()
    {
        const std::uint32_t v = ramWord(sp_);
        sp_ += 4;
        return v;
    }

    std::vector<std::uint8_t> code_;
    std::vector<std::uint32_t> ram_;
    std::uint32_t sp_;
    std::uint32_t pc_ = 0;
    bool halted_ = false;
};

} // anonymous namespace

LegacySize
sizeZpu(const IrProgram &prog)
{
    Compiler c(prog);
    LegacySize sz;
    sz.codeBytes = c.take().size();
    // ZPU stores every logical word in a 32-bit RAM word.
    sz.dataBytes = prog.dataWords * 4;
    return sz;
}

LegacyRun
runZpu(const IrProgram &prog,
       const std::vector<std::uint64_t> &inputs)
{
    Compiler c(prog);
    auto code = c.take();

    LegacyRun result;
    result.codeBytes = code.size();
    result.dataBytes = prog.dataWords * 4;

    Machine m(std::move(code));
    fatalIf(inputs.size() != prog.inputAddrs.size(),
            "runZpu: input count mismatch");
    for (std::size_t i = 0; i < inputs.size(); ++i)
        m.setRamWord(dataBase + prog.inputAddrs[i] * 4,
                     std::uint32_t(inputs[i]));

    m.run(100'000'000, result.instructions, result.cycles);

    for (unsigned addr : prog.outputAddrs)
        result.outputs.push_back(m.ramWord(dataBase + addr * 4) &
                                 maskBits(prog.width));
    return result;
}

} // namespace printed::legacy
