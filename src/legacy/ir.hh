/**
 * @file
 * Tiny portable IR for the legacy-core benchmark study.
 *
 * The paper compiled the benchmarks with msp430-gcc, sdcc (8080 /
 * Z80), and zpu-gcc to obtain program sizes (Table 5) and run
 * times (Section 8). We substitute a small register-based IR and
 * naive per-ISA backends (legacy/backend_*.cc): each backend
 * lowers an IR program to real machine code for its target, which
 * then runs on the matching instruction-set simulator. Code sizes
 * land in the regime of the era's embedded compilers at low
 * optimization, and dynamic cycle counts come from per-instruction
 * cycle tables.
 *
 * IR model: unlimited virtual registers of the benchmark's logical
 * width W; a flat data memory of W-bit words addressed by value
 * held in a register; structured control flow via labels.
 */

#ifndef PRINTED_LEGACY_IR_HH
#define PRINTED_LEGACY_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/golden.hh"

namespace printed::legacy
{

/** Virtual register id. */
using Reg = unsigned;

/** IR operations. */
enum class IrOp
{
    Li,    ///< dst = imm
    Mov,   ///< dst = src
    Add,   ///< dst += src
    Sub,   ///< dst -= src
    And,   ///< dst &= src
    Or,    ///< dst |= src
    Xor,   ///< dst ^= src
    Shl,   ///< dst <<= 1
    Shr,   ///< dst >>= 1 (logical)
    Ld,    ///< dst = mem[addr]   (addr = word index in a register)
    St,    ///< mem[addr] = src
    Label, ///< control-flow target
    Jmp,   ///< unconditional jump
    Beqz,  ///< branch when reg == 0
    Bnez,  ///< branch when reg != 0
    Bltu,  ///< branch when a < b (unsigned)
    Bgeu,  ///< branch when a >= b (unsigned)
    Halt,  ///< stop
};

/** One IR instruction (field use depends on op). */
struct IrInst
{
    IrOp op = IrOp::Halt;
    Reg dst = 0;           ///< destination / first comparand
    Reg src = 0;           ///< source / second comparand / addr reg
    std::uint64_t imm = 0; ///< Li immediate
    std::string label;     ///< Label/Jmp/B* target
};

/** An IR program plus its data-memory footprint. */
struct IrProgram
{
    std::string name;
    unsigned width = 8;          ///< logical data width W
    std::vector<IrInst> code;
    std::size_t dataWords = 0;   ///< W-bit words of data memory
    std::vector<unsigned> inputAddrs;  ///< word indices of inputs
    std::vector<unsigned> outputAddrs; ///< word indices of outputs
    unsigned regCount = 0;       ///< virtual registers used
};

/** Convenience builder for IR programs. */
class IrBuilder
{
  public:
    explicit IrBuilder(std::string name, unsigned width);

    Reg reg();
    unsigned allocWords(std::size_t n);

    void li(Reg d, std::uint64_t imm);
    void mov(Reg d, Reg s);
    void add(Reg d, Reg s);
    void sub(Reg d, Reg s);
    void and_(Reg d, Reg s);
    void or_(Reg d, Reg s);
    void xor_(Reg d, Reg s);
    void shl(Reg d);
    void shr(Reg d);
    void ld(Reg d, Reg addr);
    void st(Reg addr, Reg s);

    std::string newLabel(const std::string &hint);
    void label(const std::string &l);
    void jmp(const std::string &l);
    void beqz(Reg r, const std::string &l);
    void bnez(Reg r, const std::string &l);
    void bltu(Reg a, Reg b, const std::string &l);
    void bgeu(Reg a, Reg b, const std::string &l);
    void halt();

    IrProgram take();

  private:
    void emit(IrInst inst);
    IrProgram prog_;
    unsigned nextReg_ = 0;
    unsigned nextLabel_ = 0;
};

/**
 * Reference interpreter (for validating the IR kernels themselves
 * against the golden models before any backend is involved).
 * @return data memory after execution.
 */
std::vector<std::uint64_t>
interpretIr(const IrProgram &prog,
            const std::vector<std::uint64_t> &init_data,
            std::uint64_t max_steps = 10'000'000);

/** The seven paper kernels as IR programs. */
IrProgram irKernel(Kernel kind, unsigned width);

} // namespace printed::legacy

#endif // PRINTED_LEGACY_IR_HH
