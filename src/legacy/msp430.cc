#include "msp430.hh"

#include <array>
#include <map>

#include "common/bits.hh"
#include "common/logging.hh"

namespace printed::legacy
{

namespace
{

// Memory map (word-aligned): data array, then virtual registers.
constexpr std::uint16_t dataBase = 0x0200;
constexpr std::uint16_t regsBase = 0x1000;
constexpr std::uint16_t codeBase = 0x4000;

// Format-I opcodes (bits 15:12).
enum class Op2 : std::uint16_t
{
    MOV = 0x4, ADD = 0x5, ADDC = 0x6, SUBC = 0x7, SUB = 0x8,
    CMP = 0x9, BIT = 0xA, BIC = 0xB, BIS = 0xC, XOR = 0xD,
    AND = 0xF,
};

// Jump conditions (bits 12:10 of the 001x opcode).
enum class Jcc : std::uint16_t
{
    JNE = 0, JEQ = 1, JNC = 2, JC = 3, JN = 4, JGE = 5, JL = 6,
    JMP = 7,
};

/** Compiler: IR -> MSP430 machine code (vector of 16-bit words). */
class Compiler
{
  public:
    explicit Compiler(const IrProgram &prog)
        : prog_(prog),
          byteMode_(prog.width == 8),
          chunks_(prog.width <= 16 ? 1 : prog.width / 16),
          bytesPerWord_(prog.width <= 8 ? 1 : prog.width / 8),
          // Register allocation: like msp430-gcc, virtual registers
          // live in R4..R11 when they fit (R12 stays the indexing
          // scratch); wide (32-bit) or register-hungry programs
          // spill to RAM with absolute addressing.
          // R4..R11 plus R13..R15 (R12 stays the indexing scratch).
          regMode_(chunks_ == 1 && prog.regCount <= 11)
    {
        for (const IrInst &in : prog_.code)
            lower(in);
        patch();
    }

    std::vector<std::uint16_t> take() { return std::move(code_); }

  private:
    std::uint16_t
    slot(Reg r, unsigned chunk) const
    {
        return std::uint16_t(regsBase + (r * chunks_ + chunk) * 2);
    }

    void word(std::uint16_t w) { code_.push_back(w); }

    std::uint16_t
    fmt1(Op2 op, unsigned sreg, unsigned ad, bool byte_mode,
         unsigned as, unsigned dreg)
    {
        return std::uint16_t((unsigned(op) << 12) | (sreg << 8) |
                             (ad << 7) | ((byte_mode ? 1u : 0u) << 6) |
                             (as << 4) | dreg);
    }

    // abs -> abs (src = &saddr, dst = &daddr); SR(R2) As=01/Ad=1
    // with a following address word selects absolute mode.
    void
    absAbs(Op2 op, std::uint16_t saddr, std::uint16_t daddr)
    {
        word(fmt1(op, 2, 1, byteMode_, 1, 2));
        word(saddr);
        word(daddr);
    }

    void
    immAbs(Op2 op, std::uint16_t imm, std::uint16_t daddr)
    {
        word(fmt1(op, 0, 1, byteMode_, 3, 2)); // src @PC+ (imm)
        word(imm);
        word(daddr);
    }

    void
    absReg(Op2 op, std::uint16_t saddr, unsigned dreg)
    {
        word(fmt1(op, 2, 0, false, 1, dreg));
        word(saddr);
    }

    void
    regReg(Op2 op, unsigned sreg, unsigned dreg)
    {
        word(fmt1(op, sreg, 0, false, 0, dreg));
    }

    /** MOV base+off(R12), &daddr or the reverse. */
    void
    indexedToAbs(std::uint16_t off, std::uint16_t daddr)
    {
        word(fmt1(Op2::MOV, 12, 1, byteMode_, 1, 2));
        word(std::uint16_t(dataBase + off));
        word(daddr);
    }

    void
    absToIndexed(std::uint16_t saddr, std::uint16_t off)
    {
        word(fmt1(Op2::MOV, 2, 1, byteMode_, 1, 12));
        word(saddr);
        word(std::uint16_t(dataBase + off));
    }

    void
    rrc(std::uint16_t addr)
    {
        // Format II: 000100 | 000 | B/W | Ad=01 (absolute via SR).
        word(std::uint16_t(0x1000 | ((byteMode_ ? 1 : 0) << 6) |
                           (1 << 4) | 2));
        word(addr);
    }

    void
    clrc()
    {
        // Emulated CLRC = BIC #1, SR (R3 As=01 is constant +1).
        word(fmt1(Op2::BIC, 3, 0, false, 1, 2));
    }

    /** Short conditional jump by a word offset (local hops only). */
    void
    jcc(Jcc cond, int offset_words)
    {
        panicIf(offset_words < -512 || offset_words > 511,
                "msp430: short jump out of range");
        word(std::uint16_t(0x2000 | (unsigned(cond) << 10) |
                           (unsigned(offset_words) & 0x3ff)));
    }

    /** BR #label (MOV #addr, PC), patched later. */
    void
    brFar(const std::string &label)
    {
        word(fmt1(Op2::MOV, 0, 0, false, 3, 0)); // MOV @PC+, PC
        fixups_.emplace_back(code_.size(), label);
        word(0);
    }

    /** Inverted-short-jump-over-BR idiom for far cond branches. */
    void
    condFar(Jcc inverted, const std::string &label)
    {
        jcc(inverted, 2); // skip the 2-word BR
        brFar(label);
    }

    void
    patch()
    {
        for (const auto &[pos, label] : fixups_) {
            auto it = labels_.find(label);
            fatalIf(it == labels_.end(),
                    "msp430: undefined label " + label);
            code_[pos] =
                std::uint16_t(codeBase + it->second * 2);
        }
    }

    unsigned
    hwReg(Reg r) const
    {
        // R4..R11, then R13..R15 (skipping the R12 scratch).
        return r < 8 ? 4 + r : 13 + (r - 8);
    }

    void
    immReg(Op2 op, std::uint16_t imm, unsigned dreg)
    {
        word(fmt1(op, 0, 0, byteMode_, 3, dreg)); // src @PC+
        word(imm);
    }

    /** MOV base+off(R12) <-> Rn. */
    void
    indexedToReg(std::uint16_t off, unsigned dreg)
    {
        word(fmt1(Op2::MOV, 12, 0, byteMode_, 1, dreg));
        word(std::uint16_t(dataBase + off));
    }

    void
    regToIndexed(unsigned sreg, std::uint16_t off)
    {
        word(fmt1(Op2::MOV, sreg, 1, byteMode_, 0, 12));
        word(std::uint16_t(dataBase + off));
    }

    void
    rrcReg(unsigned reg)
    {
        word(std::uint16_t(0x1000 | ((byteMode_ ? 1 : 0) << 6) |
                           reg));
    }

    void
    chunkOp(Op2 first, Op2 rest, Reg dst, Reg src)
    {
        if (regMode_) {
            word(fmt1(first, hwReg(src), 0, byteMode_, 0,
                      hwReg(dst)));
            return;
        }
        for (unsigned c = 0; c < chunks_; ++c)
            absAbs(c == 0 ? first : rest, slot(src, c),
                   slot(dst, c));
    }

    void
    lower(const IrInst &in)
    {
        switch (in.op) {
          case IrOp::Li:
            if (regMode_) {
                immReg(Op2::MOV, std::uint16_t(in.imm),
                       hwReg(in.dst));
                break;
            }
            for (unsigned c = 0; c < chunks_; ++c)
                immAbs(Op2::MOV,
                       std::uint16_t(in.imm >> (16 * c)),
                       slot(in.dst, c));
            break;
          case IrOp::Mov:
            chunkOp(Op2::MOV, Op2::MOV, in.dst, in.src);
            break;
          case IrOp::Add:
            chunkOp(Op2::ADD, Op2::ADDC, in.dst, in.src);
            break;
          case IrOp::Sub:
            chunkOp(Op2::SUB, Op2::SUBC, in.dst, in.src);
            break;
          case IrOp::And:
            chunkOp(Op2::AND, Op2::AND, in.dst, in.src);
            break;
          case IrOp::Or:
            chunkOp(Op2::BIS, Op2::BIS, in.dst, in.src);
            break;
          case IrOp::Xor:
            chunkOp(Op2::XOR, Op2::XOR, in.dst, in.src);
            break;
          case IrOp::Shl:
            if (regMode_) {
                // RLA Rn = ADD Rn, Rn.
                word(fmt1(Op2::ADD, hwReg(in.dst), 0, byteMode_, 0,
                          hwReg(in.dst)));
                break;
            }
            for (unsigned c = 0; c < chunks_; ++c)
                absAbs(c == 0 ? Op2::ADD : Op2::ADDC,
                       slot(in.dst, c), slot(in.dst, c));
            break;
          case IrOp::Shr:
            clrc();
            if (regMode_) {
                rrcReg(hwReg(in.dst));
                break;
            }
            for (unsigned c = chunks_; c-- > 0;)
                rrc(slot(in.dst, c));
            break;
          case IrOp::Ld:
          case IrOp::St: {
            // R12 = byte offset of the indexed word.
            const Reg addr_reg = in.src;
            if (regMode_)
                regReg(Op2::MOV, hwReg(addr_reg), 12);
            else
                absReg(Op2::MOV, slot(addr_reg, 0), 12);
            for (unsigned s = 1; s < bytesPerWord_; s <<= 1)
                regReg(Op2::ADD, 12, 12); // R12 *= 2
            if (regMode_) {
                if (in.op == IrOp::Ld)
                    indexedToReg(0, hwReg(in.dst));
                else
                    regToIndexed(hwReg(in.dst), 0);
                break;
            }
            for (unsigned c = 0; c < chunks_; ++c) {
                if (in.op == IrOp::Ld)
                    indexedToAbs(std::uint16_t(2 * c),
                                 slot(in.dst, c));
                else
                    absToIndexed(slot(in.dst, c),
                                 std::uint16_t(2 * c));
            }
            break;
          }
          case IrOp::Label:
            labels_[in.label] = code_.size();
            break;
          case IrOp::Jmp:
            brFar(in.label);
            break;
          case IrOp::Beqz:
          case IrOp::Bnez:
            if (regMode_) {
                // TST Rn = CMP #0, Rn (R3 As=00 is constant 0).
                word(fmt1(Op2::CMP, 3, 0, byteMode_, 0,
                          hwReg(in.dst)));
            } else {
                // OR the chunks into R12, test for zero.
                absReg(Op2::MOV, slot(in.dst, 0), 12);
                for (unsigned c = 1; c < chunks_; ++c)
                    absReg(Op2::BIS, slot(in.dst, c), 12);
                word(fmt1(Op2::CMP, 3, 0, false, 0, 12));
            }
            condFar(in.op == IrOp::Beqz ? Jcc::JNE : Jcc::JEQ,
                    in.label);
            break;
          case IrOp::Bltu:
          case IrOp::Bgeu: {
            if (regMode_) {
                word(fmt1(Op2::CMP, hwReg(in.src), 0, byteMode_, 0,
                          hwReg(in.dst)));
            } else {
                // CMP high chunk; on equality fall through to the
                // low chunk; then branch on carry.
                if (chunks_ == 2) {
                    absAbs(Op2::CMP, slot(in.src, 1),
                           slot(in.dst, 1));
                    jcc(Jcc::JNE, 3); // skip the 3-word low CMP
                }
                absAbs(Op2::CMP, slot(in.src, 0), slot(in.dst, 0));
            }
            condFar(in.op == IrOp::Bltu ? Jcc::JC : Jcc::JNC,
                    in.label);
            break;
          }
          case IrOp::Halt:
            word(0xFFFF); // reserved: treated as HALT by our ISS
            break;
        }
    }

    const IrProgram &prog_;
    bool byteMode_;
    unsigned chunks_;
    unsigned bytesPerWord_;
    bool regMode_;
    std::vector<std::uint16_t> code_;
    std::map<std::string, std::size_t> labels_;
    std::vector<std::pair<std::size_t, std::string>> fixups_;
};

/** MSP430 core state + interpreter for the emitted subset. */
class Machine
{
  public:
    explicit Machine(const std::vector<std::uint16_t> &code)
        : mem_(0x10000, 0)
    {
        for (std::size_t i = 0; i < code.size(); ++i)
            write16(std::uint16_t(codeBase + 2 * i), code[i]);
        regs_[0] = codeBase; // PC
    }

    std::uint8_t &byteAt(std::uint16_t a) { return mem_[a]; }

    std::uint16_t
    read16(std::uint16_t a) const
    {
        return std::uint16_t(mem_[a] | (mem_[a + 1] << 8));
    }

    void
    write16(std::uint16_t a, std::uint16_t v)
    {
        mem_[a] = std::uint8_t(v & 0xff);
        mem_[a + 1] = std::uint8_t(v >> 8);
    }

    void
    run(std::uint64_t max_steps, std::uint64_t &instructions,
        std::uint64_t &cycles)
    {
        instructions = 0;
        cycles = 0;
        while (!halted_) {
            fatalIf(instructions >= max_steps,
                    "msp430: step budget exhausted");
            step(cycles);
            ++instructions;
        }
    }

  private:
    // SR flag bits.
    static constexpr std::uint16_t flagC = 1 << 0;
    static constexpr std::uint16_t flagZ = 1 << 1;
    static constexpr std::uint16_t flagN = 1 << 2;
    static constexpr std::uint16_t flagV = 1 << 8;

    bool carry() const { return regs_[2] & flagC; }

    void
    setFlag(std::uint16_t bit, bool v)
    {
        if (v)
            regs_[2] |= bit;
        else
            regs_[2] &= std::uint16_t(~bit);
    }

    std::uint16_t
    fetch()
    {
        const std::uint16_t w = read16(regs_[0]);
        regs_[0] = std::uint16_t(regs_[0] + 2);
        return w;
    }

    void
    step(std::uint64_t &cycles)
    {
        const std::uint16_t iw = fetch();
        if (iw == 0xFFFF) {
            halted_ = true;
            ++cycles;
            return;
        }

        const unsigned top = iw >> 13;
        if (top == 1) { // 001x: jumps
            const auto cond = Jcc((iw >> 10) & 7);
            const int off = int(signExtend(iw & 0x3ff, 10));
            bool take = false;
            switch (cond) {
              case Jcc::JNE: take = !(regs_[2] & flagZ); break;
              case Jcc::JEQ: take = regs_[2] & flagZ; break;
              case Jcc::JNC: take = !(regs_[2] & flagC); break;
              case Jcc::JC: take = regs_[2] & flagC; break;
              case Jcc::JMP: take = true; break;
              default:
                panic("msp430: unimplemented jump condition");
            }
            if (take)
                regs_[0] = std::uint16_t(regs_[0] + 2 * off);
            cycles += 2;
            return;
        }

        if ((iw >> 10) == 0b000100) { // format II: RRC/RRA family
            const unsigned opc = (iw >> 7) & 7;
            const bool byte_mode = (iw >> 6) & 1;
            const unsigned ad = (iw >> 4) & 3;
            const unsigned reg = iw & 0xf;
            fatalIf(opc != 0, "msp430: only RRC emitted");
            if (ad == 0) { // register
                rrcValue(regs_[reg], byte_mode, &regs_[reg]);
                cycles += 1;
            } else { // absolute (reg == SR)
                panicIf(reg != 2, "msp430: RRC mode");
                const std::uint16_t addr = fetch();
                std::uint16_t v = byte_mode ? mem_[addr]
                                            : read16(addr);
                rrcValue(v, byte_mode, nullptr);
                if (byte_mode)
                    mem_[addr] = std::uint8_t(v_);
                else
                    write16(addr, v_);
                cycles += 4;
            }
            return;
        }

        // Format I.
        const auto op = Op2(iw >> 12);
        const unsigned sreg = (iw >> 8) & 0xf;
        const unsigned ad = (iw >> 7) & 1;
        const bool byte_mode = (iw >> 6) & 1;
        const unsigned as = (iw >> 4) & 3;
        const unsigned dreg = iw & 0xf;

        // Source operand.
        std::uint16_t src = 0;
        unsigned src_cycles = 0;
        if (sreg == 3) { // constant generator R3
            switch (as) {
              case 0: src = 0; break;
              case 1: src = 1; break;
              case 2: src = 2; break;
              case 3: src = 0xffff; break;
            }
        } else if (as == 0) {
            src = regs_[sreg];
        } else if (as == 1 && sreg == 2) { // absolute
            const std::uint16_t a = fetch();
            src = byte_mode ? mem_[a] : read16(a);
            src_cycles = 3;
        } else if (as == 1) { // indexed
            const std::uint16_t a =
                std::uint16_t(fetch() + regs_[sreg]);
            src = byte_mode ? mem_[a] : read16(a);
            src_cycles = 3;
        } else if (as == 3 && sreg == 0) { // immediate @PC+
            src = fetch();
            src_cycles = 2;
        } else {
            panic("msp430: unimplemented source mode");
        }

        // Destination operand.
        std::uint16_t daddr = 0;
        bool dst_mem = false;
        std::uint16_t dst = 0;
        unsigned dst_cycles = 0;
        if (ad == 0) {
            dst = regs_[dreg];
        } else {
            dst_mem = true;
            if (dreg == 2) { // absolute
                daddr = fetch();
            } else { // indexed
                daddr = std::uint16_t(fetch() + regs_[dreg]);
            }
            dst = byte_mode ? mem_[daddr] : read16(daddr);
            dst_cycles = 3;
        }

        const std::uint16_t mask = byte_mode ? 0xff : 0xffff;
        const std::uint16_t msb = byte_mode ? 0x80 : 0x8000;
        std::uint16_t result = 0;
        bool write_back = true;
        switch (op) {
          case Op2::MOV:
            result = src;
            break;
          case Op2::ADD:
          case Op2::ADDC: {
            const unsigned cin =
                (op == Op2::ADDC && carry()) ? 1 : 0;
            const unsigned full =
                (dst & mask) + (src & mask) + cin;
            result = std::uint16_t(full & mask);
            setFlag(flagC, full > mask);
            setFlag(flagZ, result == 0);
            setFlag(flagN, result & msb);
            setFlag(flagV, ((dst ^ result) & (src ^ result) & msb));
            break;
          }
          case Op2::SUB:
          case Op2::SUBC:
          case Op2::CMP: {
            const unsigned cin =
                op == Op2::SUBC ? (carry() ? 1 : 0) : 1;
            const unsigned full =
                (dst & mask) + ((~src) & mask) + cin;
            result = std::uint16_t(full & mask);
            setFlag(flagC, full > mask);
            setFlag(flagZ, result == 0);
            setFlag(flagN, result & msb);
            setFlag(flagV,
                    ((dst ^ src) & (dst ^ result) & msb));
            write_back = op != Op2::CMP;
            break;
          }
          case Op2::AND:
            result = dst & src & mask;
            setFlag(flagZ, result == 0);
            setFlag(flagN, result & msb);
            setFlag(flagC, result != 0);
            setFlag(flagV, false);
            break;
          case Op2::XOR:
            result = (dst ^ src) & mask;
            setFlag(flagZ, result == 0);
            setFlag(flagN, result & msb);
            setFlag(flagC, result != 0);
            setFlag(flagV, false);
            break;
          case Op2::BIS:
            result = (dst | src) & mask;
            break;
          case Op2::BIC:
            result = dst & std::uint16_t(~src) & mask;
            break;
          default:
            panic("msp430: unimplemented format-I opcode");
        }

        if (write_back) {
            if (dst_mem) {
                if (byte_mode)
                    mem_[daddr] = std::uint8_t(result);
                else
                    write16(daddr, result);
            } else {
                regs_[dreg] =
                    byte_mode ? std::uint16_t(result & 0xff)
                              : result;
            }
        }

        cycles += 1 + src_cycles + dst_cycles;
    }

    void
    rrcValue(std::uint16_t v, bool byte_mode, std::uint16_t *reg_out)
    {
        const std::uint16_t msb_in =
            carry() ? (byte_mode ? 0x80 : 0x8000) : 0;
        setFlag(flagC, v & 1);
        v_ = std::uint16_t(((v >> 1) |
                            msb_in) & (byte_mode ? 0xff : 0xffff));
        setFlag(flagZ, v_ == 0);
        setFlag(flagN, v_ & (byte_mode ? 0x80 : 0x8000));
        if (reg_out)
            *reg_out = v_;
    }

    std::vector<std::uint8_t> mem_;
    std::array<std::uint16_t, 16> regs_{};
    std::uint16_t v_ = 0;
    bool halted_ = false;
};

unsigned
bytesPerLogicalWord(const IrProgram &prog)
{
    return prog.width <= 8 ? 1 : prog.width / 8;
}

} // anonymous namespace

LegacySize
sizeMsp430(const IrProgram &prog)
{
    Compiler c(prog);
    LegacySize sz;
    sz.codeBytes = c.take().size() * 2;
    sz.dataBytes = prog.dataWords * bytesPerLogicalWord(prog);
    return sz;
}

LegacyRun
runMsp430(const IrProgram &prog,
          const std::vector<std::uint64_t> &inputs)
{
    Compiler c(prog);
    auto code = c.take();

    LegacyRun result;
    result.codeBytes = code.size() * 2;
    result.dataBytes = prog.dataWords * bytesPerLogicalWord(prog);

    Machine m(code);
    const unsigned bpw = bytesPerLogicalWord(prog);
    fatalIf(inputs.size() != prog.inputAddrs.size(),
            "runMsp430: input count mismatch");
    for (std::size_t i = 0; i < inputs.size(); ++i)
        for (unsigned k = 0; k < bpw; ++k)
            m.byteAt(std::uint16_t(dataBase +
                                   prog.inputAddrs[i] * bpw + k)) =
                std::uint8_t(inputs[i] >> (8 * k));

    m.run(50'000'000, result.instructions, result.cycles);

    for (unsigned addr : prog.outputAddrs) {
        std::uint64_t v = 0;
        for (unsigned k = 0; k < bpw; ++k)
            v |= std::uint64_t(m.byteAt(std::uint16_t(
                     dataBase + addr * bpw + k)))
                 << (8 * k);
        result.outputs.push_back(v & maskBits(prog.width));
    }
    return result;
}

} // namespace printed::legacy
