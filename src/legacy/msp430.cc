#include "msp430.hh"

#include <array>
#include <map>

#include "common/bits.hh"
#include "common/logging.hh"
#include "legacy/batch_iss.hh"

namespace printed::legacy
{

namespace
{

// Memory map (word-aligned): data array, then virtual registers.
constexpr std::uint16_t dataBase = 0x0200;
constexpr std::uint16_t regsBase = 0x1000;
constexpr std::uint16_t codeBase = 0x4000;

// Format-I opcodes (bits 15:12).
enum class Op2 : std::uint16_t
{
    MOV = 0x4, ADD = 0x5, ADDC = 0x6, SUBC = 0x7, SUB = 0x8,
    CMP = 0x9, BIT = 0xA, BIC = 0xB, BIS = 0xC, XOR = 0xD,
    AND = 0xF,
};

// Jump conditions (bits 12:10 of the 001x opcode).
enum class Jcc : std::uint16_t
{
    JNE = 0, JEQ = 1, JNC = 2, JC = 3, JN = 4, JGE = 5, JL = 6,
    JMP = 7,
};

// SR flag bits (shared by the scalar oracle and the batch engine).
constexpr std::uint16_t flagC = 1 << 0;
constexpr std::uint16_t flagZ = 1 << 1;
constexpr std::uint16_t flagN = 1 << 2;
constexpr std::uint16_t flagV = 1 << 8;

/** Compiler: IR -> MSP430 machine code (vector of 16-bit words). */
class Compiler
{
  public:
    explicit Compiler(const IrProgram &prog)
        : prog_(prog),
          byteMode_(prog.width == 8),
          chunks_(prog.width <= 16 ? 1 : prog.width / 16),
          bytesPerWord_(prog.width <= 8 ? 1 : prog.width / 8),
          // Register allocation: like msp430-gcc, virtual registers
          // live in R4..R11 when they fit (R12 stays the indexing
          // scratch); wide (32-bit) or register-hungry programs
          // spill to RAM with absolute addressing.
          // R4..R11 plus R13..R15 (R12 stays the indexing scratch).
          regMode_(chunks_ == 1 && prog.regCount <= 11)
    {
        for (const IrInst &in : prog_.code)
            lower(in);
        patch();
    }

    std::vector<std::uint16_t> take() { return std::move(code_); }

  private:
    std::uint16_t
    slot(Reg r, unsigned chunk) const
    {
        return std::uint16_t(regsBase + (r * chunks_ + chunk) * 2);
    }

    void word(std::uint16_t w) { code_.push_back(w); }

    std::uint16_t
    fmt1(Op2 op, unsigned sreg, unsigned ad, bool byte_mode,
         unsigned as, unsigned dreg)
    {
        return std::uint16_t((unsigned(op) << 12) | (sreg << 8) |
                             (ad << 7) | ((byte_mode ? 1u : 0u) << 6) |
                             (as << 4) | dreg);
    }

    // abs -> abs (src = &saddr, dst = &daddr); SR(R2) As=01/Ad=1
    // with a following address word selects absolute mode.
    void
    absAbs(Op2 op, std::uint16_t saddr, std::uint16_t daddr)
    {
        word(fmt1(op, 2, 1, byteMode_, 1, 2));
        word(saddr);
        word(daddr);
    }

    void
    immAbs(Op2 op, std::uint16_t imm, std::uint16_t daddr)
    {
        word(fmt1(op, 0, 1, byteMode_, 3, 2)); // src @PC+ (imm)
        word(imm);
        word(daddr);
    }

    void
    absReg(Op2 op, std::uint16_t saddr, unsigned dreg)
    {
        word(fmt1(op, 2, 0, false, 1, dreg));
        word(saddr);
    }

    void
    regReg(Op2 op, unsigned sreg, unsigned dreg)
    {
        word(fmt1(op, sreg, 0, false, 0, dreg));
    }

    /** MOV base+off(R12), &daddr or the reverse. */
    void
    indexedToAbs(std::uint16_t off, std::uint16_t daddr)
    {
        word(fmt1(Op2::MOV, 12, 1, byteMode_, 1, 2));
        word(std::uint16_t(dataBase + off));
        word(daddr);
    }

    void
    absToIndexed(std::uint16_t saddr, std::uint16_t off)
    {
        word(fmt1(Op2::MOV, 2, 1, byteMode_, 1, 12));
        word(saddr);
        word(std::uint16_t(dataBase + off));
    }

    void
    rrc(std::uint16_t addr)
    {
        // Format II: 000100 | 000 | B/W | Ad=01 (absolute via SR).
        word(std::uint16_t(0x1000 | ((byteMode_ ? 1 : 0) << 6) |
                           (1 << 4) | 2));
        word(addr);
    }

    void
    clrc()
    {
        // Emulated CLRC = BIC #1, SR (R3 As=01 is constant +1).
        word(fmt1(Op2::BIC, 3, 0, false, 1, 2));
    }

    /** Short conditional jump by a word offset (local hops only). */
    void
    jcc(Jcc cond, int offset_words)
    {
        panicIf(offset_words < -512 || offset_words > 511,
                "msp430: short jump out of range");
        word(std::uint16_t(0x2000 | (unsigned(cond) << 10) |
                           (unsigned(offset_words) & 0x3ff)));
    }

    /** BR #label (MOV #addr, PC), patched later. */
    void
    brFar(const std::string &label)
    {
        word(fmt1(Op2::MOV, 0, 0, false, 3, 0)); // MOV @PC+, PC
        fixups_.emplace_back(code_.size(), label);
        word(0);
    }

    /** Inverted-short-jump-over-BR idiom for far cond branches. */
    void
    condFar(Jcc inverted, const std::string &label)
    {
        jcc(inverted, 2); // skip the 2-word BR
        brFar(label);
    }

    void
    patch()
    {
        for (const auto &[pos, label] : fixups_) {
            auto it = labels_.find(label);
            fatalIf(it == labels_.end(),
                    "msp430: undefined label " + label);
            code_[pos] =
                std::uint16_t(codeBase + it->second * 2);
        }
    }

    unsigned
    hwReg(Reg r) const
    {
        // R4..R11, then R13..R15 (skipping the R12 scratch).
        return r < 8 ? 4 + r : 13 + (r - 8);
    }

    void
    immReg(Op2 op, std::uint16_t imm, unsigned dreg)
    {
        word(fmt1(op, 0, 0, byteMode_, 3, dreg)); // src @PC+
        word(imm);
    }

    /** MOV base+off(R12) <-> Rn. */
    void
    indexedToReg(std::uint16_t off, unsigned dreg)
    {
        word(fmt1(Op2::MOV, 12, 0, byteMode_, 1, dreg));
        word(std::uint16_t(dataBase + off));
    }

    void
    regToIndexed(unsigned sreg, std::uint16_t off)
    {
        word(fmt1(Op2::MOV, sreg, 1, byteMode_, 0, 12));
        word(std::uint16_t(dataBase + off));
    }

    void
    rrcReg(unsigned reg)
    {
        word(std::uint16_t(0x1000 | ((byteMode_ ? 1 : 0) << 6) |
                           reg));
    }

    void
    chunkOp(Op2 first, Op2 rest, Reg dst, Reg src)
    {
        if (regMode_) {
            word(fmt1(first, hwReg(src), 0, byteMode_, 0,
                      hwReg(dst)));
            return;
        }
        for (unsigned c = 0; c < chunks_; ++c)
            absAbs(c == 0 ? first : rest, slot(src, c),
                   slot(dst, c));
    }

    void
    lower(const IrInst &in)
    {
        switch (in.op) {
          case IrOp::Li:
            if (regMode_) {
                immReg(Op2::MOV, std::uint16_t(in.imm),
                       hwReg(in.dst));
                break;
            }
            for (unsigned c = 0; c < chunks_; ++c)
                immAbs(Op2::MOV,
                       std::uint16_t(in.imm >> (16 * c)),
                       slot(in.dst, c));
            break;
          case IrOp::Mov:
            chunkOp(Op2::MOV, Op2::MOV, in.dst, in.src);
            break;
          case IrOp::Add:
            chunkOp(Op2::ADD, Op2::ADDC, in.dst, in.src);
            break;
          case IrOp::Sub:
            chunkOp(Op2::SUB, Op2::SUBC, in.dst, in.src);
            break;
          case IrOp::And:
            chunkOp(Op2::AND, Op2::AND, in.dst, in.src);
            break;
          case IrOp::Or:
            chunkOp(Op2::BIS, Op2::BIS, in.dst, in.src);
            break;
          case IrOp::Xor:
            chunkOp(Op2::XOR, Op2::XOR, in.dst, in.src);
            break;
          case IrOp::Shl:
            if (regMode_) {
                // RLA Rn = ADD Rn, Rn.
                word(fmt1(Op2::ADD, hwReg(in.dst), 0, byteMode_, 0,
                          hwReg(in.dst)));
                break;
            }
            for (unsigned c = 0; c < chunks_; ++c)
                absAbs(c == 0 ? Op2::ADD : Op2::ADDC,
                       slot(in.dst, c), slot(in.dst, c));
            break;
          case IrOp::Shr:
            clrc();
            if (regMode_) {
                rrcReg(hwReg(in.dst));
                break;
            }
            for (unsigned c = chunks_; c-- > 0;)
                rrc(slot(in.dst, c));
            break;
          case IrOp::Ld:
          case IrOp::St: {
            // R12 = byte offset of the indexed word.
            const Reg addr_reg = in.src;
            if (regMode_)
                regReg(Op2::MOV, hwReg(addr_reg), 12);
            else
                absReg(Op2::MOV, slot(addr_reg, 0), 12);
            for (unsigned s = 1; s < bytesPerWord_; s <<= 1)
                regReg(Op2::ADD, 12, 12); // R12 *= 2
            if (regMode_) {
                if (in.op == IrOp::Ld)
                    indexedToReg(0, hwReg(in.dst));
                else
                    regToIndexed(hwReg(in.dst), 0);
                break;
            }
            for (unsigned c = 0; c < chunks_; ++c) {
                if (in.op == IrOp::Ld)
                    indexedToAbs(std::uint16_t(2 * c),
                                 slot(in.dst, c));
                else
                    absToIndexed(slot(in.dst, c),
                                 std::uint16_t(2 * c));
            }
            break;
          }
          case IrOp::Label:
            labels_[in.label] = code_.size();
            break;
          case IrOp::Jmp:
            brFar(in.label);
            break;
          case IrOp::Beqz:
          case IrOp::Bnez:
            if (regMode_) {
                // TST Rn = CMP #0, Rn (R3 As=00 is constant 0).
                word(fmt1(Op2::CMP, 3, 0, byteMode_, 0,
                          hwReg(in.dst)));
            } else {
                // OR the chunks into R12, test for zero.
                absReg(Op2::MOV, slot(in.dst, 0), 12);
                for (unsigned c = 1; c < chunks_; ++c)
                    absReg(Op2::BIS, slot(in.dst, c), 12);
                word(fmt1(Op2::CMP, 3, 0, false, 0, 12));
            }
            condFar(in.op == IrOp::Beqz ? Jcc::JNE : Jcc::JEQ,
                    in.label);
            break;
          case IrOp::Bltu:
          case IrOp::Bgeu: {
            if (regMode_) {
                word(fmt1(Op2::CMP, hwReg(in.src), 0, byteMode_, 0,
                          hwReg(in.dst)));
            } else {
                // CMP high chunk; on equality fall through to the
                // low chunk; then branch on carry.
                if (chunks_ == 2) {
                    absAbs(Op2::CMP, slot(in.src, 1),
                           slot(in.dst, 1));
                    jcc(Jcc::JNE, 3); // skip the 3-word low CMP
                }
                absAbs(Op2::CMP, slot(in.src, 0), slot(in.dst, 0));
            }
            condFar(in.op == IrOp::Bltu ? Jcc::JC : Jcc::JNC,
                    in.label);
            break;
          }
          case IrOp::Halt:
            word(0xFFFF); // reserved: treated as HALT by our ISS
            break;
        }
    }

    const IrProgram &prog_;
    bool byteMode_;
    unsigned chunks_;
    unsigned bytesPerWord_;
    bool regMode_;
    std::vector<std::uint16_t> code_;
    std::map<std::string, std::size_t> labels_;
    std::vector<std::pair<std::size_t, std::string>> fixups_;
};

/**
 * MSP430 core state + interpreter for the emitted subset. This is
 * the scalar oracle of the batch engine: both engines share the
 * trap contract (undecodable/unimplemented instruction words or a
 * PC leaving the code region kill the machine before it is
 * charged; a write outside the low RAM window kills it after) and
 * must agree bit for bit on registers, memory, flags, and counts.
 */
class Machine
{
  public:
    explicit Machine(const std::vector<std::uint16_t> &code)
        : mem_(0x10000, 0),
          codeEnd_(std::uint16_t(codeBase + 2 * code.size()))
    {
        for (std::size_t i = 0; i < code.size(); ++i) {
            // Loader stores bypass the writable-window check.
            mem_[codeBase + 2 * i] = std::uint8_t(code[i] & 0xff);
            mem_[codeBase + 2 * i + 1] = std::uint8_t(code[i] >> 8);
        }
        regs_[0] = codeBase; // PC
    }

    std::uint8_t &byteAt(std::uint16_t a) { return mem_[a]; }

    std::uint16_t reg(unsigned r) const { return regs_[r]; }
    void setReg(unsigned r, std::uint16_t v) { regs_[r] = v; }

    std::uint16_t
    read16(std::uint16_t a) const
    {
        return std::uint16_t(mem_[a] |
                             (mem_[std::uint16_t(a + 1)] << 8));
    }

    MachineStatus
    run(std::uint64_t max_steps, std::uint64_t &instructions,
        std::uint64_t &cycles)
    {
        instructions = 0;
        cycles = 0;
        // The halt flag wins at the boundary: a program whose HALT
        // is exactly the max_steps-th instruction is Halted.
        while (!halted_) {
            if (instructions >= max_steps)
                return MachineStatus::OutOfBudget;
            if (regs_[0] < codeBase || regs_[0] >= codeEnd_ ||
                (regs_[0] & 1))
                return MachineStatus::Killed;
            if (!step(cycles))
                return MachineStatus::Killed;
            ++instructions;
        }
        return MachineStatus::Halted;
    }

  private:
    /** Checked byte write: only the low RAM window is writable. */
    [[nodiscard]] bool
    write8(std::uint16_t a, std::uint8_t v)
    {
        if (a >= msp430RamWindow)
            return false;
        mem_[a] = v;
        return true;
    }

    [[nodiscard]] bool
    write16(std::uint16_t a, std::uint16_t v)
    {
        return write8(a, std::uint8_t(v & 0xff)) &&
               write8(std::uint16_t(a + 1), std::uint8_t(v >> 8));
    }
    bool carry() const { return regs_[2] & flagC; }

    void
    setFlag(std::uint16_t bit, bool v)
    {
        if (v)
            regs_[2] |= bit;
        else
            regs_[2] &= std::uint16_t(~bit);
    }

    std::uint16_t
    fetch()
    {
        const std::uint16_t w = read16(regs_[0]);
        regs_[0] = std::uint16_t(regs_[0] + 2);
        return w;
    }

    /** @return false when the instruction trapped (machine dies). */
    bool
    step(std::uint64_t &cycles)
    {
        const std::uint16_t iw = fetch();
        if (iw == 0xFFFF) {
            halted_ = true;
            ++cycles;
            return true;
        }

        const unsigned top = iw >> 13;
        if (top == 1) { // 001x: jumps
            const auto cond = Jcc((iw >> 10) & 7);
            const int off = int(signExtend(iw & 0x3ff, 10));
            bool take = false;
            switch (cond) {
              case Jcc::JNE: take = !(regs_[2] & flagZ); break;
              case Jcc::JEQ: take = regs_[2] & flagZ; break;
              case Jcc::JNC: take = !(regs_[2] & flagC); break;
              case Jcc::JC: take = regs_[2] & flagC; break;
              case Jcc::JMP: take = true; break;
              default:
                return false; // JN/JGE/JL not emitted
            }
            if (take)
                regs_[0] = std::uint16_t(regs_[0] + 2 * off);
            cycles += 2;
            return true;
        }

        if ((iw >> 10) == 0b000100) { // format II: RRC/RRA family
            const unsigned opc = (iw >> 7) & 7;
            const bool byte_mode = (iw >> 6) & 1;
            const unsigned ad = (iw >> 4) & 3;
            const unsigned reg = iw & 0xf;
            if (opc != 0)
                return false; // only RRC emitted
            if (ad == 0) { // register
                rrcValue(regs_[reg], byte_mode, &regs_[reg]);
                cycles += 1;
            } else { // absolute (reg == SR)
                if (ad != 1 || reg != 2)
                    return false;
                const std::uint16_t addr = fetch();
                std::uint16_t v = byte_mode ? mem_[addr]
                                            : read16(addr);
                rrcValue(v, byte_mode, nullptr);
                if (byte_mode) {
                    if (!write8(addr, std::uint8_t(v_)))
                        return false;
                } else {
                    if (!write16(addr, v_))
                        return false;
                }
                cycles += 4;
            }
            return true;
        }

        // Format I.
        const auto op = Op2(iw >> 12);
        const unsigned sreg = (iw >> 8) & 0xf;
        const unsigned ad = (iw >> 7) & 1;
        const bool byte_mode = (iw >> 6) & 1;
        const unsigned as = (iw >> 4) & 3;
        const unsigned dreg = iw & 0xf;

        // Source operand.
        std::uint16_t src = 0;
        unsigned src_cycles = 0;
        if (sreg == 3) { // constant generator R3
            switch (as) {
              case 0: src = 0; break;
              case 1: src = 1; break;
              case 2: src = 2; break;
              case 3: src = 0xffff; break;
            }
        } else if (as == 0) {
            src = regs_[sreg];
        } else if (as == 1 && sreg == 2) { // absolute
            const std::uint16_t a = fetch();
            src = byte_mode ? mem_[a] : read16(a);
            src_cycles = 3;
        } else if (as == 1) { // indexed
            // Fetch the offset first so X(R0) sees the post-fetch
            // PC - the order the batch engine mirrors.
            const std::uint16_t off = fetch();
            const std::uint16_t a =
                std::uint16_t(off + regs_[sreg]);
            src = byte_mode ? mem_[a] : read16(a);
            src_cycles = 3;
        } else if (as == 3 && sreg == 0) { // immediate @PC+
            src = fetch();
            src_cycles = 2;
        } else {
            return false; // unimplemented source mode
        }

        // Destination operand.
        std::uint16_t daddr = 0;
        bool dst_mem = false;
        std::uint16_t dst = 0;
        unsigned dst_cycles = 0;
        if (ad == 0) {
            dst = regs_[dreg];
        } else {
            dst_mem = true;
            if (dreg == 2) { // absolute
                daddr = fetch();
            } else { // indexed (offset first, as in the src path)
                const std::uint16_t off = fetch();
                daddr = std::uint16_t(off + regs_[dreg]);
            }
            dst = byte_mode ? mem_[daddr] : read16(daddr);
            dst_cycles = 3;
        }

        const std::uint16_t mask = byte_mode ? 0xff : 0xffff;
        const std::uint16_t msb = byte_mode ? 0x80 : 0x8000;
        std::uint16_t result = 0;
        bool write_back = true;
        switch (op) {
          case Op2::MOV:
            result = src;
            break;
          case Op2::ADD:
          case Op2::ADDC: {
            const unsigned cin =
                (op == Op2::ADDC && carry()) ? 1 : 0;
            const unsigned full =
                (dst & mask) + (src & mask) + cin;
            result = std::uint16_t(full & mask);
            setFlag(flagC, full > mask);
            setFlag(flagZ, result == 0);
            setFlag(flagN, result & msb);
            setFlag(flagV, ((dst ^ result) & (src ^ result) & msb));
            break;
          }
          case Op2::SUB:
          case Op2::SUBC:
          case Op2::CMP: {
            const unsigned cin =
                op == Op2::SUBC ? (carry() ? 1 : 0) : 1;
            const unsigned full =
                (dst & mask) + ((~src) & mask) + cin;
            result = std::uint16_t(full & mask);
            setFlag(flagC, full > mask);
            setFlag(flagZ, result == 0);
            setFlag(flagN, result & msb);
            setFlag(flagV,
                    ((dst ^ src) & (dst ^ result) & msb));
            write_back = op != Op2::CMP;
            break;
          }
          case Op2::AND:
            result = dst & src & mask;
            setFlag(flagZ, result == 0);
            setFlag(flagN, result & msb);
            setFlag(flagC, result != 0);
            setFlag(flagV, false);
            break;
          case Op2::XOR:
            result = (dst ^ src) & mask;
            setFlag(flagZ, result == 0);
            setFlag(flagN, result & msb);
            setFlag(flagC, result != 0);
            // SLAU049: XOR sets V when both operands are negative
            // (the old always-false here diverged from the manual;
            // found by the batch-vs-scalar differential fuzz).
            setFlag(flagV, dst & src & msb);
            break;
          case Op2::BIS:
            result = (dst | src) & mask;
            break;
          case Op2::BIC:
            result = dst & std::uint16_t(~src) & mask;
            break;
          default:
            return false; // unimplemented format-I opcode
        }

        if (write_back) {
            if (dst_mem) {
                if (byte_mode) {
                    if (!write8(daddr, std::uint8_t(result)))
                        return false;
                } else {
                    if (!write16(daddr, result))
                        return false;
                }
            } else {
                regs_[dreg] =
                    byte_mode ? std::uint16_t(result & 0xff)
                              : result;
            }
        }

        cycles += 1 + src_cycles + dst_cycles;
        return true;
    }

    void
    rrcValue(std::uint16_t v, bool byte_mode, std::uint16_t *reg_out)
    {
        // SLAU049: byte-mode RRC rotates the low byte only (the
        // old code shifted the full register first, leaking bit 8
        // into bit 7), and RRC always resets V. Both divergences
        // were flushed out by the batch-vs-scalar fuzz.
        v &= byte_mode ? 0xff : 0xffff;
        const std::uint16_t msb_in =
            carry() ? (byte_mode ? 0x80 : 0x8000) : 0;
        setFlag(flagC, v & 1);
        v_ = std::uint16_t((v >> 1) | msb_in);
        setFlag(flagZ, v_ == 0);
        setFlag(flagN, v_ & (byte_mode ? 0x80 : 0x8000));
        setFlag(flagV, false);
        if (reg_out)
            *reg_out = v_;
    }

    std::vector<std::uint8_t> mem_;
    std::uint16_t codeEnd_;
    std::array<std::uint16_t, 16> regs_{};
    std::uint16_t v_ = 0;
    bool halted_ = false;
};

/** Predecoded instruction kinds of the batch engine. */
enum Kind430 : std::uint8_t
{
    K430Bad = 0, ///< killed right after the instruction fetch
    K430Halt,
    K430Jump,
    K430RrcReg,
    K430RrcAbs,
    K430Fmt1,
};

/**
 * One predecoded code word. Operand extension words live in the
 * read-only image, so they are cached here too (ext1/ext2) whenever
 * every word the instruction consumes is inside the image
 * (fastExt); an instruction whose PC legally runs off the end
 * mid-instruction falls back to the general memory view, which is
 * what the scalar oracle always reads through.
 */
struct Dec430
{
    std::uint8_t kind = K430Bad;
    std::uint8_t cond = 0;  ///< K430Jump: Jcc index
    std::uint8_t op = 0;    ///< K430Fmt1: Op2 value
    std::uint8_t sreg = 0;
    std::uint8_t dreg = 0;  ///< also the K430RrcReg register
    std::uint8_t as = 0;
    bool ad = false;
    bool byteMode = false;
    bool srcOk = false; ///< source mode implemented (kill pre-fetch)
    bool opOk = false;  ///< opcode implemented (kill post-operands)
    std::int16_t off = 0; ///< K430Jump: word offset
    std::uint8_t extCount = 0; ///< extension words consumed
    bool fastExt = false; ///< all consumed words inside the image
    std::uint16_t ext1 = 0, ext2 = 0; ///< cached extension words
};

/**
 * Struct-of-arrays MSP430 batch engine. All machines share one
 * read-only code image and its predecoded Dec430 table; per-machine
 * state is the 16-entry register file, an msp430RamWindow-byte RAM
 * arena (vs. the scalar oracle's 64 KiB flat memory), and the
 * retirement counters. Every architectural effect - flag order,
 * partial word writes on a kill, PC-relative operand reads - mirrors
 * the scalar Machine bit for bit.
 */
class Batch430
{
  public:
    Batch430(std::vector<std::uint16_t> code, std::size_t machines)
        : code_(std::move(code)),
          codeEnd_(std::uint16_t(codeBase + 2 * code_.size())),
          dec_(code_.size()),
          regs_(machines * 16, 0),
          ram_(machines * std::size_t(msp430RamWindow), 0),
          status_(machines, MachineStatus::Halted),
          insns_(machines, 0),
          cycles_(machines, 0)
    {
        for (std::size_t i = 0; i < code_.size(); ++i) {
            Dec430 d = decode(code_[i]);
            // Cache the extension words an implemented instruction
            // consumes (they are in the read-only image). The count
            // is unused when srcOk is false - exec kills before any
            // operand fetch.
            unsigned ext = 0;
            if (d.kind == K430RrcAbs) {
                ext = 1;
            } else if (d.kind == K430Fmt1 && d.srcOk) {
                if (d.sreg != 3 && (d.as == 1 || d.as == 3))
                    ++ext; // absolute / indexed / immediate
                if (d.ad)
                    ++ext; // absolute or indexed destination
            }
            d.extCount = std::uint8_t(ext);
            if (ext >= 1 && i + 1 < code_.size())
                d.ext1 = code_[i + 1];
            if (ext >= 2 && i + 2 < code_.size())
                d.ext2 = code_[i + 2];
            d.fastExt = i + ext < code_.size();
            dec_[i] = d;
        }
        for (std::size_t m = 0; m < machines; ++m)
            regs_[m * 16] = codeBase;
    }

    std::uint8_t *
    ram(std::size_t m)
    {
        return &ram_[m * std::size_t(msp430RamWindow)];
    }

    std::uint16_t
    reg(std::size_t m, unsigned r) const
    {
        return regs_[m * 16 + r];
    }

    void
    setReg(std::size_t m, unsigned r, std::uint16_t v)
    {
        regs_[m * 16 + r] = v;
    }

    MachineStatus status(std::size_t m) const { return status_[m]; }
    std::uint64_t instructions(std::size_t m) const { return insns_[m]; }
    std::uint64_t cycles(std::size_t m) const { return cycles_[m]; }

    /**
     * Run machines [begin, end) in lock step: a quantum of up to
     * issQuantum instructions per still-active machine per round,
     * retiring machines out of the active mask as they halt,
     * exhaust the budget, or die. The quantum keeps one machine's
     * registers, RAM window, and counters hot (and its counters in
     * locals) instead of interleaving every machine's state one
     * instruction at a time; results are quantum-invariant because
     * machines never interact. Blocks are at most issBlockMachines
     * wide, and distinct blocks touch disjoint state, so blocks may
     * run on pool threads.
     */
    void
    runBlock(std::size_t begin, std::size_t end,
             std::uint64_t max_steps)
    {
        std::uint64_t active = 0;
        for (std::size_t m = begin; m < end; ++m)
            active |= std::uint64_t(1) << (m - begin);
        while (active) {
            for (std::uint64_t w = active; w; w &= w - 1) {
                const unsigned b =
                    unsigned(__builtin_ctzll(w));
                const int st = runQuantum(begin + b, max_steps);
                if (st >= 0) {
                    status_[begin + b] = MachineStatus(st);
                    active &= ~(std::uint64_t(1) << b);
                }
            }
        }
    }

  private:
    static Dec430
    decode(std::uint16_t iw)
    {
        Dec430 d;
        if (iw == 0xFFFF) {
            d.kind = K430Halt;
            return d;
        }
        if ((iw >> 13) == 1) { // 001x: jumps
            const auto cond = Jcc((iw >> 10) & 7);
            switch (cond) {
              case Jcc::JNE:
              case Jcc::JEQ:
              case Jcc::JNC:
              case Jcc::JC:
              case Jcc::JMP:
                break;
              default:
                return d; // JN/JGE/JL: killed
            }
            d.kind = K430Jump;
            d.cond = std::uint8_t(cond);
            d.off = std::int16_t(int(signExtend(iw & 0x3ff, 10)));
            return d;
        }
        if ((iw >> 10) == 0b000100) { // format II
            const unsigned opc = (iw >> 7) & 7;
            const unsigned ad = (iw >> 4) & 3;
            const unsigned reg = iw & 0xf;
            d.byteMode = (iw >> 6) & 1;
            if (opc != 0)
                return d; // only RRC implemented
            if (ad == 0) {
                d.kind = K430RrcReg;
                d.dreg = std::uint8_t(reg);
                return d;
            }
            if (ad != 1 || reg != 2)
                return d;
            d.kind = K430RrcAbs;
            return d;
        }
        d.kind = K430Fmt1;
        d.op = std::uint8_t(iw >> 12);
        d.sreg = std::uint8_t((iw >> 8) & 0xf);
        d.ad = (iw >> 7) & 1;
        d.byteMode = (iw >> 6) & 1;
        d.as = std::uint8_t((iw >> 4) & 3);
        d.dreg = std::uint8_t(iw & 0xf);
        d.srcOk = d.sreg == 3 || d.as == 0 || d.as == 1 ||
                  (d.as == 3 && d.sreg == 0);
        switch (Op2(d.op)) {
          case Op2::MOV:
          case Op2::ADD:
          case Op2::ADDC:
          case Op2::SUB:
          case Op2::SUBC:
          case Op2::CMP:
          case Op2::BIS:
          case Op2::BIC:
          case Op2::XOR:
          case Op2::AND:
            d.opOk = true;
            break;
          default:
            d.opOk = false; // BIT and friends: killed
        }
        return d;
    }

    /**
     * Read through the scalar oracle's memory view: the per-machine
     * RAM window, then the shared code image, then zeros. The RAM
     * window is passed as a pointer so the quantum loop resolves a
     * machine's base exactly once.
     */
    std::uint8_t
    read8(const std::uint8_t *ram, std::uint16_t a) const
    {
        if (a < msp430RamWindow)
            return ram[a];
        if (a >= codeBase && a < codeEnd_) {
            const std::uint16_t w = code_[(a - codeBase) >> 1];
            return std::uint8_t((a & 1) ? (w >> 8) : (w & 0xff));
        }
        return 0;
    }

    std::uint16_t
    read16(const std::uint8_t *ram, std::uint16_t a) const
    {
        return std::uint16_t(read8(ram, a) |
                             (read8(ram, std::uint16_t(a + 1)) << 8));
    }

    [[nodiscard]] static bool
    write8(std::uint8_t *ram, std::uint16_t a, std::uint8_t v)
    {
        if (a >= msp430RamWindow)
            return false;
        ram[a] = v;
        return true;
    }

    [[nodiscard]] static bool
    write16(std::uint8_t *ram, std::uint16_t a, std::uint16_t v)
    {
        // Low byte first - a word write straddling the window edge
        // lands its low byte before the kill, like the oracle.
        return write8(ram, a, std::uint8_t(v & 0xff)) &&
               write8(ram, std::uint16_t(a + 1),
                      std::uint8_t(v >> 8));
    }

    std::uint16_t
    fetch16(std::uint16_t *R, const std::uint8_t *ram)
    {
        const std::uint16_t w = read16(ram, R[0]);
        R[0] = std::uint16_t(R[0] + 2);
        return w;
    }

    static void
    setFlag(std::uint16_t *R, std::uint16_t bit, bool v)
    {
        if (v)
            R[2] |= bit;
        else
            R[2] &= std::uint16_t(~bit);
    }

    std::uint16_t
    rrcValue(std::uint16_t *R, std::uint16_t v, bool byte_mode)
    {
        v &= byte_mode ? 0xff : 0xffff;
        const std::uint16_t msb_in =
            (R[2] & flagC) ? (byte_mode ? 0x80 : 0x8000) : 0;
        setFlag(R, flagC, v & 1);
        const auto out = std::uint16_t((v >> 1) | msb_in);
        setFlag(R, flagZ, out == 0);
        setFlag(R, flagN, out & (byte_mode ? 0x80 : 0x8000));
        setFlag(R, flagV, false);
        return out;
    }

    /**
     * Up to issQuantum scalar-oracle run-loop iterations for
     * machine m: -1 while the machine is still running, otherwise
     * its final MachineStatus.
     */
    int
    runQuantum(std::size_t m, std::uint64_t max_steps)
    {
        std::uint16_t *const R = &regs_[m * 16];
        std::uint8_t *const ram =
            &ram_[m * std::size_t(msp430RamWindow)];
        std::uint64_t insns = insns_[m], cycles = cycles_[m];
        int result = -1;
        for (unsigned q = 0; q < issQuantum; ++q) {
            if (insns >= max_steps) {
                result = int(MachineStatus::OutOfBudget);
                break;
            }
            const std::uint16_t pc = R[0];
            if (pc < codeBase || pc >= codeEnd_ || (pc & 1)) {
                result = int(MachineStatus::Killed);
                break;
            }
            bool halted = false;
            if (!exec(R, ram, cycles, halted)) {
                result = int(MachineStatus::Killed);
                break;
            }
            ++insns;
            if (halted) {
                result = int(MachineStatus::Halted);
                break;
            }
        }
        insns_[m] = insns;
        cycles_[m] = cycles;
        return result;
    }

    bool
    exec(std::uint16_t *R, std::uint8_t *ram, std::uint64_t &cycles,
         bool &halted)
    {
        const Dec430 &d = dec_[(R[0] - codeBase) >> 1];
        R[0] = std::uint16_t(R[0] + 2); // instruction-word fetch

        switch (d.kind) {
          case K430Bad:
            return false;
          case K430Halt:
            halted = true;
            ++cycles;
            return true;
          case K430Jump: {
            bool take = false;
            switch (Jcc(d.cond)) {
              case Jcc::JNE: take = !(R[2] & flagZ); break;
              case Jcc::JEQ: take = R[2] & flagZ; break;
              case Jcc::JNC: take = !(R[2] & flagC); break;
              case Jcc::JC: take = R[2] & flagC; break;
              default: take = true; break; // JMP
            }
            if (take)
                R[0] = std::uint16_t(R[0] + 2 * d.off);
            cycles += 2;
            return true;
          }
          case K430RrcReg:
            R[d.dreg] = rrcValue(R, R[d.dreg], d.byteMode);
            cycles += 1;
            return true;
          case K430RrcAbs: {
            std::uint16_t addr;
            if (d.fastExt) {
                addr = d.ext1;
                R[0] = std::uint16_t(R[0] + 2);
            } else {
                addr = fetch16(R, ram);
            }
            const std::uint16_t v = d.byteMode
                                        ? read8(ram, addr)
                                        : read16(ram, addr);
            const std::uint16_t out = rrcValue(R, v, d.byteMode);
            if (d.byteMode) {
                if (!write8(ram, addr, std::uint8_t(out)))
                    return false;
            } else {
                if (!write16(ram, addr, out))
                    return false;
            }
            cycles += 4;
            return true;
          }
          case K430Fmt1:
            break;
        }

        // Format I. Source operand first, as in the oracle. The
        // extension-word fetches take the cached copy when the
        // whole instruction is inside the image (the common case);
        // the PC advances identically either way, so X(R0)
        // addressing still sees the post-fetch PC.
        unsigned extIdx = 0;
        const auto fetchExt = [&]() -> std::uint16_t {
            if (d.fastExt) {
                const std::uint16_t w =
                    extIdx++ ? d.ext2 : d.ext1;
                R[0] = std::uint16_t(R[0] + 2);
                return w;
            }
            return fetch16(R, ram);
        };
        if (!d.srcOk)
            return false;
        std::uint16_t src = 0;
        unsigned src_cycles = 0;
        if (d.sreg == 3) { // constant generator R3
            switch (d.as) {
              case 0: src = 0; break;
              case 1: src = 1; break;
              case 2: src = 2; break;
              case 3: src = 0xffff; break;
            }
        } else if (d.as == 0) {
            src = R[d.sreg];
        } else if (d.as == 1 && d.sreg == 2) { // absolute
            const std::uint16_t a = fetchExt();
            src = d.byteMode ? read8(ram, a) : read16(ram, a);
            src_cycles = 3;
        } else if (d.as == 1) { // indexed
            const std::uint16_t off = fetchExt();
            const std::uint16_t a = std::uint16_t(off + R[d.sreg]);
            src = d.byteMode ? read8(ram, a) : read16(ram, a);
            src_cycles = 3;
        } else { // immediate @PC+
            src = fetchExt();
            src_cycles = 2;
        }

        std::uint16_t daddr = 0;
        bool dst_mem = false;
        std::uint16_t dst = 0;
        unsigned dst_cycles = 0;
        if (!d.ad) {
            dst = R[d.dreg];
        } else {
            dst_mem = true;
            if (d.dreg == 2) { // absolute
                daddr = fetchExt();
            } else { // indexed
                const std::uint16_t off = fetchExt();
                daddr = std::uint16_t(off + R[d.dreg]);
            }
            dst = d.byteMode ? read8(ram, daddr) : read16(ram, daddr);
            dst_cycles = 3;
        }

        if (!d.opOk)
            return false; // after operand evaluation, like the oracle

        // Flag updates build the new SR in a local and store it
        // once (the scalar oracle's setFlag order is respected by
        // construction: all four bits come from the same result).
        const std::uint16_t mask = d.byteMode ? 0xff : 0xffff;
        const std::uint16_t msb = d.byteMode ? 0x80 : 0x8000;
        constexpr std::uint16_t flagAll =
            flagC | flagZ | flagN | flagV;
        std::uint16_t sr = R[2];
        std::uint16_t result = 0;
        bool write_back = true;
        switch (Op2(d.op)) {
          case Op2::MOV:
            result = src;
            break;
          case Op2::ADD:
          case Op2::ADDC: {
            const unsigned cin =
                (Op2(d.op) == Op2::ADDC && (sr & flagC)) ? 1 : 0;
            const unsigned full =
                (dst & mask) + (src & mask) + cin;
            result = std::uint16_t(full & mask);
            sr &= std::uint16_t(~flagAll);
            if (full > mask)
                sr |= flagC;
            if (result == 0)
                sr |= flagZ;
            if (result & msb)
                sr |= flagN;
            if ((dst ^ result) & (src ^ result) & msb)
                sr |= flagV;
            break;
          }
          case Op2::SUB:
          case Op2::SUBC:
          case Op2::CMP: {
            const unsigned cin =
                Op2(d.op) == Op2::SUBC ? ((sr & flagC) ? 1 : 0)
                                       : 1;
            const unsigned full =
                (dst & mask) + ((~src) & mask) + cin;
            result = std::uint16_t(full & mask);
            sr &= std::uint16_t(~flagAll);
            if (full > mask)
                sr |= flagC;
            if (result == 0)
                sr |= flagZ;
            if (result & msb)
                sr |= flagN;
            if ((dst ^ src) & (dst ^ result) & msb)
                sr |= flagV;
            write_back = Op2(d.op) != Op2::CMP;
            break;
          }
          case Op2::AND:
            result = dst & src & mask;
            sr &= std::uint16_t(~flagAll);
            if (result == 0)
                sr |= flagZ;
            if (result & msb)
                sr |= flagN;
            if (result != 0)
                sr |= flagC;
            break;
          case Op2::XOR:
            result = (dst ^ src) & mask;
            sr &= std::uint16_t(~flagAll);
            if (result == 0)
                sr |= flagZ;
            if (result & msb)
                sr |= flagN;
            if (result != 0)
                sr |= flagC;
            if (dst & src & msb)
                sr |= flagV;
            break;
          case Op2::BIS:
            result = (dst | src) & mask;
            break;
          default: // BIC (decode admits nothing else here)
            result = dst & std::uint16_t(~src) & mask;
            break;
        }
        R[2] = sr; // before write_back, which may overwrite SR

        if (write_back) {
            if (dst_mem) {
                if (d.byteMode) {
                    if (!write8(ram, daddr, std::uint8_t(result)))
                        return false;
                } else {
                    if (!write16(ram, daddr, result))
                        return false;
                }
            } else {
                R[d.dreg] = d.byteMode
                                ? std::uint16_t(result & 0xff)
                                : result;
            }
        }

        cycles += 1 + src_cycles + dst_cycles;
        return true;
    }

    std::vector<std::uint16_t> code_; ///< shared, read-only
    std::uint16_t codeEnd_;
    std::vector<Dec430> dec_; ///< predecoded, one per code word
    std::vector<std::uint16_t> regs_; ///< 16 per machine
    std::vector<std::uint8_t> ram_;   ///< msp430RamWindow per machine
    std::vector<MachineStatus> status_;
    std::vector<std::uint64_t> insns_;
    std::vector<std::uint64_t> cycles_;
};

unsigned
bytesPerLogicalWord(const IrProgram &prog)
{
    return prog.width <= 8 ? 1 : prog.width / 8;
}

} // anonymous namespace

LegacySize
sizeMsp430(const IrProgram &prog)
{
    Compiler c(prog);
    LegacySize sz;
    sz.codeBytes = c.take().size() * 2;
    sz.dataBytes = prog.dataWords * bytesPerLogicalWord(prog);
    return sz;
}

LegacyRun
runMsp430(const IrProgram &prog,
          const std::vector<std::uint64_t> &inputs,
          std::uint64_t max_steps)
{
    Compiler c(prog);
    auto code = c.take();

    LegacyRun result;
    result.codeBytes = code.size() * 2;
    result.dataBytes = prog.dataWords * bytesPerLogicalWord(prog);

    Machine m(code);
    const unsigned bpw = bytesPerLogicalWord(prog);
    fatalIf(inputs.size() != prog.inputAddrs.size(),
            "runMsp430: input count mismatch");
    for (std::size_t i = 0; i < inputs.size(); ++i)
        for (unsigned k = 0; k < bpw; ++k)
            m.byteAt(std::uint16_t(dataBase +
                                   prog.inputAddrs[i] * bpw + k)) =
                std::uint8_t(inputs[i] >> (8 * k));

    const MachineStatus st =
        m.run(max_steps, result.instructions, result.cycles);
    fatalIf(st == MachineStatus::OutOfBudget,
            "msp430: step budget exhausted");
    fatalIf(st == MachineStatus::Killed,
            "msp430: machine killed (bad pc or trap)");

    for (unsigned addr : prog.outputAddrs) {
        std::uint64_t v = 0;
        for (unsigned k = 0; k < bpw; ++k)
            v |= std::uint64_t(m.byteAt(std::uint16_t(
                     dataBase + addr * bpw + k)))
                 << (8 * k);
        result.outputs.push_back(v & maskBits(prog.width));
    }
    return result;
}

Msp430RawRun
runMsp430Raw(const Msp430RawState &init, IssEngine engine,
             std::uint64_t max_steps)
{
    fatalIf(init.ram.size() > msp430RamWindow,
            "runMsp430Raw: RAM image exceeds the writable window");
    Msp430RawRun out;
    out.ram.resize(init.ram.size());
    if (engine == IssEngine::Scalar) {
        Machine m(init.code);
        for (unsigned r = 1; r < 16; ++r)
            m.setReg(r, init.regs[r]);
        for (std::size_t i = 0; i < init.ram.size(); ++i)
            m.byteAt(std::uint16_t(i)) = init.ram[i];
        out.status = m.run(max_steps, out.instructions, out.cycles);
        for (unsigned r = 0; r < 16; ++r)
            out.regs[r] = m.reg(r);
        for (std::size_t i = 0; i < init.ram.size(); ++i)
            out.ram[i] = m.byteAt(std::uint16_t(i));
    } else {
        Batch430 b(init.code, 1);
        for (unsigned r = 1; r < 16; ++r)
            b.setReg(0, r, init.regs[r]);
        for (std::size_t i = 0; i < init.ram.size(); ++i)
            b.ram(0)[i] = init.ram[i];
        b.runBlock(0, 1, max_steps);
        out.status = b.status(0);
        out.instructions = b.instructions(0);
        out.cycles = b.cycles(0);
        for (unsigned r = 0; r < 16; ++r)
            out.regs[r] = b.reg(0, r);
        for (std::size_t i = 0; i < init.ram.size(); ++i)
            out.ram[i] = b.ram(0)[i];
    }
    return out;
}

IssBatchResult
batchRunMsp430(const IrProgram &prog,
               const std::vector<std::vector<std::uint64_t>> &inputs,
               const IssBatchOptions &opts)
{
    Compiler c(prog);
    auto code = c.take();
    const unsigned bpw = bytesPerLogicalWord(prog);
    const std::size_t machines = inputs.size();

    IssBatchResult res;
    res.codeBytes = code.size() * 2;
    res.dataBytes = prog.dataWords * bpw;
    res.runs.resize(machines);
    res.status.resize(machines, MachineStatus::Halted);
    for (std::size_t m = 0; m < machines; ++m) {
        fatalIf(inputs[m].size() != prog.inputAddrs.size(),
                "batchRunMsp430: input count mismatch");
        res.runs[m].codeBytes = res.codeBytes;
        res.runs[m].dataBytes = res.dataBytes;
    }

    const auto inputByte = [&](std::size_t m, std::size_t i,
                               unsigned k) {
        return std::uint8_t(inputs[m][i] >> (8 * k));
    };
    const auto readOutputs = [&](LegacyRun &run, auto &&byte_at) {
        for (unsigned addr : prog.outputAddrs) {
            std::uint64_t v = 0;
            for (unsigned k = 0; k < bpw; ++k)
                v |= std::uint64_t(byte_at(std::uint16_t(
                         dataBase + addr * bpw + k)))
                     << (8 * k);
            run.outputs.push_back(v & maskBits(prog.width));
        }
    };

    if (opts.engine == IssEngine::Scalar) {
        issForEachBlock(opts, machines, [&](std::size_t begin,
                                            std::size_t end) {
            for (std::size_t m = begin; m < end; ++m) {
                Machine mach(code);
                for (std::size_t i = 0;
                     i < prog.inputAddrs.size(); ++i)
                    for (unsigned k = 0; k < bpw; ++k)
                        mach.byteAt(std::uint16_t(
                            dataBase + prog.inputAddrs[i] * bpw +
                            k)) = inputByte(m, i, k);
                res.status[m] =
                    mach.run(opts.maxSteps,
                             res.runs[m].instructions,
                             res.runs[m].cycles);
                readOutputs(res.runs[m], [&](std::uint16_t a) {
                    return mach.byteAt(a);
                });
            }
        });
    } else {
        fatalIf(dataBase + std::size_t(prog.dataWords) * bpw >
                    msp430RamWindow,
                "batchRunMsp430: data array exceeds the RAM window");
        Batch430 b(std::move(code), machines);
        for (std::size_t m = 0; m < machines; ++m)
            for (std::size_t i = 0; i < prog.inputAddrs.size(); ++i)
                for (unsigned k = 0; k < bpw; ++k)
                    b.ram(m)[dataBase + prog.inputAddrs[i] * bpw +
                             k] = inputByte(m, i, k);
        issForEachBlock(opts, machines, [&](std::size_t begin,
                                            std::size_t end) {
            b.runBlock(begin, end, opts.maxSteps);
        });
        for (std::size_t m = 0; m < machines; ++m) {
            res.status[m] = b.status(m);
            res.runs[m].instructions = b.instructions(m);
            res.runs[m].cycles = b.cycles(m);
            readOutputs(res.runs[m], [&](std::uint16_t a) {
                return b.ram(m)[a];
            });
        }
    }

    issFinishResult(res, opts.engine);
    return res;
}

} // namespace printed::legacy
