/**
 * @file
 * ZPU backend + instruction-set simulator (Zylin ZPU-small
 * stand-in, the paper's stack-based comparison ISA).
 *
 * The backend lowers the portable IR to ZPU-style stack code:
 * one-byte opcodes, IM immediate chains, absolute loads/stores for
 * the virtual-register slots, and NEQBRANCH/POPPC control flow.
 * Branch targets always use fixed three-byte IM chains so labels
 * can be backpatched. Values narrower than 32 bits are masked
 * after arithmetic, as compiled C with uint8/16 types would be -
 * this is exactly why the paper finds stack-ISA code bloated for
 * printed targets (Table 5's ZPU rows).
 *
 * Simplifications vs. the real ZPU (documented): LOADSP offsets
 * are not bit-4-inverted; SUB/XOR/ULESSTHAN/EQ/LSHIFTRIGHT/
 * NEQBRANCH execute natively but are taxed with a 32-cycle
 * emulation penalty each, modeling zpu_small's microcoded
 * EMULATE vectors; NEQBRANCH takes an absolute target. The base
 * CPI is 4 (Table 4).
 */

#ifndef PRINTED_LEGACY_ZPU_HH
#define PRINTED_LEGACY_ZPU_HH

#include "legacy/backend.hh"

namespace printed::legacy
{

/** Cycles per (native) instruction: Table 4 lists CPI 4. */
constexpr unsigned zpuBaseCpi = 4;

/** Extra cycles per EMULATE-class instruction. */
constexpr unsigned zpuEmulatePenalty = 32;

/** Default step budget of the public run entry points. */
constexpr std::uint64_t zpuDefaultMaxSteps = 100'000'000;

/** Compile only: code size for Table 5. */
LegacySize sizeZpu(const IrProgram &prog);

/** Compile and execute. */
LegacyRun runZpu(const IrProgram &prog,
                 const std::vector<std::uint64_t> &inputs,
                 std::uint64_t max_steps = zpuDefaultMaxSteps);

/** Batch entry: compile once, run one machine per input set. */
IssBatchResult batchRunZpu(
    const IrProgram &prog,
    const std::vector<std::vector<std::uint64_t>> &inputs,
    const IssBatchOptions &opts);

} // namespace printed::legacy

#endif // PRINTED_LEGACY_ZPU_HH
