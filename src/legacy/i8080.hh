/**
 * @file
 * Intel 8080 backend + instruction-set simulator (light8080 and
 * Z80 stand-ins).
 *
 * The backend lowers the portable IR with a naive accumulator
 * strategy (virtual registers live in RAM, every operation goes
 * through A and an HL memory pointer), matching the code-size
 * regime of sdcc at low optimization - the toolchain the paper
 * used for the Z80 and light8080 rows of Table 5.
 *
 * The simulator implements the genuine 8080 encodings and flag
 * semantics for the emitted subset (MVI/LDA/STA/LXI/MOV via M,
 * INX, ADD/ADC/SUB/SBB/ANA/ORA/XRA on M and A, RAR, STC/CMC,
 * conditional jumps, HLT). Timing comes from the published
 * per-opcode state counts: the 8080 table for light8080, the Z80
 * T-state table for the Z80 (same binary - the Z80 is binary
 * compatible with the 8080).
 */

#ifndef PRINTED_LEGACY_I8080_HH
#define PRINTED_LEGACY_I8080_HH

#include "legacy/backend.hh"

namespace printed::legacy
{

/** Which timing table to apply to the 8080-compatible binary. */
enum class I8080Timing
{
    I8080, ///< light8080 (Intel 8080 state counts)
    Z80,   ///< Zilog Z80 T-states
};

/** Compile only: code size for Table 5. */
LegacySize size8080(const IrProgram &prog);

/**
 * Compile and execute.
 * @param prog IR program
 * @param inputs logical input values (written to prog.inputAddrs)
 * @param timing which cycle table to use
 */
LegacyRun run8080(const IrProgram &prog,
                  const std::vector<std::uint64_t> &inputs,
                  I8080Timing timing = I8080Timing::I8080);

} // namespace printed::legacy

#endif // PRINTED_LEGACY_I8080_HH
