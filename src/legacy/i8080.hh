/**
 * @file
 * Intel 8080 backend + instruction-set simulator (light8080 and
 * Z80 stand-ins).
 *
 * The backend lowers the portable IR with a naive accumulator
 * strategy (virtual registers live in RAM, every operation goes
 * through A and an HL memory pointer), matching the code-size
 * regime of sdcc at low optimization - the toolchain the paper
 * used for the Z80 and light8080 rows of Table 5.
 *
 * The simulator implements the genuine 8080 encodings and flag
 * semantics for the emitted subset (MVI/LDA/STA/LXI/MOV via M,
 * INX, ADD/ADC/SUB/SBB/ANA/ORA/XRA on M and A, RAR, STC/CMC,
 * conditional jumps, HLT). Timing comes from the published
 * per-opcode state counts: the 8080 table for light8080, the Z80
 * T-state table for the Z80 (same binary - the Z80 is binary
 * compatible with the 8080).
 */

#ifndef PRINTED_LEGACY_I8080_HH
#define PRINTED_LEGACY_I8080_HH

#include "legacy/backend.hh"

namespace printed::legacy
{

/** Which timing table to apply to the 8080-compatible binary. */
enum class I8080Timing
{
    I8080, ///< light8080 (Intel 8080 state counts)
    Z80,   ///< Zilog Z80 T-states
};

/** Default step budget of the public run entry points. */
constexpr std::uint64_t i8080DefaultMaxSteps = 50'000'000;

/** Compile only: code size for Table 5. */
LegacySize size8080(const IrProgram &prog);

/**
 * Compile and execute.
 * @param prog IR program
 * @param inputs logical input values (written to prog.inputAddrs)
 * @param timing which cycle table to use
 * @param max_steps step budget; a program that executes its HLT
 *        as exactly the max_steps-th instruction still counts as
 *        halted (the budget is only exhausted if the machine would
 *        have to fetch *beyond* it), otherwise FatalError
 */
LegacyRun run8080(const IrProgram &prog,
                  const std::vector<std::uint64_t> &inputs,
                  I8080Timing timing = I8080Timing::I8080,
                  std::uint64_t max_steps = i8080DefaultMaxSteps);

/** Outcome of executing one raw machine-code image. */
struct I8080ImageRun
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    MachineStatus status = MachineStatus::Halted;
};

/**
 * Execute one raw 8080 image on M machines (no compiler, no IR):
 * machine m starts with data_pages[m] copied to the start of its
 * data page (0x9000). Used by the cycle-accounting and trap-parity
 * tests; both engines must agree exactly.
 */
std::vector<I8080ImageRun> run8080Image(
    const std::vector<std::uint8_t> &code,
    const std::vector<std::vector<std::uint8_t>> &data_pages,
    I8080Timing timing = I8080Timing::I8080,
    IssEngine engine = IssEngine::Scalar,
    std::uint64_t max_steps = i8080DefaultMaxSteps);

/** Batch entry: compile once, run one machine per input set. */
IssBatchResult batchRun8080(
    const IrProgram &prog,
    const std::vector<std::vector<std::uint64_t>> &inputs,
    I8080Timing timing, const IssBatchOptions &opts);

} // namespace printed::legacy

#endif // PRINTED_LEGACY_I8080_HH
