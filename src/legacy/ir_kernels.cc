/**
 * @file
 * The seven paper benchmarks expressed in the portable IR (the
 * source the legacy-ISA backends compile, standing in for the C
 * sources the paper fed msp430-gcc / sdcc / zpu-gcc).
 */

#include <vector>

#include "common/logging.hh"
#include "legacy/ir.hh"

namespace printed::legacy
{

namespace
{

IrProgram
irMult(unsigned width)
{
    IrBuilder b("mult", width);
    const unsigned base = b.allocWords(3); // a, b, product
    const Reg pa = b.reg(), ra = b.reg(), rb = b.reg(),
              p = b.reg(), cnt = b.reg(), one = b.reg(),
              t = b.reg();
    b.li(pa, base);
    b.ld(ra, pa);
    b.li(pa, base + 1);
    b.ld(rb, pa);
    b.li(p, 0);
    b.li(cnt, width);
    b.li(one, 1);
    const auto loop = b.newLabel("loop");
    const auto skip = b.newLabel("skip");
    b.label(loop);
    b.mov(t, rb);
    b.and_(t, one);
    b.beqz(t, skip);
    b.add(p, ra);
    b.label(skip);
    b.shl(ra);
    b.shr(rb);
    b.sub(cnt, one);
    b.bnez(cnt, loop);
    b.li(pa, base + 2);
    b.st(pa, p);
    b.halt();
    auto prog = b.take();
    prog.inputAddrs = {base, base + 1};
    prog.outputAddrs = {base + 2};
    return prog;
}

IrProgram
irDiv(unsigned width)
{
    IrBuilder b("div", width);
    const unsigned base = b.allocWords(4); // n, d, q, r
    const Reg pa = b.reg(), n = b.reg(), d = b.reg(), q = b.reg(),
              r = b.reg(), cnt = b.reg(), one = b.reg(),
              msb = b.reg(), t = b.reg();
    b.li(pa, base);
    b.ld(n, pa);
    b.li(pa, base + 1);
    b.ld(d, pa);
    b.li(q, 0);
    b.li(r, 0);
    b.li(cnt, width);
    b.li(one, 1);
    b.li(msb, std::uint64_t(1) << (width - 1));
    const auto loop = b.newLabel("loop");
    const auto nobit = b.newLabel("nobit");
    const auto nosub = b.newLabel("nosub");
    b.label(loop);
    // r = (r << 1) | msb(n); n <<= 1; q <<= 1.
    b.shl(r);
    b.mov(t, n);
    b.and_(t, msb);
    b.beqz(t, nobit);
    b.or_(r, one);
    b.label(nobit);
    b.shl(n);
    b.shl(q);
    b.bltu(r, d, nosub);
    b.sub(r, d);
    b.or_(q, one);
    b.label(nosub);
    b.sub(cnt, one);
    b.bnez(cnt, loop);
    b.li(pa, base + 2);
    b.st(pa, q);
    b.li(pa, base + 3);
    b.st(pa, r);
    b.halt();
    auto prog = b.take();
    prog.inputAddrs = {base, base + 1};
    prog.outputAddrs = {base + 2, base + 3};
    return prog;
}

IrProgram
irInSort(unsigned width)
{
    IrBuilder b("inSort", width);
    const unsigned arr = b.allocWords(kernelArrayLen);
    const Reg i = b.reg(), j = b.reg(), jm1 = b.reg(),
              key = b.reg(), v = b.reg(), lim = b.reg(),
              one = b.reg();
    b.li(one, 1);
    b.li(lim, arr + kernelArrayLen);
    b.li(i, arr + 1);
    const auto outer = b.newLabel("outer");
    const auto inner = b.newLabel("inner");
    const auto place = b.newLabel("place");
    const auto done = b.newLabel("done");
    b.label(outer);
    b.bgeu(i, lim, done);
    b.ld(key, i);
    b.mov(j, i);
    b.label(inner);
    b.beqz(j, place); // note arr base 0: j == arr means front
    b.mov(jm1, j);
    b.sub(jm1, one);
    b.ld(v, jm1);
    b.bgeu(key, v, place);
    b.st(j, v);
    b.mov(j, jm1);
    b.jmp(inner);
    b.label(place);
    b.st(j, key);
    b.add(i, one);
    b.jmp(outer);
    b.label(done);
    b.halt();
    auto prog = b.take();
    for (unsigned e = 0; e < kernelArrayLen; ++e) {
        prog.inputAddrs.push_back(arr + e);
        prog.outputAddrs.push_back(arr + e);
    }
    return prog;
}

IrProgram
irIntAvg(unsigned width)
{
    IrBuilder b("intAvg", width);
    const unsigned arr = b.allocWords(kernelArrayLen);
    const unsigned out = b.allocWords(1);
    const Reg p = b.reg(), sum = b.reg(), v = b.reg(),
              lim = b.reg(), one = b.reg();
    b.li(sum, 0);
    b.li(p, arr);
    b.li(lim, arr + kernelArrayLen);
    b.li(one, 1);
    const auto loop = b.newLabel("loop");
    b.label(loop);
    b.ld(v, p);
    b.add(sum, v);
    b.add(p, one);
    b.bltu(p, lim, loop);
    b.shr(sum);
    b.shr(sum);
    b.shr(sum);
    b.shr(sum);
    b.li(p, out);
    b.st(p, sum);
    b.halt();
    auto prog = b.take();
    for (unsigned e = 0; e < kernelArrayLen; ++e)
        prog.inputAddrs.push_back(arr + e);
    prog.outputAddrs = {out};
    return prog;
}

IrProgram
irTHold(unsigned width)
{
    IrBuilder b("tHold", width);
    const unsigned arr = b.allocWords(kernelArrayLen);
    const unsigned thr_addr = b.allocWords(1);
    const unsigned out = b.allocWords(1);
    const Reg p = b.reg(), cnt = b.reg(), v = b.reg(),
              thr = b.reg(), lim = b.reg(), one = b.reg();
    b.li(p, thr_addr);
    b.ld(thr, p);
    b.li(cnt, 0);
    b.li(p, arr);
    b.li(lim, arr + kernelArrayLen);
    b.li(one, 1);
    const auto loop = b.newLabel("loop");
    const auto skip = b.newLabel("skip");
    b.label(loop);
    b.ld(v, p);
    b.bgeu(thr, v, skip); // thr >= v: not above threshold
    b.add(cnt, one);
    b.label(skip);
    b.add(p, one);
    b.bltu(p, lim, loop);
    b.li(p, out);
    b.st(p, cnt);
    b.halt();
    auto prog = b.take();
    for (unsigned e = 0; e < kernelArrayLen; ++e)
        prog.inputAddrs.push_back(arr + e);
    prog.inputAddrs.push_back(thr_addr);
    prog.outputAddrs = {out};
    return prog;
}

IrProgram
irCrc8(unsigned width)
{
    fatalIf(width != 8, "crc8 is an 8-bit kernel");
    IrBuilder b("crc8", 8);
    const unsigned data = b.allocWords(crcStreamLen);
    const unsigned out = b.allocWords(1);
    const Reg p = b.reg(), crc = b.reg(), v = b.reg(),
              bit = b.reg(), lim = b.reg(), one = b.reg(),
              msb = b.reg(), poly = b.reg(), t = b.reg();
    b.li(crc, 0);
    b.li(p, data);
    b.li(lim, data + crcStreamLen);
    b.li(one, 1);
    b.li(msb, 0x80);
    b.li(poly, 0x07);
    const auto byteloop = b.newLabel("byteloop");
    const auto bitloop = b.newLabel("bitloop");
    const auto nofix = b.newLabel("nofix");
    b.label(byteloop);
    b.ld(v, p);
    b.xor_(crc, v);
    b.li(bit, 8);
    b.label(bitloop);
    b.mov(t, crc);
    b.and_(t, msb);
    b.shl(crc);
    b.beqz(t, nofix);
    b.xor_(crc, poly);
    b.label(nofix);
    b.sub(bit, one);
    b.bnez(bit, bitloop);
    b.add(p, one);
    b.bltu(p, lim, byteloop);
    b.li(p, out);
    b.st(p, crc);
    b.halt();
    auto prog = b.take();
    for (unsigned e = 0; e < crcStreamLen; ++e)
        prog.inputAddrs.push_back(data + e);
    prog.outputAddrs = {out};
    return prog;
}

IrProgram
irDTree(unsigned width)
{
    IrBuilder b("dTree", width);
    const unsigned s_base = b.allocWords(3);
    const unsigned out = b.allocWords(1);
    // Allocation order matters for the 8080 backend: the first
    // four virtual registers get hardware registers, so the hot
    // comparison operands come first.
    const Reg s[3] = {b.reg(), b.reg(), b.reg()};
    const Reg t = b.reg();
    const Reg p = b.reg(), cls = b.reg();
    for (unsigned i = 0; i < 3; ++i) {
        b.li(p, s_base + i);
        b.ld(s[i], p);
    }
    const auto end = b.newLabel("end");

    // Same tree shape as golden::dTree / the TP-ISA generator.
    struct Frame
    {
        unsigned node;
        bool needLabel;
    };
    auto is_internal = [](unsigned node) { return node < 51; };
    auto depth_of = [](unsigned node) {
        unsigned d = 0;
        while (node > 1) {
            node >>= 1;
            ++d;
        }
        return d;
    };
    std::vector<Frame> stack = {{1, false}};
    while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        if (f.needLabel)
            b.label("node_" + std::to_string(f.node));
        if (is_internal(f.node)) {
            b.li(t, golden::dTreeThreshold(f.node));
            b.bltu(t, s[depth_of(f.node) % 3],
                   "node_" + std::to_string(2 * f.node + 1));
            stack.push_back({2 * f.node + 1, true});
            stack.push_back({2 * f.node, false});
        } else {
            b.li(cls, f.node);
            b.jmp(end);
        }
    }
    b.label(end);
    b.li(p, out);
    b.st(p, cls);
    b.halt();
    auto prog = b.take();
    prog.inputAddrs = {s_base, s_base + 1, s_base + 2};
    prog.outputAddrs = {out};
    return prog;
}

} // anonymous namespace

IrProgram
irKernel(Kernel kind, unsigned width)
{
    switch (kind) {
      case Kernel::Mult:   return irMult(width);
      case Kernel::Div:    return irDiv(width);
      case Kernel::InSort: return irInSort(width);
      case Kernel::IntAvg: return irIntAvg(width);
      case Kernel::THold:  return irTHold(width);
      case Kernel::Crc8:   return irCrc8(width);
      case Kernel::DTree:  return irDTree(width);
      default:
        fatal("irKernel: unknown kernel");
    }
}

} // namespace printed::legacy
