/**
 * @file
 * Common interface for the legacy-ISA backends.
 *
 * Each backend compiles the portable IR (legacy/ir.hh) to real
 * machine code for its target and executes it on a matching
 * instruction-set simulator, returning code size (Table 5) and
 * dynamic counts (Section 8). See the per-target headers for the
 * documented instruction subsets and timing models.
 */

#ifndef PRINTED_LEGACY_BACKEND_HH
#define PRINTED_LEGACY_BACKEND_HH

#include <cstdint>
#include <vector>

#include "legacy/ir.hh"

namespace printed
{
class ThreadPool;
}

namespace printed::legacy
{

/** Result of compiling and running an IR program on a target. */
struct LegacyRun
{
    std::size_t codeBytes = 0;      ///< program size (Table 5)
    std::size_t dataBytes = 0;      ///< data segment size
    std::uint64_t instructions = 0; ///< dynamic instruction count
    std::uint64_t cycles = 0;       ///< dynamic cycles (ISA timing)
    std::vector<std::uint64_t> outputs;
};

/** Static code size without executing (for Table 5 sweeps). */
struct LegacySize
{
    std::size_t codeBytes = 0;
    std::size_t dataBytes = 0;
};

/**
 * Which ISS engine executes a (batch of) machine(s).
 *
 * Batch is the struct-of-arrays lock-step engine over a shared
 * predecoded code image; Scalar is the original one-machine-at-a-
 * time interpreter, kept as the bit-exact oracle. Both must produce
 * identical instruction/cycle counts, outputs, and statuses for any
 * program (the batch-vs-scalar differential tests enforce this).
 */
enum class IssEngine
{
    Batch,
    Scalar,
};

/** How a simulated machine finished. */
enum class MachineStatus : std::uint8_t
{
    Halted = 0,       ///< executed its halt instruction
    OutOfBudget = 1,  ///< hit the step budget before halting
    Killed = 2,       ///< trapped: bad opcode, PC or access fault
};

/**
 * Options for a batch ISS run.
 *
 * Results are a pure function of (program, inputs, maxSteps,
 * timing): the engine choice and the thread count never change
 * counts, outputs, or statuses, only throughput.
 */
struct IssBatchOptions
{
    IssEngine engine = IssEngine::Batch;
    std::uint64_t maxSteps = 50'000'000;
    unsigned threads = 1;          ///< 0 = hardware concurrency
    ThreadPool *pool = nullptr;    ///< optional shared pool
};

/** Result of running M machines of one program. */
struct IssBatchResult
{
    std::size_t codeBytes = 0;
    std::size_t dataBytes = 0;
    std::vector<LegacyRun> runs;             ///< per machine
    std::vector<MachineStatus> status;       ///< per machine
    std::uint64_t totalInstructions = 0;
    std::uint64_t totalCycles = 0;
};

} // namespace printed::legacy

#endif // PRINTED_LEGACY_BACKEND_HH
