/**
 * @file
 * Common interface for the legacy-ISA backends.
 *
 * Each backend compiles the portable IR (legacy/ir.hh) to real
 * machine code for its target and executes it on a matching
 * instruction-set simulator, returning code size (Table 5) and
 * dynamic counts (Section 8). See the per-target headers for the
 * documented instruction subsets and timing models.
 */

#ifndef PRINTED_LEGACY_BACKEND_HH
#define PRINTED_LEGACY_BACKEND_HH

#include <cstdint>
#include <vector>

#include "legacy/ir.hh"

namespace printed::legacy
{

/** Result of compiling and running an IR program on a target. */
struct LegacyRun
{
    std::size_t codeBytes = 0;      ///< program size (Table 5)
    std::size_t dataBytes = 0;      ///< data segment size
    std::uint64_t instructions = 0; ///< dynamic instruction count
    std::uint64_t cycles = 0;       ///< dynamic cycles (ISA timing)
    std::vector<std::uint64_t> outputs;
};

/** Static code size without executing (for Table 5 sweeps). */
struct LegacySize
{
    std::size_t codeBytes = 0;
    std::size_t dataBytes = 0;
};

} // namespace printed::legacy

#endif // PRINTED_LEGACY_BACKEND_HH
