#include "i8080.hh"

#include <array>
#include <map>

#include "common/bits.hh"
#include "common/logging.hh"
#include "legacy/batch_iss.hh"

namespace printed::legacy
{

namespace
{

// Memory map: code at 0, virtual-register file and data array on
// separate 256-byte pages so address arithmetic never carries. The
// stack (used only by CALL/RET code) lives on the top page.
constexpr std::uint16_t regBase = 0x8000;
constexpr std::uint16_t dataBase = 0x9000;

/**
 * Writable-window contract shared by both engines: the register,
 * data, and stack pages. Returns the arena page index, or -1 when
 * the address is not writable (writes there trap the machine).
 */
int
pageOf(std::uint16_t addr)
{
    switch (addr >> 8) {
      case 0x80: return 0;
      case 0x90: return 1;
      case 0xFF: return 2;
    }
    return -1;
}

// The 8080 opcodes the backend emits (plus the CALL/RET family,
// which hand-written test images use).
enum Op : std::uint8_t
{
    NOP = 0x00,
    LXI_H = 0x21,
    INX_H = 0x23,
    MVI_H = 0x26,
    LXI_SP = 0x31,
    STA = 0x32,
    MVI_A = 0x3E,
    MOV_L_A = 0x6F,
    HLT = 0x76,
    MOV_M_A = 0x77,
    MOV_A_M = 0x7E,
    ADD_M = 0x86,
    ADD_A = 0x87,
    ADC_M = 0x8E,
    ADC_A = 0x8F,
    SUB_M = 0x96,
    SBB_M = 0x9E,
    ANA_M = 0xA6,
    ANA_A = 0xA7,
    ORA_M = 0xB6,
    ORA_A = 0xB7,
    XRA_M = 0xAE,
    RAR = 0x1F,
    JNZ = 0xC2,
    JMP = 0xC3,
    JZ = 0xCA,
    JC = 0xDA,
    JNC = 0xD2,
    RET = 0xC9,
    CALL = 0xCD,
};

constexpr std::uint8_t LDA = 0x3A;

/** Register codes of the 8080 MOV/ALU matrices. */
constexpr unsigned regB = 0, regC = 1, regD = 2, regE = 3,
                   regHc = 4, regL = 5, regM = 6, regA = 7;

/**
 * Per-opcode state counts, taken-aware. cyc is the cost when a
 * conditional transfer is not taken (and the only cost of every
 * other opcode); taken is the cost when it is taken. The real
 * parts differ here: a conditional CALL costs 11/17 (8080) or
 * 10/17 (Z80) for not-taken/taken, a conditional RET 5/11 on
 * both, while conditional jumps cost a flat 10 on both. known is
 * false for opcodes outside the implemented subset (executing one
 * traps the machine on both engines).
 */
struct OpCost
{
    std::uint8_t cyc[2] = {0, 0};   ///< {8080, Z80} not-taken
    std::uint8_t taken[2] = {0, 0}; ///< {8080, Z80} taken
    bool known = false;
};

OpCost
makeCost(unsigned c8080, unsigned cz80)
{
    OpCost c;
    c.cyc[0] = c.taken[0] = std::uint8_t(c8080);
    c.cyc[1] = c.taken[1] = std::uint8_t(cz80);
    c.known = true;
    return c;
}

OpCost
makeCondCost(unsigned n8080, unsigned t8080, unsigned nz80,
             unsigned tz80)
{
    OpCost c;
    c.cyc[0] = std::uint8_t(n8080);
    c.taken[0] = std::uint8_t(t8080);
    c.cyc[1] = std::uint8_t(nz80);
    c.taken[1] = std::uint8_t(tz80);
    c.known = true;
    return c;
}

/** Condition field ccc of Jcc/Ccc/Rcc; we model NZ/Z/NC/C. */
bool
condImplemented(unsigned ccc)
{
    return ccc < 4;
}

OpCost
opCycles(std::uint8_t op)
{
    // MOV matrix (0x40-0x7F except HLT).
    if (op >= 0x40 && op <= 0x7F && op != HLT) {
        const bool mem = ((op >> 3) & 7) == regM || (op & 7) == regM;
        return mem ? makeCost(7, 7) : makeCost(5, 4);
    }
    // ALU matrix (0x80-0xBF).
    if (op >= 0x80 && op <= 0xBF)
        return (op & 7) == regM ? makeCost(7, 7) : makeCost(4, 4);
    // MVI r (00rrr110).
    if ((op & 0xC7) == 0x06)
        return ((op >> 3) & 7) == regM ? makeCost(10, 10)
                                       : makeCost(7, 7);
    // Jcc (11ccc010): 10 states taken or not, on both parts.
    if ((op & 0xC7) == 0xC2)
        return condImplemented((op >> 3) & 7) ? makeCost(10, 10)
                                              : OpCost{};
    // Ccc (11ccc100): the 8080 spends 11/17 not-taken/taken, the
    // Z80 10/17 - the first timing in the emitted subset that
    // depends on the branch outcome.
    if ((op & 0xC7) == 0xC4)
        return condImplemented((op >> 3) & 7)
                   ? makeCondCost(11, 17, 10, 17)
                   : OpCost{};
    // Rcc (11ccc000): 5/11 on both parts.
    if ((op & 0xC7) == 0xC0)
        return condImplemented((op >> 3) & 7)
                   ? makeCondCost(5, 11, 5, 11)
                   : OpCost{};

    switch (op) {
      case NOP: return makeCost(4, 4);
      case LXI_H:
      case LXI_SP: return makeCost(10, 10);
      case INX_H: return makeCost(5, 6);
      case STA: return makeCost(13, 13);
      case LDA: return makeCost(13, 13);
      case HLT: return makeCost(7, 4);
      case RAR: return makeCost(4, 4);
      case JMP: return makeCost(10, 10);
      case CALL: return makeCost(17, 17);
      case RET: return makeCost(10, 10);
      default: return OpCost{}; // unimplemented: traps
    }
}

/** Evaluate condition ccc (NZ/Z/NC/C) against the flags. */
bool
evalCond(unsigned ccc, bool z, bool cy)
{
    switch (ccc) {
      case 0: return !z;
      case 1: return z;
      case 2: return !cy;
      case 3: return cy;
    }
    panic("i8080: bad condition code");
}

/**
 * Backend: IR -> 8080 machine code.
 *
 * For 8-bit programs the first four virtual registers live in
 * B/C/D/E (the sdcc-style allocation that makes 8080 code dense);
 * the rest - and all wider programs - use RAM slots through the
 * accumulator.
 */
class Compiler
{
  public:
    explicit Compiler(const IrProgram &prog)
        : prog_(prog), bpw_((prog.width + 7) / 8),
          reg8_(prog.width == 8)
    {
        fatalIf(prog_.dataWords * bpw_ > 256,
                "compile8080: data exceeds one page");
        fatalIf(prog_.regCount * bpw_ > 256,
                "compile8080: registers exceed one page");
        for (const IrInst &in : prog_.code)
            lower(in);
        patch();
    }

    std::vector<std::uint8_t> take() { return std::move(code_); }

  private:
    std::uint16_t slot(Reg r, unsigned k) const
    {
        return std::uint16_t(regBase + r * bpw_ + k);
    }

    void byte(std::uint8_t b) { code_.push_back(b); }
    void word(std::uint16_t w)
    {
        byte(std::uint8_t(w & 0xff));
        byte(std::uint8_t(w >> 8));
    }

    void op_imm(std::uint8_t op, std::uint8_t imm)
    {
        byte(op);
        byte(imm);
    }
    void op_addr(std::uint8_t op, std::uint16_t addr)
    {
        byte(op);
        word(addr);
    }

    void
    jump(std::uint8_t op, const std::string &label)
    {
        byte(op);
        fixups_.emplace_back(code_.size(), label);
        word(0);
    }

    void
    patch()
    {
        for (const auto &[pos, label] : fixups_) {
            auto it = labels_.find(label);
            fatalIf(it == labels_.end(),
                    "compile8080: undefined label " + label);
            code_[pos] = std::uint8_t(it->second & 0xff);
            code_[pos + 1] = std::uint8_t(it->second >> 8);
        }
    }

    /** True when the vreg lives in a hardware register (B..E). */
    bool inHw(Reg r) const { return reg8_ && r < 4; }

    /** A = vreg (MOV A,r or LDA slot). */
    void
    loadA(Reg r, unsigned k = 0)
    {
        if (inHw(r))
            byte(std::uint8_t(0x78 | r)); // MOV A,r
        else
            op_addr(LDA, slot(r, k));
    }

    /** vreg = A (MOV r,A or STA slot). */
    void
    storeA(Reg r, unsigned k = 0)
    {
        if (inHw(r))
            byte(std::uint8_t(0x40 | (r << 3) | regA)); // MOV r,A
        else
            op_addr(STA, slot(r, k));
    }

    /** A = A <alu_base> vreg (register form or LXI H + M form). */
    void
    aluWith(std::uint8_t alu_base, Reg src, unsigned k = 0)
    {
        if (inHw(src)) {
            byte(std::uint8_t(alu_base | src));
        } else {
            op_addr(LXI_H, slot(src, k));
            byte(std::uint8_t(alu_base | regM));
        }
    }

    /** HL = &data[idx_reg * bpw] (data page-aligned, no carries). */
    void
    pointerFromIndex(Reg idx)
    {
        if (inHw(idx) && bpw_ == 1) {
            byte(std::uint8_t(0x40 | (regL << 3) | idx)); // MOV L,r
        } else {
            loadA(idx);
            for (unsigned s = 1; s < bpw_; s <<= 1)
                byte(ADD_A); // A *= 2
            byte(MOV_L_A);
        }
        op_imm(MVI_H, dataBase >> 8);
    }

    void
    memBinop(std::uint8_t first, std::uint8_t rest, Reg dst, Reg src)
    {
        if (bpw_ == 1) {
            loadA(dst);
            aluWith(first & 0xB8, src); // base row of the ALU matrix
            storeA(dst);
            return;
        }
        for (unsigned k = 0; k < bpw_; ++k) {
            op_addr(LDA, slot(dst, k));
            op_addr(LXI_H, slot(src, k));
            byte(k == 0 ? first : rest);
            op_addr(STA, slot(dst, k));
        }
    }

    void
    lower(const IrInst &in)
    {
        switch (in.op) {
          case IrOp::Li:
            if (bpw_ == 1 && inHw(in.dst)) {
                // MVI r, imm.
                op_imm(std::uint8_t(0x06 | (in.dst << 3)),
                       std::uint8_t(in.imm));
                break;
            }
            for (unsigned k = 0; k < bpw_; ++k) {
                op_imm(MVI_A, std::uint8_t(in.imm >> (8 * k)));
                op_addr(STA, slot(in.dst, k));
            }
            break;
          case IrOp::Mov:
            if (bpw_ == 1) {
                loadA(in.src);
                storeA(in.dst);
                break;
            }
            for (unsigned k = 0; k < bpw_; ++k) {
                op_addr(LDA, slot(in.src, k));
                op_addr(STA, slot(in.dst, k));
            }
            break;
          case IrOp::Add: memBinop(ADD_M, ADC_M, in.dst, in.src);
            break;
          case IrOp::Sub: memBinop(SUB_M, SBB_M, in.dst, in.src);
            break;
          case IrOp::And: memBinop(ANA_M, ANA_M, in.dst, in.src);
            break;
          case IrOp::Or: memBinop(ORA_M, ORA_M, in.dst, in.src);
            break;
          case IrOp::Xor: memBinop(XRA_M, XRA_M, in.dst, in.src);
            break;
          case IrOp::Shl:
            if (bpw_ == 1) {
                loadA(in.dst);
                byte(ADD_A);
                storeA(in.dst);
                break;
            }
            for (unsigned k = 0; k < bpw_; ++k) {
                op_addr(LDA, slot(in.dst, k));
                byte(k == 0 ? ADD_A : ADC_A);
                op_addr(STA, slot(in.dst, k));
            }
            break;
          case IrOp::Shr:
            if (bpw_ == 1) {
                loadA(in.dst);
                byte(ORA_A); // clears CY, A unchanged
                byte(RAR);
                storeA(in.dst);
                break;
            }
            for (unsigned k = bpw_; k-- > 0;) {
                op_addr(LDA, slot(in.dst, k));
                if (k == bpw_ - 1)
                    byte(ORA_A);
                byte(RAR);
                op_addr(STA, slot(in.dst, k));
            }
            break;
          case IrOp::Ld:
            pointerFromIndex(in.src);
            for (unsigned k = 0; k < bpw_; ++k) {
                byte(MOV_A_M);
                storeA(in.dst, k);
                if (k + 1 < bpw_)
                    byte(INX_H);
            }
            break;
          case IrOp::St:
            pointerFromIndex(in.src);
            for (unsigned k = 0; k < bpw_; ++k) {
                loadA(in.dst, k);
                byte(MOV_M_A);
                if (k + 1 < bpw_)
                    byte(INX_H);
            }
            break;
          case IrOp::Label:
            labels_[in.label] = std::uint16_t(code_.size());
            break;
          case IrOp::Jmp:
            jump(JMP, in.label);
            break;
          case IrOp::Beqz:
          case IrOp::Bnez:
            loadA(in.dst);
            if (bpw_ == 1) {
                byte(ORA_A); // MOV/LDA do not set flags on the 8080
            } else {
                for (unsigned k = 1; k < bpw_; ++k) {
                    op_addr(LXI_H, slot(in.dst, k));
                    byte(ORA_M);
                }
            }
            jump(in.op == IrOp::Beqz ? JZ : JNZ, in.label);
            break;
          case IrOp::Bltu:
          case IrOp::Bgeu:
            if (bpw_ == 1) {
                loadA(in.dst);
                aluWith(0xB8, in.src); // CMP: A - src, CY = borrow
            } else {
                for (unsigned k = 0; k < bpw_; ++k) {
                    op_addr(LDA, slot(in.dst, k));
                    op_addr(LXI_H, slot(in.src, k));
                    byte(k == 0 ? SUB_M : SBB_M);
                }
            }
            jump(in.op == IrOp::Bltu ? JC : JNC, in.label);
            break;
          case IrOp::Halt:
            byte(HLT);
            break;
        }
    }

    const IrProgram &prog_;
    unsigned bpw_;
    bool reg8_;
    std::vector<std::uint8_t> code_;
    std::map<std::string, std::uint16_t> labels_;
    std::vector<std::pair<std::size_t, std::string>> fixups_;
};

/**
 * The scalar 8080 simulator (emitted subset, genuine flag
 * semantics). This is the batch engine's bit-exact oracle: both
 * share the opCycles tables, the pageOf writable-window contract,
 * and the trap rules (undecodable opcode or PC out of code kill
 * the machine before it is charged; a bad write kills it after).
 */
class Machine
{
  public:
    explicit Machine(std::vector<std::uint8_t> code)
        : mem_(0x10000, 0), codeSize_(code.size())
    {
        std::copy(code.begin(), code.end(), mem_.begin());
    }

    std::uint8_t &at(std::uint16_t addr) { return mem_[addr]; }

    MachineStatus
    run(I8080Timing timing, std::uint64_t max_steps,
        std::uint64_t &instructions, std::uint64_t &cycles)
    {
        instructions = 0;
        cycles = 0;
        // A program that halts as exactly the max_steps-th
        // instruction is Halted, not OutOfBudget: the halt flag
        // wins whenever no further fetch is needed.
        while (!halted_) {
            if (instructions >= max_steps)
                return MachineStatus::OutOfBudget;
            if (pc_ >= codeSize_ || !step(timing, cycles))
                return MachineStatus::Killed;
            ++instructions;
        }
        return MachineStatus::Halted;
    }

  private:
    std::uint16_t
    fetch16()
    {
        const std::uint16_t lo = mem_[pc_++];
        const std::uint16_t hi = mem_[pc_++];
        return std::uint16_t(lo | (hi << 8));
    }

    void
    setSz(std::uint8_t v)
    {
        z_ = v == 0;
        s_ = (v & 0x80) != 0;
    }

    /** Checked write: only the mapped pages are writable. */
    [[nodiscard]] bool
    wr(std::uint16_t addr, std::uint8_t v)
    {
        if (pageOf(addr) < 0)
            return false;
        mem_[addr] = v;
        return true;
    }

    /** @return false when the instruction trapped (machine dies). */
    bool
    step(I8080Timing timing, std::uint64_t &cycles)
    {
        const std::uint8_t op = mem_[pc_];
        const OpCost cost = opCycles(op);
        if (!cost.known)
            return false;
        ++pc_;
        const unsigned t = timing == I8080Timing::I8080 ? 0 : 1;
        cycles += cost.cyc[t];

        auto hl = [&] { return std::uint16_t((h_ << 8) | l_); };
        auto get_reg = [&](unsigned code) -> std::uint8_t {
            switch (code) {
              case regB: return b_;
              case regC: return c_;
              case regD: return d_;
              case regE: return e_;
              case regHc: return h_;
              case regL: return l_;
              case regM: return mem_[hl()];
              case regA: return a_;
            }
            panic("i8080: bad register code");
        };

        // MOV matrix (01 ddd sss), excluding HLT.
        if (op >= 0x40 && op <= 0x7F && op != HLT) {
            const std::uint8_t v = get_reg(op & 7);
            switch ((op >> 3) & 7) {
              case regB: b_ = v; return true;
              case regC: c_ = v; return true;
              case regD: d_ = v; return true;
              case regE: e_ = v; return true;
              case regHc: h_ = v; return true;
              case regL: l_ = v; return true;
              case regM: return wr(hl(), v);
              case regA: a_ = v; return true;
            }
        }
        // ALU matrix (10 ooo sss).
        if (op >= 0x80 && op <= 0xBF) {
            const std::uint8_t v = get_reg(op & 7);
            switch ((op >> 3) & 7) {
              case 0: alu_add(v, false); break;       // ADD
              case 1: alu_add(v, cy_); break;         // ADC
              case 2: alu_sub(v, false); break;       // SUB
              case 3: alu_sub(v, cy_); break;         // SBB
              case 4: a_ &= v; cy_ = false; setSz(a_); break; // ANA
              case 5: a_ ^= v; cy_ = false; setSz(a_); break; // XRA
              case 6: a_ |= v; cy_ = false; setSz(a_); break; // ORA
              case 7: {                               // CMP
                const std::uint8_t saved = a_;
                alu_sub(v, false);
                a_ = saved;
                break;
              }
            }
            return true;
        }
        // MVI r (00 rrr 110).
        if ((op & 0xC7) == 0x06) {
            const std::uint8_t v = mem_[pc_++];
            switch ((op >> 3) & 7) {
              case regB: b_ = v; return true;
              case regC: c_ = v; return true;
              case regD: d_ = v; return true;
              case regE: e_ = v; return true;
              case regHc: h_ = v; return true;
              case regL: l_ = v; return true;
              case regM: return wr(hl(), v);
              case regA: a_ = v; return true;
            }
        }
        // Jcc (11 ccc 010).
        if ((op & 0xC7) == 0xC2 && op != JMP) {
            const std::uint16_t target = fetch16();
            if (evalCond((op >> 3) & 7, z_, cy_)) {
                pc_ = target;
                cycles += cost.taken[t] - cost.cyc[t];
            }
            return true;
        }
        // Ccc (11 ccc 100).
        if ((op & 0xC7) == 0xC4) {
            const std::uint16_t target = fetch16();
            if (evalCond((op >> 3) & 7, z_, cy_)) {
                cycles += cost.taken[t] - cost.cyc[t];
                return callTo(target);
            }
            return true;
        }
        // Rcc (11 ccc 000).
        if ((op & 0xC7) == 0xC0) {
            if (evalCond((op >> 3) & 7, z_, cy_)) {
                cycles += cost.taken[t] - cost.cyc[t];
                returnFromCall();
            }
            return true;
        }

        switch (op) {
          case NOP: break;
          case LXI_H: l_ = mem_[pc_++]; h_ = mem_[pc_++]; break;
          case LXI_SP: sp_ = fetch16(); break;
          case INX_H: {
            const std::uint16_t v = std::uint16_t(hl() + 1);
            h_ = std::uint8_t(v >> 8);
            l_ = std::uint8_t(v & 0xff);
            break;
          }
          case STA: return wr(fetch16(), a_);
          case LDA: a_ = mem_[fetch16()]; break;
          case RAR: {
            const bool new_cy = a_ & 1;
            a_ = std::uint8_t((a_ >> 1) | (cy_ ? 0x80 : 0));
            cy_ = new_cy;
            break;
          }
          case JMP: pc_ = fetch16(); break;
          case CALL: return callTo(fetch16());
          case RET: returnFromCall(); break;
          case HLT: halted_ = true; break;
          default:
            // opCycles already rejected everything unimplemented.
            panic("i8080: unimplemented opcode " +
                  std::to_string(op));
        }
        return true;
    }

    [[nodiscard]] bool
    callTo(std::uint16_t target)
    {
        --sp_;
        if (!wr(sp_, std::uint8_t(pc_ >> 8)))
            return false;
        --sp_;
        if (!wr(sp_, std::uint8_t(pc_ & 0xff)))
            return false;
        pc_ = target;
        return true;
    }

    void
    returnFromCall()
    {
        const std::uint16_t lo = mem_[sp_++];
        const std::uint16_t hi = mem_[sp_++];
        pc_ = std::uint16_t(lo | (hi << 8));
    }

    void
    alu_add(std::uint8_t v, bool carry_in)
    {
        const unsigned full = unsigned(a_) + v + (carry_in ? 1 : 0);
        a_ = std::uint8_t(full);
        cy_ = full > 0xff;
        setSz(a_);
    }

    void
    alu_sub(std::uint8_t v, bool borrow_in)
    {
        const int full = int(a_) - v - (borrow_in ? 1 : 0);
        a_ = std::uint8_t(full);
        cy_ = full < 0; // 8080: CY is the borrow flag
        setSz(a_);
    }

    std::vector<std::uint8_t> mem_;
    std::size_t codeSize_;
    std::uint16_t pc_ = 0;
    std::uint16_t sp_ = 0;
    std::uint8_t a_ = 0, h_ = 0, l_ = 0;
    std::uint8_t b_ = 0, c_ = 0, d_ = 0, e_ = 0;
    bool z_ = false, s_ = false, cy_ = false;
    bool halted_ = false;
};

/** Micro-op kinds of the predecoded batch engine. */
enum DecKind : std::uint8_t
{
    KBad = 0,
    KNop,
    KMovRR, ///< a = dst code, b = src code (neither is M)
    KMovRM, ///< a = dst code
    KMovMR, ///< b = src code
    KAluR,  ///< a = ALU row, b = src code
    KAluM,  ///< a = ALU row
    KMviR,  ///< a = dst code, imm = value
    KMviM,  ///< imm = value
    KLxiH,
    KLxiSp,
    KInxH,
    KSta,
    KLda,
    KRar,
    KJmp,
    KJcc, ///< a = ccc
    KCall,
    KCcc, ///< a = ccc
    KRet,
    KRcc, ///< a = ccc
    KHlt,
};

/** One predecoded instruction slot (indexed by PC). */
struct Dec
{
    std::uint8_t kind = KBad;
    std::uint8_t a = 0;
    std::uint8_t b = 0;
    std::uint8_t len = 1;
    std::uint16_t imm = 0;
    std::uint8_t cyc[2] = {0, 0};
    std::uint8_t taken[2] = {0, 0};
};

/**
 * The struct-of-arrays batch engine: M machines in lock-step over
 * one shared, predecoded code image. Decode happens once per code
 * byte instead of once per dynamic instruction - the big win that
 * sharing a read-only image buys - and each machine's writable
 * state is a compact 3-page arena instead of a private 64 KiB.
 */
class Batch8080
{
  public:
    Batch8080(std::vector<std::uint8_t> code, std::size_t machines)
        : code_(std::move(code)), m_(machines), pc_(machines, 0),
          sp_(machines, 0), a_(machines, 0), h_(machines, 0),
          l_(machines, 0), b_(machines, 0), c_(machines, 0),
          d_(machines, 0), e_(machines, 0), z_(machines, 0),
          s_(machines, 0), cy_(machines, 0),
          status_(machines, MachineStatus::Halted),
          insns_(machines, 0), cycles_(machines, 0),
          arena_(machines * 3 * 256, 0)
    {
        predecode();
    }

    /** The 256-byte data page (0x9000) of machine m. */
    std::uint8_t *dataPage(std::size_t m)
    {
        return &arena_[(m * 3 + 1) * 256];
    }

    std::uint64_t insns(std::size_t m) const { return insns_[m]; }
    std::uint64_t cycles(std::size_t m) const { return cycles_[m]; }
    MachineStatus status(std::size_t m) const { return status_[m]; }

    void
    run(I8080Timing timing, std::uint64_t max_steps,
        const IssBatchOptions &opts)
    {
        issForEachBlock(opts, m_, [&](std::size_t lo, std::size_t hi) {
            runBlock(lo, hi, timing, max_steps);
        });
    }

  private:
    void
    predecode()
    {
        dec_.resize(code_.size());
        for (std::size_t pc = 0; pc < code_.size(); ++pc)
            dec_[pc] = decodeAt(pc);
    }

    std::uint8_t
    codeByte(std::size_t pc) const
    {
        // Operand bytes past the end read as zero, matching the
        // scalar machine's zero-filled memory.
        return pc < code_.size() ? code_[pc] : 0;
    }

    Dec
    decodeAt(std::size_t pc) const
    {
        const std::uint8_t op = codeByte(pc);
        Dec d;
        const OpCost cost = opCycles(op);
        if (!cost.known)
            return d;
        d.cyc[0] = cost.cyc[0];
        d.cyc[1] = cost.cyc[1];
        d.taken[0] = cost.taken[0];
        d.taken[1] = cost.taken[1];
        const std::uint8_t imm8 = codeByte(pc + 1);
        const std::uint16_t imm16 =
            std::uint16_t(codeByte(pc + 1) | (codeByte(pc + 2) << 8));

        if (op >= 0x40 && op <= 0x7F && op != HLT) {
            const unsigned dst = (op >> 3) & 7, src = op & 7;
            if (dst == regM) {
                d.kind = KMovMR;
                d.b = std::uint8_t(src);
            } else if (src == regM) {
                d.kind = KMovRM;
                d.a = std::uint8_t(dst);
            } else {
                d.kind = KMovRR;
                d.a = std::uint8_t(dst);
                d.b = std::uint8_t(src);
            }
            return d;
        }
        if (op >= 0x80 && op <= 0xBF) {
            d.a = (op >> 3) & 7;
            if ((op & 7) == regM) {
                d.kind = KAluM;
            } else {
                d.kind = KAluR;
                d.b = op & 7;
            }
            return d;
        }
        if ((op & 0xC7) == 0x06) {
            const unsigned dst = (op >> 3) & 7;
            d.len = 2;
            d.imm = imm8;
            if (dst == regM) {
                d.kind = KMviM;
            } else {
                d.kind = KMviR;
                d.a = std::uint8_t(dst);
            }
            return d;
        }
        if ((op & 0xC7) == 0xC2 && op != JMP) {
            d.kind = KJcc;
            d.a = (op >> 3) & 7;
            d.len = 3;
            d.imm = imm16;
            return d;
        }
        if ((op & 0xC7) == 0xC4) {
            d.kind = KCcc;
            d.a = (op >> 3) & 7;
            d.len = 3;
            d.imm = imm16;
            return d;
        }
        if ((op & 0xC7) == 0xC0 && op != RET) {
            d.kind = KRcc;
            d.a = (op >> 3) & 7;
            return d;
        }

        switch (op) {
          case NOP: d.kind = KNop; break;
          case LXI_H: d.kind = KLxiH; d.len = 3; d.imm = imm16;
            break;
          case LXI_SP: d.kind = KLxiSp; d.len = 3; d.imm = imm16;
            break;
          case INX_H: d.kind = KInxH; break;
          case STA: d.kind = KSta; d.len = 3; d.imm = imm16; break;
          case LDA: d.kind = KLda; d.len = 3; d.imm = imm16; break;
          case RAR: d.kind = KRar; break;
          case JMP: d.kind = KJmp; d.len = 3; d.imm = imm16; break;
          case CALL: d.kind = KCall; d.len = 3; d.imm = imm16;
            break;
          case RET: d.kind = KRet; break;
          case HLT: d.kind = KHlt; break;
          default: break; // stays KBad
        }
        return d;
    }

    std::uint8_t
    rd(std::size_t m, std::uint16_t addr) const
    {
        const int p = pageOf(addr);
        if (p >= 0)
            return arena_[(m * 3 + unsigned(p)) * 256 +
                          (addr & 0xff)];
        if (addr < code_.size())
            return code_[addr];
        return 0;
    }

    [[nodiscard]] bool
    wr(std::size_t m, std::uint16_t addr, std::uint8_t v)
    {
        const int p = pageOf(addr);
        if (p < 0)
            return false;
        arena_[(m * 3 + unsigned(p)) * 256 + (addr & 0xff)] = v;
        return true;
    }

    std::uint8_t
    getReg(std::size_t m, unsigned code) const
    {
        switch (code) {
          case regB: return b_[m];
          case regC: return c_[m];
          case regD: return d_[m];
          case regE: return e_[m];
          case regHc: return h_[m];
          case regL: return l_[m];
          case regA: return a_[m];
        }
        return rd(m, std::uint16_t((h_[m] << 8) | l_[m]));
    }

    void
    setSz(std::size_t m, std::uint8_t v)
    {
        z_[m] = v == 0;
        s_[m] = (v & 0x80) != 0;
    }

    void
    aluOp(std::size_t m, unsigned row, std::uint8_t v)
    {
        switch (row) {
          case 0: aluAdd(m, v, false); break;
          case 1: aluAdd(m, v, cy_[m]); break;
          case 2: aluSub(m, v, false); break;
          case 3: aluSub(m, v, cy_[m]); break;
          case 4: a_[m] &= v; cy_[m] = 0; setSz(m, a_[m]); break;
          case 5: a_[m] ^= v; cy_[m] = 0; setSz(m, a_[m]); break;
          case 6: a_[m] |= v; cy_[m] = 0; setSz(m, a_[m]); break;
          case 7: {
            const std::uint8_t saved = a_[m];
            aluSub(m, v, false);
            a_[m] = saved;
            break;
          }
        }
    }

    void
    aluAdd(std::size_t m, std::uint8_t v, bool cin)
    {
        const unsigned full = unsigned(a_[m]) + v + (cin ? 1 : 0);
        a_[m] = std::uint8_t(full);
        cy_[m] = full > 0xff;
        setSz(m, a_[m]);
    }

    void
    aluSub(std::size_t m, std::uint8_t v, bool bin)
    {
        const int full = int(a_[m]) - v - (bin ? 1 : 0);
        a_[m] = std::uint8_t(full);
        cy_[m] = full < 0;
        setSz(m, a_[m]);
    }

    [[nodiscard]] bool
    callTo(std::size_t m, std::uint16_t target)
    {
        --sp_[m];
        if (!wr(m, sp_[m], std::uint8_t(pc_[m] >> 8)))
            return false;
        --sp_[m];
        if (!wr(m, sp_[m], std::uint8_t(pc_[m] & 0xff)))
            return false;
        pc_[m] = target;
        return true;
    }

    void
    returnFromCall(std::size_t m)
    {
        const std::uint16_t lo = rd(m, sp_[m]++);
        const std::uint16_t hi = rd(m, sp_[m]++);
        pc_[m] = std::uint16_t(lo | (hi << 8));
    }

    /**
     * Lock-step over [lo, hi): every round steps each machine
     * whose retirement-mask bit is still set by a quantum of up to
     * issQuantum instructions. The quantum is what makes the batch
     * engine fast: the machine's whole architectural state lives in
     * locals (registers) for its duration and is written back to
     * the columns once, and the machine's arena stays hot in L1.
     * Results are independent of the quantum size — machines never
     * interact — so any quantum is bit-identical to single-step
     * rounds.
     */
    void
    runBlock(std::size_t lo, std::size_t hi, I8080Timing timing,
             std::uint64_t max_steps)
    {
        const unsigned t = timing == I8080Timing::I8080 ? 0 : 1;
        std::uint64_t active =
            hi - lo == 64 ? ~std::uint64_t(0)
                          : (std::uint64_t(1) << (hi - lo)) - 1;
        while (active) {
            for (std::uint64_t w = active; w; w &= w - 1) {
                const unsigned i =
                    unsigned(__builtin_ctzll(w));
                const std::size_t m = lo + i;
                const int st = runQuantum(m, t, max_steps);
                if (st >= 0) {
                    status_[m] = MachineStatus(st);
                    active &= ~(std::uint64_t(1) << i);
                }
            }
        }
    }

    /**
     * Run machine m for up to issQuantum instructions: -1 while the
     * machine is still running, otherwise its final MachineStatus
     * (the machine retires from the block).
     */
    int
    runQuantum(std::size_t m, unsigned t, std::uint64_t max_steps)
    {
        // Hot architectural state in locals for the whole quantum.
        std::uint16_t pc = pc_[m], sp = sp_[m];
        std::uint8_t ra = a_[m], rh = h_[m], rl = l_[m];
        std::uint8_t rb = b_[m], rc = c_[m], rd8 = d_[m],
                     re = e_[m];
        std::uint8_t fz = z_[m], fs = s_[m], fcy = cy_[m];
        std::uint64_t insns = insns_[m], cycles = cycles_[m];
        std::uint8_t *const ar = &arena_[m * 3 * 256];
        const Dec *const dec = dec_.data();
        const std::size_t codeSize = code_.size();

        const auto load = [&](std::uint16_t addr) -> std::uint8_t {
            const int p = pageOf(addr);
            if (p >= 0)
                return ar[unsigned(p) * 256 + (addr & 0xff)];
            return addr < codeSize ? code_[addr] : 0;
        };
        const auto store = [&](std::uint16_t addr, std::uint8_t v) {
            const int p = pageOf(addr);
            if (p < 0)
                return false;
            ar[unsigned(p) * 256 + (addr & 0xff)] = v;
            return true;
        };
        const auto reg = [&](unsigned code) -> std::uint8_t {
            switch (code) {
              case regB: return rb;
              case regC: return rc;
              case regD: return rd8;
              case regE: return re;
              case regHc: return rh;
              case regL: return rl;
              case regA: return ra;
            }
            return load(std::uint16_t((rh << 8) | rl));
        };
        const auto setReg = [&](unsigned code, std::uint8_t v) {
            switch (code) {
              case regB: rb = v; return;
              case regC: rc = v; return;
              case regD: rd8 = v; return;
              case regE: re = v; return;
              case regHc: rh = v; return;
              case regL: rl = v; return;
              case regA: ra = v; return;
            }
            panic("i8080 batch: bad register code");
        };
        const auto setSz = [&](std::uint8_t v) {
            fz = v == 0;
            fs = (v & 0x80) != 0;
        };
        const auto aluAdd = [&](std::uint8_t v, bool cin) {
            const unsigned full = unsigned(ra) + v + (cin ? 1 : 0);
            ra = std::uint8_t(full);
            fcy = full > 0xff;
            setSz(ra);
        };
        const auto aluSub = [&](std::uint8_t v, bool bin) {
            const int full = int(ra) - v - (bin ? 1 : 0);
            ra = std::uint8_t(full);
            fcy = full < 0;
            setSz(ra);
        };
        const auto aluOp = [&](unsigned row, std::uint8_t v) {
            switch (row) {
              case 0: aluAdd(v, false); break;
              case 1: aluAdd(v, fcy); break;
              case 2: aluSub(v, false); break;
              case 3: aluSub(v, fcy); break;
              case 4: ra &= v; fcy = 0; setSz(ra); break;
              case 5: ra ^= v; fcy = 0; setSz(ra); break;
              case 6: ra |= v; fcy = 0; setSz(ra); break;
              case 7: {
                const std::uint8_t saved = ra;
                aluSub(v, false);
                ra = saved;
                break;
              }
            }
        };
        const auto callTo = [&](std::uint16_t target) {
            --sp;
            if (!store(sp, std::uint8_t(pc >> 8)))
                return false;
            --sp;
            if (!store(sp, std::uint8_t(pc & 0xff)))
                return false;
            pc = target;
            return true;
        };
        const auto ret = [&] {
            const std::uint16_t lo8 = load(sp++);
            const std::uint16_t hi8 = load(sp++);
            pc = std::uint16_t(lo8 | (hi8 << 8));
        };

        int result = -1;
        for (unsigned q = 0; q < issQuantum && result < 0; ++q) {
            if (insns >= max_steps) {
                result = int(MachineStatus::OutOfBudget);
                break;
            }
            if (pc >= codeSize) {
                result = int(MachineStatus::Killed);
                break;
            }

            const Dec d = dec[pc];
            if (d.kind == KBad) {
                result = int(MachineStatus::Killed);
                break;
            }
            cycles += d.cyc[t];
            pc = std::uint16_t(pc + d.len);

            switch (d.kind) {
              case KNop: break;
              case KMovRR: setReg(d.a, reg(d.b)); break;
              case KMovRM: setReg(d.a, reg(regM)); break;
              case KMovMR:
                if (!store(std::uint16_t((rh << 8) | rl), reg(d.b)))
                    result = int(MachineStatus::Killed);
                break;
              case KAluR: aluOp(d.a, reg(d.b)); break;
              case KAluM: aluOp(d.a, reg(regM)); break;
              case KMviR: setReg(d.a, std::uint8_t(d.imm)); break;
              case KMviM:
                if (!store(std::uint16_t((rh << 8) | rl),
                           std::uint8_t(d.imm)))
                    result = int(MachineStatus::Killed);
                break;
              case KLxiH:
                rl = std::uint8_t(d.imm & 0xff);
                rh = std::uint8_t(d.imm >> 8);
                break;
              case KLxiSp: sp = d.imm; break;
              case KInxH: {
                const std::uint16_t v =
                    std::uint16_t(((rh << 8) | rl) + 1);
                rh = std::uint8_t(v >> 8);
                rl = std::uint8_t(v & 0xff);
                break;
              }
              case KSta:
                if (!store(d.imm, ra))
                    result = int(MachineStatus::Killed);
                break;
              case KLda: ra = load(d.imm); break;
              case KRar: {
                const bool new_cy = ra & 1;
                ra = std::uint8_t((ra >> 1) | (fcy ? 0x80 : 0));
                fcy = new_cy;
                break;
              }
              case KJmp: pc = d.imm; break;
              case KJcc:
                if (evalCond(d.a, fz, fcy)) {
                    pc = d.imm;
                    cycles += std::uint64_t(d.taken[t]) - d.cyc[t];
                }
                break;
              case KCall:
                if (!callTo(d.imm))
                    result = int(MachineStatus::Killed);
                break;
              case KCcc:
                if (evalCond(d.a, fz, fcy)) {
                    cycles += std::uint64_t(d.taken[t]) - d.cyc[t];
                    if (!callTo(d.imm))
                        result = int(MachineStatus::Killed);
                }
                break;
              case KRet: ret(); break;
              case KRcc:
                if (evalCond(d.a, fz, fcy)) {
                    cycles += std::uint64_t(d.taken[t]) - d.cyc[t];
                    ret();
                }
                break;
              case KHlt:
                ++insns;
                result = int(MachineStatus::Halted);
                break;
              default:
                result = int(MachineStatus::Killed);
                break;
            }
            if (result < 0)
                ++insns;
        }

        pc_[m] = pc;
        sp_[m] = sp;
        a_[m] = ra;
        h_[m] = rh;
        l_[m] = rl;
        b_[m] = rb;
        c_[m] = rc;
        d_[m] = rd8;
        e_[m] = re;
        z_[m] = fz;
        s_[m] = fs;
        cy_[m] = fcy;
        insns_[m] = insns;
        cycles_[m] = cycles;
        return result;
    }

    std::vector<std::uint8_t> code_;
    std::vector<Dec> dec_;
    std::size_t m_;
    std::vector<std::uint16_t> pc_, sp_;
    std::vector<std::uint8_t> a_, h_, l_, b_, c_, d_, e_;
    std::vector<std::uint8_t> z_, s_, cy_;
    std::vector<MachineStatus> status_;
    std::vector<std::uint64_t> insns_, cycles_;
    std::vector<std::uint8_t> arena_;
};

} // anonymous namespace

LegacySize
size8080(const IrProgram &prog)
{
    Compiler c(prog);
    LegacySize sz;
    sz.codeBytes = c.take().size();
    sz.dataBytes = prog.dataWords * ((prog.width + 7) / 8);
    return sz;
}

LegacyRun
run8080(const IrProgram &prog,
        const std::vector<std::uint64_t> &inputs, I8080Timing timing,
        std::uint64_t max_steps)
{
    const unsigned bpw = (prog.width + 7) / 8;
    Compiler c(prog);
    auto code = c.take();

    LegacyRun result;
    result.codeBytes = code.size();
    result.dataBytes = prog.dataWords * bpw;

    Machine m(std::move(code));
    fatalIf(inputs.size() != prog.inputAddrs.size(),
            "run8080: input count mismatch");
    for (std::size_t i = 0; i < inputs.size(); ++i)
        for (unsigned k = 0; k < bpw; ++k)
            m.at(std::uint16_t(dataBase + prog.inputAddrs[i] * bpw +
                               k)) =
                std::uint8_t(inputs[i] >> (8 * k));

    const MachineStatus st =
        m.run(timing, max_steps, result.instructions, result.cycles);
    fatalIf(st == MachineStatus::OutOfBudget,
            "i8080: step budget exhausted");
    fatalIf(st == MachineStatus::Killed, "i8080: machine trapped");

    for (unsigned addr : prog.outputAddrs) {
        std::uint64_t v = 0;
        for (unsigned k = 0; k < bpw; ++k)
            v |= std::uint64_t(
                     m.at(std::uint16_t(dataBase + addr * bpw + k)))
                 << (8 * k);
        result.outputs.push_back(v & maskBits(prog.width));
    }
    return result;
}

std::vector<I8080ImageRun>
run8080Image(const std::vector<std::uint8_t> &code,
             const std::vector<std::vector<std::uint8_t>> &data_pages,
             I8080Timing timing, IssEngine engine,
             std::uint64_t max_steps)
{
    const std::size_t machines = data_pages.size();
    std::vector<I8080ImageRun> out(machines);
    for (const auto &page : data_pages)
        fatalIf(page.size() > 256,
                "run8080Image: data page too large");

    if (engine == IssEngine::Scalar) {
        for (std::size_t m = 0; m < machines; ++m) {
            Machine mach(code);
            for (std::size_t k = 0; k < data_pages[m].size(); ++k)
                mach.at(std::uint16_t(dataBase + k)) =
                    data_pages[m][k];
            out[m].status =
                mach.run(timing, max_steps, out[m].instructions,
                         out[m].cycles);
        }
        return out;
    }

    Batch8080 batch(code, machines);
    for (std::size_t m = 0; m < machines; ++m)
        std::copy(data_pages[m].begin(), data_pages[m].end(),
                  batch.dataPage(m));
    IssBatchOptions opts;
    batch.run(timing, max_steps, opts);
    for (std::size_t m = 0; m < machines; ++m) {
        out[m].instructions = batch.insns(m);
        out[m].cycles = batch.cycles(m);
        out[m].status = batch.status(m);
    }
    return out;
}

IssBatchResult
batchRun8080(const IrProgram &prog,
             const std::vector<std::vector<std::uint64_t>> &inputs,
             I8080Timing timing, const IssBatchOptions &opts)
{
    const unsigned bpw = (prog.width + 7) / 8;
    Compiler c(prog);
    const std::vector<std::uint8_t> code = c.take();
    const std::size_t machines = inputs.size();

    IssBatchResult result;
    result.codeBytes = code.size();
    result.dataBytes = prog.dataWords * bpw;
    result.runs.resize(machines);
    result.status.resize(machines, MachineStatus::Halted);
    for (std::size_t m = 0; m < machines; ++m)
        fatalIf(inputs[m].size() != prog.inputAddrs.size(),
                "batchRun8080: input count mismatch");

    auto finishMachine = [&](std::size_t m, auto &&byte_at) {
        LegacyRun &run = result.runs[m];
        run.codeBytes = result.codeBytes;
        run.dataBytes = result.dataBytes;
        for (unsigned addr : prog.outputAddrs) {
            std::uint64_t v = 0;
            for (unsigned k = 0; k < bpw; ++k)
                v |= std::uint64_t(byte_at(addr * bpw + k))
                     << (8 * k);
            run.outputs.push_back(v & maskBits(prog.width));
        }
    };

    if (opts.engine == IssEngine::Scalar) {
        issForEachBlock(opts, machines,
                        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t m = lo; m < hi; ++m) {
                Machine mach(code);
                for (std::size_t i = 0; i < inputs[m].size(); ++i)
                    for (unsigned k = 0; k < bpw; ++k)
                        mach.at(std::uint16_t(
                            dataBase + prog.inputAddrs[i] * bpw +
                            k)) =
                            std::uint8_t(inputs[m][i] >> (8 * k));
                result.status[m] = mach.run(
                    timing, opts.maxSteps,
                    result.runs[m].instructions,
                    result.runs[m].cycles);
                finishMachine(m, [&](unsigned off) {
                    return mach.at(std::uint16_t(dataBase + off));
                });
            }
        });
    } else {
        Batch8080 batch(code, machines);
        for (std::size_t m = 0; m < machines; ++m) {
            std::uint8_t *page = batch.dataPage(m);
            for (std::size_t i = 0; i < inputs[m].size(); ++i)
                for (unsigned k = 0; k < bpw; ++k)
                    page[prog.inputAddrs[i] * bpw + k] =
                        std::uint8_t(inputs[m][i] >> (8 * k));
        }
        batch.run(timing, opts.maxSteps, opts);
        for (std::size_t m = 0; m < machines; ++m) {
            result.status[m] = batch.status(m);
            result.runs[m].instructions = batch.insns(m);
            result.runs[m].cycles = batch.cycles(m);
            finishMachine(m, [&](unsigned off) {
                return batch.dataPage(m)[off];
            });
        }
    }

    issFinishResult(result, opts.engine);
    return result;
}

} // namespace printed::legacy
