#include "i8080.hh"

#include <array>
#include <map>

#include "common/bits.hh"
#include "common/logging.hh"

namespace printed::legacy
{

namespace
{

// Memory map: code at 0, virtual-register file and data array on
// separate 256-byte pages so address arithmetic never carries.
constexpr std::uint16_t regBase = 0x8000;
constexpr std::uint16_t dataBase = 0x9000;

// The 8080 opcodes the backend emits.
enum Op : std::uint8_t
{
    NOP = 0x00,
    LXI_H = 0x21,
    INX_H = 0x23,
    MVI_H = 0x26,
    STA = 0x32,
    MVI_A = 0x3E,
    MOV_L_A = 0x6F,
    HLT = 0x76,
    MOV_M_A = 0x77,
    MOV_A_M = 0x7E,
    ADD_M = 0x86,
    ADD_A = 0x87,
    ADC_M = 0x8E,
    ADC_A = 0x8F,
    SUB_M = 0x96,
    SBB_M = 0x9E,
    ANA_M = 0xA6,
    ANA_A = 0xA7,
    ORA_M = 0xB6,
    ORA_A = 0xB7,
    XRA_M = 0xAE,
    RAR = 0x1F,
    JNZ = 0xC2,
    JMP = 0xC3,
    JZ = 0xCA,
    JC = 0xDA,
    JNC = 0xD2,
};

/** Register codes of the 8080 MOV/ALU matrices. */
constexpr unsigned regB = 0, regC = 1, regD = 2, regE = 3,
                   regHc = 4, regL = 5, regM = 6, regA = 7;

/** Published state counts. First: Intel 8080, second: Z80. */
std::pair<unsigned, unsigned>
opCycles(std::uint8_t op)
{
    // MOV matrix (0x40-0x7F except HLT).
    if (op >= 0x40 && op <= 0x7F && op != HLT) {
        const bool mem = ((op >> 3) & 7) == regM || (op & 7) == regM;
        return mem ? std::pair<unsigned, unsigned>{7, 7}
                   : std::pair<unsigned, unsigned>{5, 4};
    }
    // ALU matrix (0x80-0xBF).
    if (op >= 0x80 && op <= 0xBF) {
        return (op & 7) == regM
                   ? std::pair<unsigned, unsigned>{7, 7}
                   : std::pair<unsigned, unsigned>{4, 4};
    }
    // MVI r (00rrr110).
    if ((op & 0xC7) == 0x06)
        return ((op >> 3) & 7) == regM
                   ? std::pair<unsigned, unsigned>{10, 10}
                   : std::pair<unsigned, unsigned>{7, 7};

    switch (op) {
      case NOP: return {4, 4};
      case LXI_H: return {10, 10};
      case INX_H: return {5, 6};
      case STA: return {13, 13};
      case HLT: return {7, 4};
      case RAR: return {4, 4};
      case JNZ:
      case JMP:
      case JZ:
      case JC:
      case JNC: return {10, 10};
      default:
        // LDA is 0x3A and collides with none above.
        if (op == 0x3A)
            return {13, 13};
        panic("opCycles: untabulated opcode");
    }
}

constexpr std::uint8_t LDA = 0x3A;

/**
 * Backend: IR -> 8080 machine code.
 *
 * For 8-bit programs the first four virtual registers live in
 * B/C/D/E (the sdcc-style allocation that makes 8080 code dense);
 * the rest - and all wider programs - use RAM slots through the
 * accumulator.
 */
class Compiler
{
  public:
    explicit Compiler(const IrProgram &prog)
        : prog_(prog), bpw_((prog.width + 7) / 8),
          reg8_(prog.width == 8)
    {
        fatalIf(prog_.dataWords * bpw_ > 256,
                "compile8080: data exceeds one page");
        fatalIf(prog_.regCount * bpw_ > 256,
                "compile8080: registers exceed one page");
        for (const IrInst &in : prog_.code)
            lower(in);
        patch();
    }

    std::vector<std::uint8_t> take() { return std::move(code_); }

  private:
    std::uint16_t slot(Reg r, unsigned k) const
    {
        return std::uint16_t(regBase + r * bpw_ + k);
    }

    void byte(std::uint8_t b) { code_.push_back(b); }
    void word(std::uint16_t w)
    {
        byte(std::uint8_t(w & 0xff));
        byte(std::uint8_t(w >> 8));
    }

    void op_imm(std::uint8_t op, std::uint8_t imm)
    {
        byte(op);
        byte(imm);
    }
    void op_addr(std::uint8_t op, std::uint16_t addr)
    {
        byte(op);
        word(addr);
    }

    void
    jump(std::uint8_t op, const std::string &label)
    {
        byte(op);
        fixups_.emplace_back(code_.size(), label);
        word(0);
    }

    void
    patch()
    {
        for (const auto &[pos, label] : fixups_) {
            auto it = labels_.find(label);
            fatalIf(it == labels_.end(),
                    "compile8080: undefined label " + label);
            code_[pos] = std::uint8_t(it->second & 0xff);
            code_[pos + 1] = std::uint8_t(it->second >> 8);
        }
    }

    /** True when the vreg lives in a hardware register (B..E). */
    bool inHw(Reg r) const { return reg8_ && r < 4; }

    /** A = vreg (MOV A,r or LDA slot). */
    void
    loadA(Reg r, unsigned k = 0)
    {
        if (inHw(r))
            byte(std::uint8_t(0x78 | r)); // MOV A,r
        else
            op_addr(LDA, slot(r, k));
    }

    /** vreg = A (MOV r,A or STA slot). */
    void
    storeA(Reg r, unsigned k = 0)
    {
        if (inHw(r))
            byte(std::uint8_t(0x40 | (r << 3) | regA)); // MOV r,A
        else
            op_addr(STA, slot(r, k));
    }

    /** A = A <alu_base> vreg (register form or LXI H + M form). */
    void
    aluWith(std::uint8_t alu_base, Reg src, unsigned k = 0)
    {
        if (inHw(src)) {
            byte(std::uint8_t(alu_base | src));
        } else {
            op_addr(LXI_H, slot(src, k));
            byte(std::uint8_t(alu_base | regM));
        }
    }

    /** HL = &data[idx_reg * bpw] (data page-aligned, no carries). */
    void
    pointerFromIndex(Reg idx)
    {
        if (inHw(idx) && bpw_ == 1) {
            byte(std::uint8_t(0x40 | (regL << 3) | idx)); // MOV L,r
        } else {
            loadA(idx);
            for (unsigned s = 1; s < bpw_; s <<= 1)
                byte(ADD_A); // A *= 2
            byte(MOV_L_A);
        }
        op_imm(MVI_H, dataBase >> 8);
    }

    void
    memBinop(std::uint8_t first, std::uint8_t rest, Reg dst, Reg src)
    {
        if (bpw_ == 1) {
            loadA(dst);
            aluWith(first & 0xB8, src); // base row of the ALU matrix
            storeA(dst);
            return;
        }
        for (unsigned k = 0; k < bpw_; ++k) {
            op_addr(LDA, slot(dst, k));
            op_addr(LXI_H, slot(src, k));
            byte(k == 0 ? first : rest);
            op_addr(STA, slot(dst, k));
        }
    }

    void
    lower(const IrInst &in)
    {
        switch (in.op) {
          case IrOp::Li:
            if (bpw_ == 1 && inHw(in.dst)) {
                // MVI r, imm.
                op_imm(std::uint8_t(0x06 | (in.dst << 3)),
                       std::uint8_t(in.imm));
                break;
            }
            for (unsigned k = 0; k < bpw_; ++k) {
                op_imm(MVI_A, std::uint8_t(in.imm >> (8 * k)));
                op_addr(STA, slot(in.dst, k));
            }
            break;
          case IrOp::Mov:
            if (bpw_ == 1) {
                loadA(in.src);
                storeA(in.dst);
                break;
            }
            for (unsigned k = 0; k < bpw_; ++k) {
                op_addr(LDA, slot(in.src, k));
                op_addr(STA, slot(in.dst, k));
            }
            break;
          case IrOp::Add: memBinop(ADD_M, ADC_M, in.dst, in.src);
            break;
          case IrOp::Sub: memBinop(SUB_M, SBB_M, in.dst, in.src);
            break;
          case IrOp::And: memBinop(ANA_M, ANA_M, in.dst, in.src);
            break;
          case IrOp::Or: memBinop(ORA_M, ORA_M, in.dst, in.src);
            break;
          case IrOp::Xor: memBinop(XRA_M, XRA_M, in.dst, in.src);
            break;
          case IrOp::Shl:
            if (bpw_ == 1) {
                loadA(in.dst);
                byte(ADD_A);
                storeA(in.dst);
                break;
            }
            for (unsigned k = 0; k < bpw_; ++k) {
                op_addr(LDA, slot(in.dst, k));
                byte(k == 0 ? ADD_A : ADC_A);
                op_addr(STA, slot(in.dst, k));
            }
            break;
          case IrOp::Shr:
            if (bpw_ == 1) {
                loadA(in.dst);
                byte(ORA_A); // clears CY, A unchanged
                byte(RAR);
                storeA(in.dst);
                break;
            }
            for (unsigned k = bpw_; k-- > 0;) {
                op_addr(LDA, slot(in.dst, k));
                if (k == bpw_ - 1)
                    byte(ORA_A);
                byte(RAR);
                op_addr(STA, slot(in.dst, k));
            }
            break;
          case IrOp::Ld:
            pointerFromIndex(in.src);
            for (unsigned k = 0; k < bpw_; ++k) {
                byte(MOV_A_M);
                storeA(in.dst, k);
                if (k + 1 < bpw_)
                    byte(INX_H);
            }
            break;
          case IrOp::St:
            pointerFromIndex(in.src);
            for (unsigned k = 0; k < bpw_; ++k) {
                loadA(in.dst, k);
                byte(MOV_M_A);
                if (k + 1 < bpw_)
                    byte(INX_H);
            }
            break;
          case IrOp::Label:
            labels_[in.label] = std::uint16_t(code_.size());
            break;
          case IrOp::Jmp:
            jump(JMP, in.label);
            break;
          case IrOp::Beqz:
          case IrOp::Bnez:
            loadA(in.dst);
            if (bpw_ == 1) {
                byte(ORA_A); // MOV/LDA do not set flags on the 8080
            } else {
                for (unsigned k = 1; k < bpw_; ++k) {
                    op_addr(LXI_H, slot(in.dst, k));
                    byte(ORA_M);
                }
            }
            jump(in.op == IrOp::Beqz ? JZ : JNZ, in.label);
            break;
          case IrOp::Bltu:
          case IrOp::Bgeu:
            if (bpw_ == 1) {
                loadA(in.dst);
                aluWith(0xB8, in.src); // CMP: A - src, CY = borrow
            } else {
                for (unsigned k = 0; k < bpw_; ++k) {
                    op_addr(LDA, slot(in.dst, k));
                    op_addr(LXI_H, slot(in.src, k));
                    byte(k == 0 ? SUB_M : SBB_M);
                }
            }
            jump(in.op == IrOp::Bltu ? JC : JNC, in.label);
            break;
          case IrOp::Halt:
            byte(HLT);
            break;
        }
    }

    const IrProgram &prog_;
    unsigned bpw_;
    bool reg8_;
    std::vector<std::uint8_t> code_;
    std::map<std::string, std::uint16_t> labels_;
    std::vector<std::pair<std::size_t, std::string>> fixups_;
};

/** The 8080 simulator (emitted subset, genuine flag semantics). */
class Machine
{
  public:
    explicit Machine(std::vector<std::uint8_t> code)
        : mem_(0x10000, 0)
    {
        std::copy(code.begin(), code.end(), mem_.begin());
    }

    std::uint8_t &at(std::uint16_t addr) { return mem_[addr]; }

    void
    run(I8080Timing timing, std::uint64_t max_steps,
        std::uint64_t &instructions, std::uint64_t &cycles)
    {
        instructions = 0;
        cycles = 0;
        while (!halted_) {
            fatalIf(instructions >= max_steps,
                    "i8080: step budget exhausted");
            step(timing, cycles);
            ++instructions;
        }
    }

  private:
    std::uint16_t
    fetch16()
    {
        const std::uint16_t lo = mem_[pc_++];
        const std::uint16_t hi = mem_[pc_++];
        return std::uint16_t(lo | (hi << 8));
    }

    void
    setSz(std::uint8_t v)
    {
        z_ = v == 0;
        s_ = (v & 0x80) != 0;
    }

    void
    step(I8080Timing timing, std::uint64_t &cycles)
    {
        const std::uint8_t op = mem_[pc_++];
        const auto [c8080, cz80] = opCycles(op);
        cycles += timing == I8080Timing::I8080 ? c8080 : cz80;

        auto hl = [&] { return std::uint16_t((h_ << 8) | l_); };
        auto get_reg = [&](unsigned code) -> std::uint8_t {
            switch (code) {
              case regB: return b_;
              case regC: return c_;
              case regD: return d_;
              case regE: return e_;
              case regHc: return h_;
              case regL: return l_;
              case regM: return mem_[hl()];
              case regA: return a_;
            }
            panic("i8080: bad register code");
        };
        auto set_reg = [&](unsigned code, std::uint8_t v) {
            switch (code) {
              case regB: b_ = v; return;
              case regC: c_ = v; return;
              case regD: d_ = v; return;
              case regE: e_ = v; return;
              case regHc: h_ = v; return;
              case regL: l_ = v; return;
              case regM: mem_[hl()] = v; return;
              case regA: a_ = v; return;
            }
            panic("i8080: bad register code");
        };

        // MOV matrix (01 ddd sss), excluding HLT.
        if (op >= 0x40 && op <= 0x7F && op != HLT) {
            set_reg((op >> 3) & 7, get_reg(op & 7));
            return;
        }
        // ALU matrix (10 ooo sss).
        if (op >= 0x80 && op <= 0xBF) {
            const std::uint8_t v = get_reg(op & 7);
            switch ((op >> 3) & 7) {
              case 0: alu_add(v, false); break;       // ADD
              case 1: alu_add(v, cy_); break;         // ADC
              case 2: alu_sub(v, false); break;       // SUB
              case 3: alu_sub(v, cy_); break;         // SBB
              case 4: a_ &= v; cy_ = false; setSz(a_); break; // ANA
              case 5: a_ ^= v; cy_ = false; setSz(a_); break; // XRA
              case 6: a_ |= v; cy_ = false; setSz(a_); break; // ORA
              case 7: {                               // CMP
                const std::uint8_t saved = a_;
                alu_sub(v, false);
                a_ = saved;
                break;
              }
            }
            return;
        }
        // MVI r (00 rrr 110).
        if ((op & 0xC7) == 0x06) {
            set_reg((op >> 3) & 7, mem_[pc_++]);
            return;
        }

        switch (op) {
          case NOP: break;
          case LXI_H: l_ = mem_[pc_++]; h_ = mem_[pc_++]; break;
          case INX_H: {
            const std::uint16_t v = std::uint16_t(hl() + 1);
            h_ = std::uint8_t(v >> 8);
            l_ = std::uint8_t(v & 0xff);
            break;
          }
          case STA: mem_[fetch16()] = a_; break;
          case LDA: a_ = mem_[fetch16()]; break;
          case RAR: {
            const bool new_cy = a_ & 1;
            a_ = std::uint8_t((a_ >> 1) | (cy_ ? 0x80 : 0));
            cy_ = new_cy;
            break;
          }
          case JMP: pc_ = fetch16(); break;
          case JZ: { const auto t = fetch16(); if (z_) pc_ = t;
            break; }
          case JNZ: { const auto t = fetch16(); if (!z_) pc_ = t;
            break; }
          case JC: { const auto t = fetch16(); if (cy_) pc_ = t;
            break; }
          case JNC: { const auto t = fetch16(); if (!cy_) pc_ = t;
            break; }
          case HLT: halted_ = true; break;
          default:
            panic("i8080: unimplemented opcode " +
                  std::to_string(op));
        }
    }

    void
    alu_add(std::uint8_t v, bool carry_in)
    {
        const unsigned full = unsigned(a_) + v + (carry_in ? 1 : 0);
        a_ = std::uint8_t(full);
        cy_ = full > 0xff;
        setSz(a_);
    }

    void
    alu_sub(std::uint8_t v, bool borrow_in)
    {
        const int full = int(a_) - v - (borrow_in ? 1 : 0);
        a_ = std::uint8_t(full);
        cy_ = full < 0; // 8080: CY is the borrow flag
        setSz(a_);
    }

    std::vector<std::uint8_t> mem_;
    std::uint16_t pc_ = 0;
    std::uint8_t a_ = 0, h_ = 0, l_ = 0;
    std::uint8_t b_ = 0, c_ = 0, d_ = 0, e_ = 0;
    bool z_ = false, s_ = false, cy_ = false;
    bool halted_ = false;
};

} // anonymous namespace

LegacySize
size8080(const IrProgram &prog)
{
    Compiler c(prog);
    LegacySize sz;
    sz.codeBytes = c.take().size();
    sz.dataBytes = prog.dataWords * ((prog.width + 7) / 8);
    return sz;
}

LegacyRun
run8080(const IrProgram &prog,
        const std::vector<std::uint64_t> &inputs, I8080Timing timing)
{
    const unsigned bpw = (prog.width + 7) / 8;
    Compiler c(prog);
    auto code = c.take();

    LegacyRun result;
    result.codeBytes = code.size();
    result.dataBytes = prog.dataWords * bpw;

    Machine m(std::move(code));
    fatalIf(inputs.size() != prog.inputAddrs.size(),
            "run8080: input count mismatch");
    for (std::size_t i = 0; i < inputs.size(); ++i)
        for (unsigned k = 0; k < bpw; ++k)
            m.at(std::uint16_t(dataBase + prog.inputAddrs[i] * bpw +
                               k)) =
                std::uint8_t(inputs[i] >> (8 * k));

    m.run(timing, 50'000'000, result.instructions, result.cycles);

    for (unsigned addr : prog.outputAddrs) {
        std::uint64_t v = 0;
        for (unsigned k = 0; k < bpw; ++k)
            v |= std::uint64_t(
                     m.at(std::uint16_t(dataBase + addr * bpw + k)))
                 << (8 * k);
        result.outputs.push_back(v & maskBits(prog.width));
    }
    return result;
}

} // namespace printed::legacy
