#include "ir.hh"

#include <map>

#include "common/bits.hh"
#include "common/logging.hh"

namespace printed::legacy
{

IrBuilder::IrBuilder(std::string name, unsigned width)
{
    prog_.name = std::move(name);
    prog_.width = width;
}

Reg
IrBuilder::reg()
{
    return nextReg_++;
}

unsigned
IrBuilder::allocWords(std::size_t n)
{
    const unsigned base = unsigned(prog_.dataWords);
    prog_.dataWords += n;
    return base;
}

void
IrBuilder::emit(IrInst inst)
{
    prog_.code.push_back(std::move(inst));
}

void IrBuilder::li(Reg d, std::uint64_t imm)
{
    emit({IrOp::Li, d, 0, imm, {}});
}
void IrBuilder::mov(Reg d, Reg s) { emit({IrOp::Mov, d, s, 0, {}}); }
void IrBuilder::add(Reg d, Reg s) { emit({IrOp::Add, d, s, 0, {}}); }
void IrBuilder::sub(Reg d, Reg s) { emit({IrOp::Sub, d, s, 0, {}}); }
void IrBuilder::and_(Reg d, Reg s) { emit({IrOp::And, d, s, 0, {}}); }
void IrBuilder::or_(Reg d, Reg s) { emit({IrOp::Or, d, s, 0, {}}); }
void IrBuilder::xor_(Reg d, Reg s) { emit({IrOp::Xor, d, s, 0, {}}); }
void IrBuilder::shl(Reg d) { emit({IrOp::Shl, d, 0, 0, {}}); }
void IrBuilder::shr(Reg d) { emit({IrOp::Shr, d, 0, 0, {}}); }
void IrBuilder::ld(Reg d, Reg addr)
{
    emit({IrOp::Ld, d, addr, 0, {}});
}
void IrBuilder::st(Reg addr, Reg s)
{
    emit({IrOp::St, s, addr, 0, {}});
}

std::string
IrBuilder::newLabel(const std::string &hint)
{
    return hint + "_" + std::to_string(nextLabel_++);
}

void IrBuilder::label(const std::string &l)
{
    emit({IrOp::Label, 0, 0, 0, l});
}
void IrBuilder::jmp(const std::string &l)
{
    emit({IrOp::Jmp, 0, 0, 0, l});
}
void IrBuilder::beqz(Reg r, const std::string &l)
{
    emit({IrOp::Beqz, r, 0, 0, l});
}
void IrBuilder::bnez(Reg r, const std::string &l)
{
    emit({IrOp::Bnez, r, 0, 0, l});
}
void IrBuilder::bltu(Reg a, Reg b, const std::string &l)
{
    emit({IrOp::Bltu, a, b, 0, l});
}
void IrBuilder::bgeu(Reg a, Reg b, const std::string &l)
{
    emit({IrOp::Bgeu, a, b, 0, l});
}
void IrBuilder::halt() { emit({IrOp::Halt, 0, 0, 0, {}}); }

IrProgram
IrBuilder::take()
{
    prog_.regCount = nextReg_;
    return std::move(prog_);
}

std::vector<std::uint64_t>
interpretIr(const IrProgram &prog,
            const std::vector<std::uint64_t> &init_data,
            std::uint64_t max_steps)
{
    const std::uint64_t mask = maskBits(prog.width);
    std::vector<std::uint64_t> regs(prog.regCount, 0);
    std::vector<std::uint64_t> mem(prog.dataWords, 0);
    for (std::size_t i = 0; i < init_data.size() && i < mem.size();
         ++i)
        mem[i] = init_data[i] & mask;

    std::map<std::string, std::size_t> labels;
    for (std::size_t i = 0; i < prog.code.size(); ++i)
        if (prog.code[i].op == IrOp::Label)
            labels[prog.code[i].label] = i;

    auto target = [&](const std::string &l) {
        auto it = labels.find(l);
        fatalIf(it == labels.end(),
                "interpretIr: undefined label " + l);
        return it->second;
    };

    std::uint64_t steps = 0;
    std::size_t pc = 0;
    while (pc < prog.code.size()) {
        fatalIf(++steps > max_steps, "interpretIr: step budget");
        const IrInst &in = prog.code[pc];
        std::size_t next = pc + 1;
        switch (in.op) {
          case IrOp::Li: regs[in.dst] = in.imm & mask; break;
          case IrOp::Mov: regs[in.dst] = regs[in.src]; break;
          case IrOp::Add:
            regs[in.dst] = (regs[in.dst] + regs[in.src]) & mask;
            break;
          case IrOp::Sub:
            regs[in.dst] = (regs[in.dst] - regs[in.src]) & mask;
            break;
          case IrOp::And: regs[in.dst] &= regs[in.src]; break;
          case IrOp::Or: regs[in.dst] |= regs[in.src]; break;
          case IrOp::Xor: regs[in.dst] ^= regs[in.src]; break;
          case IrOp::Shl:
            regs[in.dst] = (regs[in.dst] << 1) & mask;
            break;
          case IrOp::Shr: regs[in.dst] >>= 1; break;
          case IrOp::Ld:
            fatalIf(regs[in.src] >= mem.size(),
                    "interpretIr: load out of range");
            regs[in.dst] = mem[regs[in.src]];
            break;
          case IrOp::St:
            fatalIf(regs[in.src] >= mem.size(),
                    "interpretIr: store out of range");
            mem[regs[in.src]] = regs[in.dst];
            break;
          case IrOp::Label: break;
          case IrOp::Jmp: next = target(in.label); break;
          case IrOp::Beqz:
            if (regs[in.dst] == 0)
                next = target(in.label);
            break;
          case IrOp::Bnez:
            if (regs[in.dst] != 0)
                next = target(in.label);
            break;
          case IrOp::Bltu:
            if (regs[in.dst] < regs[in.src])
                next = target(in.label);
            break;
          case IrOp::Bgeu:
            if (regs[in.dst] >= regs[in.src])
                next = target(in.label);
            break;
          case IrOp::Halt: return mem;
        }
        pc = next;
    }
    return mem;
}

} // namespace printed::legacy
