/**
 * @file
 * MSP430 backend + instruction-set simulator (openMSP430 stand-in).
 *
 * The backend lowers the portable IR to genuine MSP430 format-I /
 * format-II / jump encodings, keeping virtual registers in RAM and
 * addressing them with absolute (&addr) mode - the code-size
 * regime of msp430-gcc at low optimization, which the paper used
 * for the openMSP430 row of Table 5. IR-level branches emit an
 * inverted short jump over a `BR #target` pair so arbitrarily far
 * targets work (the dTree program exceeds the +-511-word range of
 * conditional jumps).
 *
 * The simulator implements the emitted subset with real MSP430
 * semantics: double-operand MOV/ADD/ADDC/SUB/SUBC/CMP/BIS/BIC/
 * XOR/AND with register, absolute, indexed, and immediate modes
 * (plus the R3 constant generator for #0/#1), RRC/RRA, emulated
 * CLRC, byte/word forms, and the standard per-addressing-mode
 * cycle counts (openMSP430's CPI of 1-6 in Table 4 comes from
 * exactly this table).
 */

#ifndef PRINTED_LEGACY_MSP430_HH
#define PRINTED_LEGACY_MSP430_HH

#include <array>

#include "legacy/backend.hh"

namespace printed::legacy
{

/** Default step budget of the public run entry points. */
constexpr std::uint64_t msp430DefaultMaxSteps = 50'000'000;

/** Size of the writable RAM window of each simulated machine. */
constexpr std::uint16_t msp430RamWindow = 0x2000;

/** Compile only: code size for Table 5. */
LegacySize sizeMsp430(const IrProgram &prog);

/** Compile and execute. */
LegacyRun runMsp430(const IrProgram &prog,
                    const std::vector<std::uint64_t> &inputs,
                    std::uint64_t max_steps = msp430DefaultMaxSteps);

/**
 * A raw machine for the differential-fuzz harness: code words
 * (loaded at the code base), an initial register file (PC is
 * forced to the code base), and an initial image of the low RAM
 * window (at most msp430RamWindow bytes).
 */
struct Msp430RawState
{
    std::vector<std::uint16_t> code;
    std::array<std::uint16_t, 16> regs{};
    std::vector<std::uint8_t> ram;
};

/** Full post-run state of a raw machine. */
struct Msp430RawRun
{
    std::array<std::uint16_t, 16> regs{};
    std::vector<std::uint8_t> ram; ///< same size as the init image
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    MachineStatus status = MachineStatus::Halted;
};

/**
 * Execute one raw machine on the chosen engine and return its
 * complete architectural state. Both engines must agree bit for
 * bit - this is the probe the MSP430 status-register audit and
 * its regression tests use.
 */
Msp430RawRun runMsp430Raw(const Msp430RawState &init,
                          IssEngine engine,
                          std::uint64_t max_steps = 100'000);

/** Batch entry: compile once, run one machine per input set. */
IssBatchResult batchRunMsp430(
    const IrProgram &prog,
    const std::vector<std::vector<std::uint64_t>> &inputs,
    const IssBatchOptions &opts);

} // namespace printed::legacy

#endif // PRINTED_LEGACY_MSP430_HH
