/**
 * @file
 * MSP430 backend + instruction-set simulator (openMSP430 stand-in).
 *
 * The backend lowers the portable IR to genuine MSP430 format-I /
 * format-II / jump encodings, keeping virtual registers in RAM and
 * addressing them with absolute (&addr) mode - the code-size
 * regime of msp430-gcc at low optimization, which the paper used
 * for the openMSP430 row of Table 5. IR-level branches emit an
 * inverted short jump over a `BR #target` pair so arbitrarily far
 * targets work (the dTree program exceeds the +-511-word range of
 * conditional jumps).
 *
 * The simulator implements the emitted subset with real MSP430
 * semantics: double-operand MOV/ADD/ADDC/SUB/SUBC/CMP/BIS/BIC/
 * XOR/AND with register, absolute, indexed, and immediate modes
 * (plus the R3 constant generator for #0/#1), RRC/RRA, emulated
 * CLRC, byte/word forms, and the standard per-addressing-mode
 * cycle counts (openMSP430's CPI of 1-6 in Table 4 comes from
 * exactly this table).
 */

#ifndef PRINTED_LEGACY_MSP430_HH
#define PRINTED_LEGACY_MSP430_HH

#include "legacy/backend.hh"

namespace printed::legacy
{

/** Compile only: code size for Table 5. */
LegacySize sizeMsp430(const IrProgram &prog);

/** Compile and execute. */
LegacyRun runMsp430(const IrProgram &prog,
                    const std::vector<std::uint64_t> &inputs);

} // namespace printed::legacy

#endif // PRINTED_LEGACY_MSP430_HH
