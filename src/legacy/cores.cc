#include "cores.hh"

#include <cmath>

#include "common/logging.hh"

namespace printed::legacy
{

namespace
{

/** Fraction of instances per cell kind (sums to 1). */
using CellMix = std::array<double, numCellKinds>;

/**
 * Per-core, per-technology cell mixes.
 *
 * Each mix is parameterized by its inverter and flip-flop shares
 * (the two strongest levers on area and power); the remaining
 * fraction is split over the other cells with fixed relative
 * weights. The two shares were calibrated once per (core, tech)
 * against the published Table 4 area and power (tests enforce the
 * residuals); the CNT-TFT mixes come out strongly inverter-rich,
 * matching pseudo-CMOS design's doubled buffer stages, and the
 * per-technology difference mirrors Table 4's differing gate
 * counts per technology for the same RTL.
 * Order: INV, NAND, NOR, AND, OR, XOR, XNOR, LATCH, DFF, DFFNR,
 * TSBUF.
 */
CellMix
mixFromShares(double inv_share, double dff_share)
{
    // Relative weights of the remaining cells:
    // NAND, NOR, AND, OR, XOR, XNOR, LATCH, DFFNR, TSBUF.
    constexpr std::array<double, 9> rest = {
        0.30, 0.06, 0.09, 0.08, 0.05, 0.02, 0.01, 0.02, 0.07};
    double rest_sum = 0;
    for (double w : rest)
        rest_sum += w;
    const double remaining = 1.0 - inv_share - dff_share;
    panicIf(remaining <= 0, "mixFromShares: shares exceed 1");
    CellMix mix{};
    mix[std::size_t(CellKind::INVX1)] = inv_share;
    mix[std::size_t(CellKind::DFFX1)] = dff_share;
    const std::array<CellKind, 9> order = {
        CellKind::NAND2X1, CellKind::NOR2X1, CellKind::AND2X1,
        CellKind::OR2X1, CellKind::XOR2X1, CellKind::XNOR2X1,
        CellKind::LATCHX1, CellKind::DFFNRX1, CellKind::TSBUFX1};
    for (std::size_t i = 0; i < order.size(); ++i)
        mix[std::size_t(order[i])] = rest[i] / rest_sum * remaining;
    return mix;
}

CellMix
mixFor(LegacyCore core, TechKind tech)
{
    const bool egfet = tech == TechKind::EGFET;
    switch (core) {
      case LegacyCore::OpenMsp430:
        return egfet ? mixFromShares(0.40, 0.010)
                     : mixFromShares(0.69, 0.055);
      case LegacyCore::Z80:
        return egfet ? mixFromShares(0.26, 0.055)
                     : mixFromShares(0.69, 0.065);
      case LegacyCore::Light8080:
        return egfet ? mixFromShares(0.06, 0.055)
                     : mixFromShares(0.69, 0.180);
      case LegacyCore::ZpuSmall:
        return egfet ? mixFromShares(0.07, 0.010)
                     : mixFromShares(0.63, 0.180);
    }
    panic("mixFor: unknown core");
}

const std::vector<LegacyCoreSpec> &
registry()
{
    // Table 4 of the paper, EGFET@1V / CNT-TFT@3V columns.
    static const std::vector<LegacyCoreSpec> rows = {
        {LegacyCore::OpenMsp430, "openMSP430", 16, 16,
         "Register based", 1, 6,
         {4.07, 12101, 56.38, 124.4},
         {15074, 14098, 0.69, 1335.8}},
        {LegacyCore::Z80, "Z80", 8, 8, "Enhanced Intel8080", 3, 23,
         {7.18, 5263, 25.28, 76.25},
         {26064, 7226, 0.34, 1204}},
        {LegacyCore::Light8080, "light8080", 8, 8, "Intel8080", 5,
         30,
         {17.39, 1948, 11.15, 41.7},
         {57238, 3020, 0.17, 1517}},
        {LegacyCore::ZpuSmall, "ZPU_small", 32, 8, "Stack-based", 4,
         4,
         {25.45, 2984, 15.82, 66.06},
         {43442, 3782, 0.21, 1596}},
    };
    return rows;
}

} // anonymous namespace

const LegacyCoreSpec &
legacyCoreSpec(LegacyCore core)
{
    for (const auto &spec : registry())
        if (spec.core == core)
            return spec;
    panic("legacyCoreSpec: unknown core");
}

LegacyModelResult
modelLegacyCore(LegacyCore core, TechKind tech)
{
    const LegacyCoreSpec &spec = legacyCoreSpec(core);
    const LegacyTechPoint &point = spec.tech(tech);
    const CellLibrary &lib = libraryFor(tech);
    const CellMix mix = mixFor(core, tech);

    LegacyModelResult result;

    // Distribute the published gate count over the cell kinds;
    // assign rounding leftovers to NAND2 (the filler cell).
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < numCellKinds; ++i) {
        result.histogram[i] =
            std::size_t(std::floor(mix[i] * double(point.gateCount)));
        assigned += result.histogram[i];
    }
    result.histogram[std::size_t(CellKind::NAND2X1)] +=
        point.gateCount - assigned;

    result.area = areaOfHistogram(result.histogram, lib);
    result.fmaxHz = point.fmaxHz;
    result.powerAtFmax =
        powerOfHistogram(result.histogram, lib, point.fmaxHz);

    // Calibrated depth: how many average combinational cell delays
    // fit into the published clock period after the flop overhead.
    double comb_delay = 0, comb_cells = 0;
    for (std::size_t i = 0; i < numCellKinds; ++i) {
        const auto kind = static_cast<CellKind>(i);
        if (cellIsSequential(kind))
            continue;
        comb_delay += double(result.histogram[i]) *
                      lib.cell(kind).worstDelayUs();
        comb_cells += double(result.histogram[i]);
    }
    const double avg_us = comb_cells > 0 ? comb_delay / comb_cells
                                         : 1.0;
    const double period_us = 1e6 / point.fmaxHz;
    const double logic_us =
        std::max(0.0, period_us - lib.flopPeriodFloorUs());
    result.calibratedDepth =
        unsigned(std::max(1.0, std::round(logic_us / avg_us)));
    return result;
}

} // namespace printed::legacy
