#include "batch_iss.hh"

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/parallel.hh"
#include "legacy/i8080.hh"
#include "legacy/msp430.hh"
#include "legacy/zpu.hh"

namespace printed::legacy
{

const char *
issCoreId(LegacyCore core)
{
    switch (core) {
      case LegacyCore::OpenMsp430: return "msp430";
      case LegacyCore::Z80: return "z80";
      case LegacyCore::Light8080: return "light8080";
      case LegacyCore::ZpuSmall: return "zpu";
    }
    panic("issCoreId: bad core");
}

std::optional<LegacyCore>
issCoreFromId(const std::string &id)
{
    for (LegacyCore core : allLegacyCores)
        if (id == issCoreId(core))
            return core;
    return std::nullopt;
}

const char *
issEngineName(IssEngine engine)
{
    return engine == IssEngine::Batch ? "batch" : "scalar";
}

std::optional<IssEngine>
issEngineFromName(const std::string &name)
{
    if (name == "batch")
        return IssEngine::Batch;
    if (name == "scalar")
        return IssEngine::Scalar;
    return std::nullopt;
}

void
issForEachBlock(const IssBatchOptions &opts, std::size_t machines,
                const std::function<void(std::size_t, std::size_t)> &fn)
{
    const std::size_t blocks =
        (machines + issBlockMachines - 1) / issBlockMachines;
    auto runBlock = [&](std::size_t b) {
        const std::size_t lo = b * issBlockMachines;
        fn(lo, std::min(machines, lo + issBlockMachines));
    };
    if (blocks <= 1) {
        if (blocks == 1)
            runBlock(0);
        return;
    }
    if (opts.pool)
        opts.pool->parallelFor(blocks, runBlock);
    else if (opts.threads == 1)
        for (std::size_t b = 0; b < blocks; ++b)
            runBlock(b);
    else
        parallelFor(opts.threads, blocks, runBlock);
}

void
issFinishResult(IssBatchResult &result, IssEngine engine)
{
    std::uint64_t halted = 0, budget = 0, killed = 0;
    result.totalInstructions = 0;
    result.totalCycles = 0;
    for (std::size_t m = 0; m < result.runs.size(); ++m) {
        result.totalInstructions += result.runs[m].instructions;
        result.totalCycles += result.runs[m].cycles;
        switch (result.status[m]) {
          case MachineStatus::Halted: ++halted; break;
          case MachineStatus::OutOfBudget: ++budget; break;
          case MachineStatus::Killed: ++killed; break;
        }
    }
    metrics::counter("iss.batches").add(1);
    metrics::counter(engine == IssEngine::Batch ? "iss.batch_runs"
                                                : "iss.scalar_runs")
        .add(1);
    metrics::counter("iss.machines").add(result.runs.size());
    metrics::counter("iss.instructions").add(result.totalInstructions);
    metrics::counter("iss.cycles").add(result.totalCycles);
    metrics::counter("iss.halted").add(halted);
    metrics::counter("iss.out_of_budget").add(budget);
    metrics::counter("iss.killed").add(killed);
}

std::uint64_t
issResultFnv(const IssBatchResult &result)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    for (std::size_t m = 0; m < result.runs.size(); ++m) {
        mix(std::uint64_t(result.status[m]));
        for (std::uint64_t v : result.runs[m].outputs)
            mix(v);
    }
    return h;
}

IssBatchResult
runLegacyBatch(LegacyCore core, const IrProgram &prog,
               const std::vector<std::vector<std::uint64_t>> &inputs,
               const IssBatchOptions &opts)
{
    switch (core) {
      case LegacyCore::Light8080:
        return batchRun8080(prog, inputs, I8080Timing::I8080, opts);
      case LegacyCore::Z80:
        return batchRun8080(prog, inputs, I8080Timing::Z80, opts);
      case LegacyCore::OpenMsp430:
        return batchRunMsp430(prog, inputs, opts);
      case LegacyCore::ZpuSmall:
        return batchRunZpu(prog, inputs, opts);
    }
    panic("runLegacyBatch: bad core");
}

} // namespace printed::legacy
