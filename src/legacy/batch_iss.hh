/**
 * @file
 * Fleet-scale batch instruction-set simulation over the legacy
 * cores (Table 4): run M machines of one program in lock-step.
 *
 * The batch engine keeps machine state struct-of-arrays over M
 * machines — one column per architectural field (registers, flags,
 * PC, status, instruction and cycle counters) plus a compact
 * per-machine memory arena — while all machines share one
 * read-only, *predecoded* code image. Machines are grouped into
 * 64-machine blocks, each with a retirement mask word: every round
 * steps each still-active machine one instruction, and a machine's
 * bit retires when it halts, traps, or exhausts the step budget.
 * Blocks are distributed over the deterministic ThreadPool
 * (machine results depend only on the machine index, so any thread
 * count is bit-identical).
 *
 * The original scalar Machine interpreters remain as the bit-exact
 * oracle (IssEngine::Scalar): for any program both engines must
 * agree on instruction counts, cycle counts, outputs, memory
 * effects, and per-machine statuses. The engines also share one
 * trap contract so kill masks agree: a machine is Killed on an
 * undecodable or unimplemented opcode, a PC leaving the code
 * region, or a write outside its writable window (i8080: the
 * register/data/stack pages; MSP430: RAM below 0x2000; ZPU: its
 * word RAM, reads included). A killing instruction is not counted
 * on the 8080 and MSP430 (their loops count after a successful
 * step) but is counted on the ZPU (its loop counts at fetch),
 * mirroring the scalar interpreters exactly.
 */

#ifndef PRINTED_LEGACY_BATCH_ISS_HH
#define PRINTED_LEGACY_BATCH_ISS_HH

#include <cstddef>
#include <functional>
#include <optional>
#include <string>

#include "legacy/backend.hh"
#include "legacy/cores.hh"

namespace printed::legacy
{

/** Machines per retirement-mask word (one lock-step block). */
constexpr std::size_t issBlockMachines = 64;

/**
 * Instructions one machine executes per lock-step round. Machines
 * never interact, so results are independent of the quantum; its
 * size only trades retirement-mask granularity against speed (the
 * per-core engines keep a machine's architectural state in locals
 * for the quantum's duration and write the columns back once).
 */
constexpr unsigned issQuantum = 1024;

/**
 * Compile `prog` once for `core` and run one machine per entry of
 * `inputs` (machine m gets inputs[m]). Emits iss.* metrics.
 */
IssBatchResult runLegacyBatch(
    LegacyCore core, const IrProgram &prog,
    const std::vector<std::vector<std::uint64_t>> &inputs,
    const IssBatchOptions &opts);

/** Canonical short id for a core ("msp430", "z80", ...). */
const char *issCoreId(LegacyCore core);

/** Parse an issCoreId back; nullopt for unknown ids. */
std::optional<LegacyCore> issCoreFromId(const std::string &id);

/** "batch" / "scalar". */
const char *issEngineName(IssEngine engine);

/** Parse an engine name; nullopt for unknown names. */
std::optional<IssEngine> issEngineFromName(const std::string &name);

/**
 * Partition [0, machines) into issBlockMachines-sized blocks and
 * run fn(lo, hi) for each, over opts.pool / opts.threads (internal
 * helper shared by the per-core batch engines).
 */
void issForEachBlock(
    const IssBatchOptions &opts, std::size_t machines,
    const std::function<void(std::size_t, std::size_t)> &fn);

/** Fill the per-batch totals/status tallies and emit iss.* metrics. */
void issFinishResult(IssBatchResult &result, IssEngine engine);

/**
 * Order-sensitive FNV-1a (64-bit) over every machine's status and
 * outputs — the cross-engine/cross-thread-count fingerprint the
 * sweep, profile, and service layers compare and render.
 */
std::uint64_t issResultFnv(const IssBatchResult &result);

} // namespace printed::legacy

#endif // PRINTED_LEGACY_BATCH_ISS_HH
