/**
 * @file
 * Pre-existing (legacy) microprocessor models - Table 4 of the
 * paper: openMSP430, Z80, light8080, and ZPU-small characterized
 * in both printed technologies.
 *
 * The paper synthesized the actual RTL of these cores with Design
 * Compiler; we model each core statistically: the published
 * per-technology gate count is distributed over the standard-cell
 * library by a per-core cell mix, and the resulting histogram is
 * fed through the same area/power engine used for TP-ISA cores.
 * The combinational logic depth is the one free parameter,
 * calibrated so the published fmax is reproduced; everything else
 * (area, power) is then a genuine model output, compared against
 * the published values in EXPERIMENTS.md.
 */

#ifndef PRINTED_LEGACY_CORES_HH
#define PRINTED_LEGACY_CORES_HH

#include <array>
#include <string>
#include <vector>

#include "analysis/area.hh"
#include "analysis/power.hh"
#include "tech/library.hh"

namespace printed::legacy
{

/** The four pre-existing cores of Table 4. */
enum class LegacyCore
{
    OpenMsp430,
    Z80,
    Light8080,
    ZpuSmall,
};

constexpr std::array<LegacyCore, 4> allLegacyCores = {
    LegacyCore::OpenMsp430, LegacyCore::Z80, LegacyCore::Light8080,
    LegacyCore::ZpuSmall};

/** Published per-technology characterization (Table 4). */
struct LegacyTechPoint
{
    double fmaxHz = 0;
    std::size_t gateCount = 0;
    double areaCm2 = 0;
    double powerMw = 0;
};

/** One row of Table 4. */
struct LegacyCoreSpec
{
    LegacyCore core;
    std::string name;
    unsigned datawidth = 8;
    unsigned aluWidth = 8;
    std::string isaStyle;
    unsigned cpiMin = 1;
    unsigned cpiMax = 1;
    LegacyTechPoint egfet;
    LegacyTechPoint cnt;

    const LegacyTechPoint &
    tech(TechKind kind) const
    {
        return kind == TechKind::EGFET ? egfet : cnt;
    }
};

/** The Table 4 registry. */
const LegacyCoreSpec &legacyCoreSpec(LegacyCore core);

/** Modeled characterization of a legacy core in a technology. */
struct LegacyModelResult
{
    std::array<std::size_t, numCellKinds> histogram{};
    AreaReport area;          ///< from the cell mix
    PowerReport powerAtFmax;  ///< from the cell mix at published fmax
    double fmaxHz = 0;        ///< published (depth-calibrated)
    unsigned calibratedDepth = 0; ///< comb. depth implied by fmax
};

/**
 * Run the statistical model: distribute the published gate count
 * over the library by the core's cell mix and characterize it with
 * the standard area/power engines.
 */
LegacyModelResult modelLegacyCore(LegacyCore core, TechKind tech);

} // namespace printed::legacy

#endif // PRINTED_LEGACY_CORES_HH
