/**
 * @file
 * Error-reporting helpers shared by every printed:: library.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user errors
 * (bad configuration, malformed assembly, out-of-range parameters).
 */

#ifndef PRINTED_COMMON_LOGGING_HH
#define PRINTED_COMMON_LOGGING_HH

#include <stdexcept>
#include <string>

namespace printed
{

/** Thrown on user-caused errors (bad input, invalid configuration). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown on internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/**
 * Report a user error. Never returns.
 * @param msg Human-readable description of what the user got wrong.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal invariant violation. Never returns.
 * @param msg Description of the broken invariant.
 */
[[noreturn]] void panic(const std::string &msg);

/** Call fatal(msg) when cond is true. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

/** Call panic(msg) when cond is true. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace printed

#endif // PRINTED_COMMON_LOGGING_HH
