#include "trace.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <vector>

namespace printed::trace
{

namespace detail
{
std::atomic<bool> gEnabled{false};
} // namespace detail

namespace
{

struct Event
{
    std::string name;
    std::string detail;
    std::uint32_t tid = 0;
    std::uint64_t tsUs = 0;
    std::uint64_t durUs = 0;
};

/**
 * All tracer state behind one magic static, constructed on first
 * use — i.e. before the atexit hook that enable() registers, so
 * the hook runs while the state is still alive.
 */
struct Tracer
{
    std::mutex mutex;
    std::vector<Event> events;
    std::map<std::uint32_t, std::string> threadNames;
    std::string path;
    bool atexitRegistered = false;
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();

    static Tracer &
    instance()
    {
        static Tracer tracer;
        return tracer;
    }
};

/** Sequential tid per thread, assigned on first use (main == 1). */
std::uint32_t
currentTid()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t tid =
        next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

/** Escape a string for a JSON literal (quotes/backslash/control). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    static const char *hex = "0123456789abcdef";
    for (char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (u < 0x20) {
            out += "\\u00";
            out += hex[u >> 4];
            out += hex[u & 0xF];
        } else {
            out += c;
        }
    }
    return out;
}

} // anonymous namespace

namespace detail
{

std::uint64_t
nowUs()
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() -
            Tracer::instance().epoch)
            .count());
}

void
recordSpan(const char *name, std::uint64_t startUs,
           std::uint64_t durationUs, const std::string &detail)
{
    // Re-check under no lock: a span that started while tracing was
    // on still records after disable(); harmless and simpler than
    // dropping it.
    Event ev;
    ev.name = name;
    ev.detail = detail;
    ev.tid = currentTid();
    ev.tsUs = startUs;
    ev.durUs = durationUs;
    Tracer &t = Tracer::instance();
    std::lock_guard<std::mutex> lock(t.mutex);
    t.events.push_back(std::move(ev));
}

} // namespace detail

void
enable(const std::string &path)
{
    Tracer &t = Tracer::instance();
    {
        std::lock_guard<std::mutex> lock(t.mutex);
        if (!path.empty())
            t.path = path;
        if (!t.path.empty() && !t.atexitRegistered) {
            t.atexitRegistered = true;
            std::atexit([] { flush(); });
        }
    }
    detail::gEnabled.store(true, std::memory_order_relaxed);
}

void
disable()
{
    detail::gEnabled.store(false, std::memory_order_relaxed);
}

void
initFromEnv()
{
    const char *env = std::getenv("PRINTED_TRACE");
    if (env && *env)
        enable(env);
}

void
clear()
{
    Tracer &t = Tracer::instance();
    std::lock_guard<std::mutex> lock(t.mutex);
    t.events.clear();
}

std::size_t
eventCount()
{
    Tracer &t = Tracer::instance();
    std::lock_guard<std::mutex> lock(t.mutex);
    return t.events.size();
}

void
setThreadName(const std::string &name)
{
    Tracer &t = Tracer::instance();
    const std::uint32_t tid = currentTid();
    std::lock_guard<std::mutex> lock(t.mutex);
    t.threadNames[tid] = name;
}

void
write(std::ostream &os)
{
    Tracer &t = Tracer::instance();
    std::lock_guard<std::mutex> lock(t.mutex);
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    auto sep = [&] {
        os << (first ? "\n" : ",\n");
        first = false;
    };
    for (const auto &[tid, name] : t.threadNames) {
        sep();
        os << "  {\"name\": \"thread_name\", \"ph\": \"M\", "
              "\"pid\": 1, \"tid\": "
           << tid << ", \"args\": {\"name\": \""
           << jsonEscape(name) << "\"}}";
    }
    for (const Event &ev : t.events) {
        sep();
        os << "  {\"name\": \"" << jsonEscape(ev.name)
           << "\", \"cat\": \"printed\", \"ph\": \"X\", "
              "\"pid\": 1, \"tid\": "
           << ev.tid << ", \"ts\": " << ev.tsUs
           << ", \"dur\": " << ev.durUs;
        if (!ev.detail.empty())
            os << ", \"args\": {\"detail\": \""
               << jsonEscape(ev.detail) << "\"}";
        os << "}";
    }
    os << "\n]}\n";
}

void
flush()
{
    std::string path;
    {
        Tracer &t = Tracer::instance();
        std::lock_guard<std::mutex> lock(t.mutex);
        path = t.path;
    }
    if (path.empty())
        return;
    std::ofstream os(path);
    if (os)
        write(os);
}

} // namespace printed::trace
