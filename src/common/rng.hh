/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Tests and workload generators must be reproducible across runs and
 * platforms, so we use a fixed SplitMix64 implementation instead of
 * std::mt19937 (whose distributions are not bit-stable across
 * standard library implementations).
 */

#ifndef PRINTED_COMMON_RNG_HH
#define PRINTED_COMMON_RNG_HH

#include <cstdint>

namespace printed
{

/**
 * SplitMix64 PRNG. Tiny, fast, and plenty good for workload
 * generation and property tests.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed)
    {}

    /** Next 64 random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value of the given bit width. */
    std::uint64_t
    bits(unsigned width)
    {
        if (width >= 64)
            return next();
        return next() & ((std::uint64_t(1) << width) - 1);
    }

    /** Random boolean. */
    bool flip() { return next() & 1; }

  private:
    std::uint64_t state_;
};

/**
 * SplitMix64-finalizer mix of two words, for deriving per-item
 * seeds in parallel Monte Carlos: item i of a run with master seed
 * s uses Rng(mixSeed(s, i)). Each item owns an independent stream,
 * so results are bit-identical for any thread count and schedule
 * (the determinism contract of common/parallel.hh).
 */
inline std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace printed

#endif // PRINTED_COMMON_RNG_HH
