#include "metrics.hh"

#include <algorithm>

namespace printed::metrics
{

void
Distribution::record(double sample)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    ++count_;
    sum_ += sample;
    if (samples_.size() < sampleCap)
        samples_.push_back(sample);
}

Distribution::Summary
Distribution::summary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Summary s;
    s.count = count_;
    if (count_ == 0)
        return s;
    s.mean = sum_ / double(count_);
    s.min = min_;
    s.max = max_;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    // Same index rule as analysis/variation.cc percentile().
    auto pct = [&](double p) {
        const std::size_t idx = std::min(
            sorted.size() - 1, std::size_t(p * double(sorted.size())));
        return sorted[idx];
    };
    s.p50 = pct(0.50);
    s.p95 = pct(0.95);
    return s;
}

void
Distribution::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.clear();
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Distribution &
Registry::distribution(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = distributions_[name];
    if (!slot)
        slot = std::make_unique<Distribution>();
    return *slot;
}

Snapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        snap.counters.emplace_back(name, c->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        snap.gauges.emplace_back(name, g->value());
    snap.distributions.reserve(distributions_.size());
    for (const auto &[name, d] : distributions_)
        snap.distributions.emplace_back(name, d->summary());
    return snap;
}

void
Registry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, c] : counters_)
        c->reset();
    for (const auto &[name, g] : gauges_)
        g->reset();
    for (const auto &[name, d] : distributions_)
        d->reset();
}

} // namespace printed::metrics
