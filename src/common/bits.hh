/**
 * @file
 * Small bit-manipulation utilities used across the ISA, synthesis,
 * and program-specific specialization code.
 */

#ifndef PRINTED_COMMON_BITS_HH
#define PRINTED_COMMON_BITS_HH

#include <cstdint>

#include "logging.hh"

namespace printed
{

/**
 * A mask with the low n bits set. n may be 0..64.
 */
inline std::uint64_t
maskBits(unsigned n)
{
    panicIf(n > 64, "maskBits: width > 64");
    if (n == 64)
        return ~std::uint64_t(0);
    return (std::uint64_t(1) << n) - 1;
}

/**
 * Extract bits [first, first + count) of value (first = 0 is the LSB).
 */
inline std::uint64_t
extractBits(std::uint64_t value, unsigned first, unsigned count)
{
    return (value >> first) & maskBits(count);
}

/**
 * Return value with bits [first, first + count) replaced by the low
 * count bits of field.
 */
inline std::uint64_t
insertBits(std::uint64_t value, unsigned first, unsigned count,
           std::uint64_t field)
{
    const std::uint64_t m = maskBits(count) << first;
    return (value & ~m) | ((field << first) & m);
}

/** Extract bit `pos` of value as 0 or 1. */
inline unsigned
bit(std::uint64_t value, unsigned pos)
{
    return unsigned((value >> pos) & 1);
}

/**
 * Number of bits needed to represent the values 0..n-1; i.e.
 * ceil(log2(n)) with ceilLog2(1) == 0 and ceilLog2(0) == 0.
 *
 * Matches the paper's program-counter sizing rule: a program with N
 * static instructions needs a ceil(log2(N))-bit PC.
 */
inline unsigned
ceilLog2(std::uint64_t n)
{
    if (n <= 1)
        return 0;
    unsigned bits = 0;
    std::uint64_t v = n - 1;
    while (v) {
        v >>= 1;
        ++bits;
    }
    return bits;
}

/** Sign-extend the low `width` bits of value to 64 bits. */
inline std::int64_t
signExtend(std::uint64_t value, unsigned width)
{
    panicIf(width == 0 || width > 64, "signExtend: bad width");
    const std::uint64_t m = std::uint64_t(1) << (width - 1);
    value &= maskBits(width);
    return std::int64_t((value ^ m)) - std::int64_t(m);
}

/** True when n is a power of two (n > 0). */
inline bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

} // namespace printed

#endif // PRINTED_COMMON_BITS_HH
