/**
 * @file
 * Process-wide, thread-safe metrics registry.
 *
 * The hot layers of the flow (synthesis, the SynthCache, the
 * parallel pool, both gate-level simulators, the Monte Carlos)
 * publish named counters, gauges, and timing distributions here;
 * every bench embeds a snapshot as the uniform "metrics" block of
 * its --json report, so one vocabulary covers where time and cache
 * hits go across the whole flow.
 *
 * Three instrument kinds:
 *
 *   Counter       monotonic uint64, lock-free relaxed adds. Used
 *                 for event counts (cache hits, MC trials, settle
 *                 iterations). Counter *sums* are deterministic for
 *                 any thread count when the counted events are
 *                 (the per-trial work is; see DESIGN.md).
 *   Gauge         last-write-wins double (e.g. trials/s of the most
 *                 recent MC phase). Wall-clock derived, so not
 *                 deterministic across runs.
 *   Distribution  sampled doubles with count/mean/p50/p95/max
 *                 summaries (e.g. per-worker busy milliseconds).
 *                 Wall-clock derived, not deterministic.
 *
 * Determinism rule (DESIGN.md "Observability"): metrics are
 * *observational only*. No simulated result, RNG seed, or control
 * flow may ever read a metric; enabling or disabling observability
 * must not change a single result bit.
 *
 * Handles returned by the registry are valid for the process
 * lifetime: entries are never removed (resetAll() zeroes values but
 * keeps the objects), so hot paths may cache `static Counter &`
 * references and pay one map lookup per process.
 */

#ifndef PRINTED_COMMON_METRICS_HH
#define PRINTED_COMMON_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace printed::metrics
{

/** Monotonic event counter; add() is lock-free. */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins double value. */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { set(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Sampled distribution with p50/p95/max summaries. record() takes a
 * mutex, so use it for coarse events (per job, per phase), never
 * per gate. At most `sampleCap` samples are kept for the
 * percentiles; count/sum/min/max stay exact beyond that.
 */
class Distribution
{
  public:
    /** Summary statistics of the recorded samples. */
    struct Summary
    {
        std::uint64_t count = 0;
        double mean = 0;
        double min = 0;
        double p50 = 0;
        double p95 = 0;
        double max = 0;
    };

    static constexpr std::size_t sampleCap = 65536;

    Distribution() = default;
    Distribution(const Distribution &) = delete;
    Distribution &operator=(const Distribution &) = delete;

    void record(double sample);

    Summary summary() const;

    void reset();

  private:
    mutable std::mutex mutex_;
    std::vector<double> samples_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/** Point-in-time copy of every registered instrument. */
struct Snapshot
{
    /** Name -> value, sorted by name (std::map iteration order). */
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Distribution::Summary>>
        distributions;
};

/**
 * Name -> instrument registry. Instruments are created on first
 * use and live for the process lifetime (stable references).
 */
class Registry
{
  public:
    /** The process-wide registry. */
    static Registry &global();

    /** The counter with this name (created on first use). */
    Counter &counter(const std::string &name);

    /** The gauge with this name (created on first use). */
    Gauge &gauge(const std::string &name);

    /** The distribution with this name (created on first use). */
    Distribution &distribution(const std::string &name);

    /** Copy of all instruments' current values, sorted by name. */
    Snapshot snapshot() const;

    /**
     * Zero every instrument. Entries (and references to them)
     * survive; used by benches and tests to scope a measurement.
     */
    void resetAll();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Distribution>>
        distributions_;
};

/** Shorthand for Registry::global().counter(name). */
inline Counter &
counter(const std::string &name)
{
    return Registry::global().counter(name);
}

/** Shorthand for Registry::global().gauge(name). */
inline Gauge &
gauge(const std::string &name)
{
    return Registry::global().gauge(name);
}

/** Shorthand for Registry::global().distribution(name). */
inline Distribution &
distribution(const std::string &name)
{
    return Registry::global().distribution(name);
}

} // namespace printed::metrics

#endif // PRINTED_COMMON_METRICS_HH
