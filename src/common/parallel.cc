#include "parallel.hh"

#include <chrono>
#include <memory>
#include <string>

#include "common/metrics.hh"
#include "common/trace.hh"

namespace printed
{

namespace
{

/** Milliseconds between two steady_clock points. */
double
elapsedMs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // anonymous namespace

/**
 * State of one parallelFor job. Heap-allocated and shared between
 * the dispatcher and the workers so a straggler that wakes up after
 * the dispatcher has moved on only ever touches its own (already
 * drained) job object — never a half-reset one.
 */
struct ThreadPool::Job
{
    const std::function<void(std::size_t, unsigned)> *fn = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::atomic<bool> aborted{false};
    std::exception_ptr exception;
    std::mutex exceptionMutex;
};

unsigned
ThreadPool::defaultThreadCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads ? threads : defaultThreadCount())
{
    workers_.reserve(threads_ - 1);
    for (unsigned slot = 1; slot < threads_; ++slot)
        workers_.emplace_back([this, slot] { workerLoop(slot); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::runJob(Job &job, unsigned slot)
{
    // Observability: one busy span + one busy-time sample per
    // (job, worker) — coarse enough that the clock reads and the
    // distribution mutex never sit on the per-item path.
    trace::Span span("pool.worker_busy");
    const auto busyStart = std::chrono::steady_clock::now();

    // Claim indices until the space is exhausted. Every claimed
    // index < n bumps `completed` exactly once — also when the item
    // threw or was skipped after an abort — so the dispatcher's
    // completed == n wait is exact and `fn` stays alive until the
    // last in-flight item has finished.
    for (;;) {
        const std::size_t i =
            job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n)
            break;
        if (!job.aborted.load(std::memory_order_relaxed)) {
            try {
                (*job.fn)(i, slot);
            } catch (...) {
                std::lock_guard<std::mutex> lock(job.exceptionMutex);
                if (!job.exception)
                    job.exception = std::current_exception();
                job.aborted.store(true, std::memory_order_relaxed);
            }
        }
        if (job.completed.fetch_add(1, std::memory_order_acq_rel) +
                1 ==
            job.n) {
            std::lock_guard<std::mutex> lock(mutex_);
            done_.notify_all();
        }
    }
    static metrics::Distribution &busy =
        metrics::distribution("parallel.worker_busy_ms");
    busy.record(elapsedMs(busyStart));
}

void
ThreadPool::workerLoop(unsigned slot)
{
    trace::setThreadName("pool-worker-" + std::to_string(slot));
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            job = current_;
        }
        runJob(*job, slot);
    }
}

void
ThreadPool::parallelForWorkers(
    std::size_t n, const std::function<void(std::size_t, unsigned)> &fn)
{
    if (n == 0)
        return;

    // Job/item counters cover the inline path too, so the counts
    // are identical for every thread count (the determinism tests
    // rely on this). The per-job span records the fan-out width.
    static metrics::Counter &jobs = metrics::counter("parallel.jobs");
    static metrics::Counter &items =
        metrics::counter("parallel.items");
    static metrics::Distribution &jobItems =
        metrics::distribution("parallel.job_items");
    jobs.add(1);
    items.add(n);
    jobItems.record(double(n));
    trace::Span span("pool.parallelFor",
                     trace::enabled()
                         ? std::to_string(n) + " items / " +
                               std::to_string(threads_) + " workers"
                         : std::string());

    if (threads_ <= 1 || n == 1) {
        // Inline fast path; exceptions propagate naturally.
        for (std::size_t i = 0; i < n; ++i)
            fn(i, 0);
        return;
    }

    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->n = n;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        current_ = job;
        ++generation_;
    }
    wake_.notify_all();

    runJob(*job, 0); // the caller is worker 0

    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] {
            return job->completed.load(std::memory_order_acquire) ==
                   job->n;
        });
    }
    if (job->exception)
        std::rethrow_exception(job->exception);
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    parallelForWorkers(n, [&](std::size_t i, unsigned) { fn(i); });
}

void
parallelFor(unsigned threads, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    ThreadPool pool(threads);
    pool.parallelFor(n, fn);
}

} // namespace printed
