#include "logging.hh"

namespace printed
{

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

} // namespace printed
