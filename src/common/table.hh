/**
 * @file
 * Minimal ASCII table writer used by the bench binaries to print
 * paper-style tables (rows/columns with aligned headers).
 */

#ifndef PRINTED_COMMON_TABLE_HH
#define PRINTED_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace printed
{

/**
 * Accumulates rows of string cells and renders them with columns
 * padded to the widest cell. Used by every bench binary so that the
 * reproduced tables have a uniform look.
 */
class TableWriter
{
  public:
    /** Create a table with the given column headers. */
    explicit TableWriter(std::vector<std::string> headers);

    /** Append one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Render the table (header, separator, rows) to os. */
    void print(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Format a double with the given precision, trimming zeros. */
    static std::string num(double value, int precision = 4);

    /** Format a double in fixed notation with `decimals` digits. */
    static std::string fixed(double value, int decimals = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace printed

#endif // PRINTED_COMMON_TABLE_HH
