#include "table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "logging.hh"

namespace printed
{

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    fatalIf(headers_.empty(), "TableWriter: need at least one column");
}

void
TableWriter::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != headers_.size(),
            "TableWriter: row has " + std::to_string(cells.size()) +
            " cells, expected " + std::to_string(headers_.size()));
    rows_.push_back(std::move(cells));
}

void
TableWriter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c)
            os << " " << std::left << std::setw(int(widths[c]))
               << row[c] << " |";
        os << "\n";
    };

    print_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

std::string
TableWriter::num(double value, int precision)
{
    std::ostringstream ss;
    ss << std::setprecision(precision) << value;
    return ss.str();
}

std::string
TableWriter::fixed(double value, int decimals)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(decimals) << value;
    return ss.str();
}

} // namespace printed
