/**
 * @file
 * Minimal recursive-descent JSON reader (and string escaper) shared
 * by the bench tooling and the evaluation service.
 *
 * Originally lived under bench/ and parsed only this repo's own
 * BENCH_*.json reports; the printedd daemon (src/service/) now
 * parses *untrusted network input* with it, so the reader is
 * hardened accordingly:
 *
 *   - a nesting-depth limit (maxDepth) bounds parser recursion, so
 *     a hostile "[[[[..." line cannot overflow the stack;
 *   - \uXXXX escapes handle UTF-16 surrogate pairs (4-byte UTF-8
 *     output) and reject unpaired surrogates;
 *   - trailing garbage after the document is rejected;
 *   - numbers whose magnitude overflows double parse as +/-infinity
 *     (strtod semantics) rather than failing — callers that cannot
 *     tolerate non-finite values must range-check, as JSON writers
 *     in this repo never emit them (non-finite renders as null).
 *
 * Covers enough of RFC 8259 for both uses: objects, arrays, strings
 * with escapes, numbers, true/false/null. Not a validator: it
 * accepts some malformed documents, but never mis-parses a
 * well-formed one.
 */

#ifndef PRINTED_COMMON_JSON_MIN_HH
#define PRINTED_COMMON_JSON_MIN_HH

#include <cctype>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace printed::json
{

/**
 * Escape a string for embedding in a JSON document (RFC 8259):
 * backslash and double quote get a backslash prefix, control
 * characters (U+0000..U+001F) become \u00XX escapes, everything
 * else — including DEL and multi-byte UTF-8 — passes through
 * verbatim. Returns the escaped body *without* surrounding quotes.
 */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
            continue;
        }
        if (static_cast<unsigned char>(c) < 0x20) {
            std::ostringstream esc;
            esc << "\\u" << std::hex << std::setw(4)
                << std::setfill('0')
                << int(static_cast<unsigned char>(c));
            out += esc.str();
            continue;
        }
        out += c;
    }
    return out;
}

/** Escape and quote a JSON string literal. */
inline std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    out += jsonEscape(s);
    out += '"';
    return out;
}

/** Parse failure, with a byte offset into the input. */
class ParseError : public std::runtime_error
{
  public:
    ParseError(const std::string &what, std::size_t offset)
        : std::runtime_error(what + " at byte " +
                             std::to_string(offset)),
          offset_(offset)
    {}

    std::size_t offset() const { return offset_; }

  private:
    std::size_t offset_;
};

/**
 * Maximum object/array nesting the parser accepts. Every real
 * document in this repo is < 10 deep; the limit only exists to
 * bound recursion on hostile input.
 */
inline constexpr std::size_t maxDepth = 128;

/** One parsed JSON value (a tagged tree). */
struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    /** Insertion-ordered object members. */
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }

    /** Member lookup; nullptr when absent or not an object. */
    const Value *
    find(const std::string &key) const
    {
        for (const auto &m : object)
            if (m.first == key)
                return &m.second;
        return nullptr;
    }
};

namespace detail
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            throw ParseError("trailing content", pos_);
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw ParseError(what, pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeWord(const char *w)
    {
        std::size_t n = 0;
        while (w[n])
            ++n;
        if (text_.compare(pos_, n, w) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"': {
            Value v;
            v.kind = Value::Kind::String;
            v.string = parseString();
            return v;
          }
          case 't':
            if (!consumeWord("true"))
                fail("bad literal");
            return makeBool(true);
          case 'f':
            if (!consumeWord("false"))
                fail("bad literal");
            return makeBool(false);
          case 'n':
            if (!consumeWord("null"))
                fail("bad literal");
            return Value{};
          default:
            return parseNumber();
        }
    }

    static Value
    makeBool(bool b)
    {
        Value v;
        v.kind = Value::Kind::Bool;
        v.boolean = b;
        return v;
    }

    /** RAII depth guard for the recursive containers. */
    struct DepthGuard
    {
        explicit DepthGuard(Parser &p) : parser(p)
        {
            if (++parser.depth_ > maxDepth)
                parser.fail("nesting too deep");
        }
        ~DepthGuard() { --parser.depth_; }
        Parser &parser;
    };

    Value
    parseObject()
    {
        DepthGuard guard(*this);
        Value v;
        v.kind = Value::Kind::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.object.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value
    parseArray()
    {
        DepthGuard guard(*this);
        Value v;
        v.kind = Value::Kind::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    /** Four hex digits of a \uXXXX escape (the \u is consumed). */
    unsigned
    parseHex4()
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9')
                cp |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f')
                cp |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                cp |= unsigned(h - 'A' + 10);
            else
                fail("bad \\u escape");
        }
        return cp;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xC0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += char(0xE0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        } else {
            out += char(0xF0 | (cp >> 18));
            out += char(0x80 | ((cp >> 12) & 0x3F));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                unsigned cp = parseHex4();
                if (cp >= 0xDC00 && cp <= 0xDFFF)
                    fail("unpaired low surrogate");
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: a \uDC00..\uDFFF escape must
                    // follow, and the pair maps to one code point
                    // above U+FFFF (RFC 8259 section 7).
                    if (pos_ + 2 > text_.size() ||
                        text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
                        fail("unpaired high surrogate");
                    pos_ += 2;
                    const unsigned lo = parseHex4();
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        fail("unpaired high surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (lo - 0xDC00);
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        const std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        // Overflowing magnitudes saturate to +/-HUGE_VAL (infinity)
        // per strtod; see the header comment.
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            throw ParseError("bad number '" + tok + "'", start);
        Value out;
        out.kind = Value::Kind::Number;
        out.number = v;
        return out;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

} // namespace detail

/** Parse one JSON document; throws ParseError on malformed input. */
inline Value
parse(const std::string &text)
{
    return detail::Parser(text).parseDocument();
}

namespace detail
{

/** Human-meaningful identity of an array element, if it has one. */
inline std::string
elementKey(const Value &v)
{
    if (!v.isObject())
        return "";
    for (const char *field :
         {"engine", "name", "label", "kernel", "design", "config",
          "core"}) {
        const Value *f = v.find(field);
        if (f && f->isString() && !f->string.empty())
            return f->string;
    }
    return "";
}

inline void
flattenInto(const Value &v, const std::string &prefix,
            std::map<std::string, double> &out)
{
    switch (v.kind) {
      case Value::Kind::Number:
        out[prefix.empty() ? "value" : prefix] = v.number;
        break;
      case Value::Kind::Object:
        for (const auto &m : v.object)
            flattenInto(m.second,
                        prefix.empty() ? m.first
                                       : prefix + "." + m.first,
                        out);
        break;
      case Value::Kind::Array:
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            std::string key = elementKey(v.array[i]);
            if (key.empty())
                key = std::to_string(i);
            flattenInto(v.array[i], prefix + "." + key, out);
        }
        break;
      default:
        break; // strings/bools/nulls are not comparable metrics
    }
}

} // namespace detail

/**
 * Flatten every numeric leaf of a document into "a.b.c" -> value.
 * Array elements are keyed by their "engine"/"name"/"label"/...
 * string field when present (stable across runs even if the array
 * order changes), by index otherwise.
 */
inline std::map<std::string, double>
flattenNumbers(const Value &v)
{
    std::map<std::string, double> out;
    detail::flattenInto(v, "", out);
    return out;
}

} // namespace printed::json

#endif // PRINTED_COMMON_JSON_MIN_HH
