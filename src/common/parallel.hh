/**
 * @file
 * Deterministic parallel execution layer.
 *
 * Every expensive path in this codebase — the Figure 7 design-space
 * sweep, the variation and functional-yield Monte Carlos — is a map
 * over an index space [0, n) in which item i's result depends only
 * on i (and on per-item seeds derived from i, never on a shared RNG
 * stream). That structure makes parallelism trivially deterministic:
 * work items are identified by index, results are stored by index,
 * and any reduction happens sequentially in index order afterwards.
 * Under that contract the output is bit-identical for every thread
 * count and every scheduling interleaving.
 *
 * ThreadPool is a fixed-size, reusable pool. parallelFor(n, fn)
 * dynamically load-balances indices over the workers (claimed via an
 * atomic counter — cheap items and 1000x-outlier items coexist in
 * the Monte Carlos), the calling thread participates as worker 0,
 * and the first exception thrown by any item is rethrown on the
 * caller after the whole job has drained. parallelMap collects
 * fn(i) into a vector by index.
 *
 * Determinism rules for callers (see DESIGN.md):
 *   1. fn(i) must not read mutable state shared with other items.
 *   2. Randomness inside an item must come from an Rng seeded by
 *      mixSeed(masterSeed, i) (common/rng.hh), never from a stream
 *      shared across items.
 *   3. Floating-point reductions are done by the caller over the
 *      index-ordered result vector, never via atomics.
 */

#ifndef PRINTED_COMMON_PARALLEL_HH
#define PRINTED_COMMON_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace printed
{

/**
 * Fixed-size pool of worker threads executing indexed jobs.
 *
 * A pool of size T runs jobs on T-1 internal workers plus the
 * calling thread, so ThreadPool(1) spawns no threads at all and
 * executes inline. Pools are reusable: any number of parallelFor /
 * parallelMap calls may be issued (from one thread at a time).
 */
class ThreadPool
{
  public:
    /**
     * @param threads total worker count including the caller;
     *        0 = hardware concurrency.
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (internal workers + calling thread). */
    unsigned threadCount() const { return threads_; }

    /** Hardware concurrency, with a floor of 1. */
    static unsigned defaultThreadCount();

    /**
     * Run fn(i) for every i in [0, n); blocks until all items have
     * finished. If any item throws, the first exception (in claim
     * order) is rethrown here once the job has drained; remaining
     * unclaimed items are skipped. n == 0 returns immediately.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Like parallelFor, but fn also receives the executing worker's
     * slot in [0, threadCount()) so callers can reuse expensive
     * per-worker scratch state (e.g. gate-level simulators). The
     * slot an item lands on is scheduling-dependent; results must
     * depend only on the item index.
     */
    void parallelForWorkers(
        std::size_t n,
        const std::function<void(std::size_t, unsigned)> &fn);

    /**
     * Map [0, n) through fn and return the results in index order.
     * Deterministic for any thread count when fn obeys the header
     * contract.
     */
    template <typename Fn>
    auto
    parallelMap(std::size_t n, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t(0)))>
    {
        using T = decltype(fn(std::size_t(0)));
        std::vector<std::optional<T>> slots(n);
        parallelFor(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
        std::vector<T> out;
        out.reserve(n);
        for (std::optional<T> &s : slots)
            out.push_back(std::move(*s));
        return out;
    }

  private:
    struct Job;

    void workerLoop(unsigned slot);
    void runJob(Job &job, unsigned slot);

    unsigned threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
    std::shared_ptr<Job> current_;
};

/** One-shot parallelFor on a transient pool of `threads` threads. */
void parallelFor(unsigned threads, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/** One-shot parallelMap on a transient pool of `threads` threads. */
template <typename Fn>
auto
parallelMap(unsigned threads, std::size_t n, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t(0)))>
{
    ThreadPool pool(threads);
    return pool.parallelMap(n, std::forward<Fn>(fn));
}

} // namespace printed

#endif // PRINTED_COMMON_PARALLEL_HH
