/**
 * @file
 * Unit conventions and conversion constants.
 *
 * The printed:: libraries keep all physical quantities in the units
 * the paper's tables use, to make cross-checking against the paper
 * trivial:
 *
 *   - cell area:        mm^2       (Table 2)
 *   - block/core area:  cm^2       (Tables 4, 5; Figures 7, 8)
 *   - cell energy:      nJ         (Table 2)
 *   - delay:            us         (Table 2) and ms (Table 6)
 *   - power:            mW         (Tables 4, 5) and uW (Table 6)
 *   - frequency:        Hz
 *   - battery capacity: mAh
 *   - supply voltage:   V
 *
 * Helper constants below convert between those conventions.
 */

#ifndef PRINTED_COMMON_UNITS_HH
#define PRINTED_COMMON_UNITS_HH

namespace printed
{

/// mm^2 per cm^2.
constexpr double mm2PerCm2 = 100.0;

/// Convert an area in mm^2 to cm^2.
constexpr double
mm2ToCm2(double mm2)
{
    return mm2 / mm2PerCm2;
}

/// Convert microseconds to seconds.
constexpr double
usToSeconds(double us)
{
    return us * 1e-6;
}

/// Convert milliseconds to seconds.
constexpr double
msToSeconds(double ms)
{
    return ms * 1e-3;
}

/// Convert nanojoules to joules.
constexpr double
nJToJoules(double nj)
{
    return nj * 1e-9;
}

/// Convert microwatts to milliwatts.
constexpr double
uWTomW(double uw)
{
    return uw * 1e-3;
}

/// Convert watts to milliwatts.
constexpr double
wattsTomW(double w)
{
    return w * 1e3;
}

/**
 * Energy stored in a battery, in joules.
 *
 * The paper's budget model (Section 4): a 30 mAh battery supplying
 * 1 V stores 30 mA x 3.6 ks x 1 V = 108 J.
 *
 * @param capacity_mah Battery capacity in milliamp-hours.
 * @param voltage Battery terminal voltage in volts.
 */
constexpr double
batteryEnergyJoules(double capacity_mah, double voltage)
{
    return capacity_mah * 1e-3 * 3600.0 * voltage;
}

} // namespace printed

#endif // PRINTED_COMMON_UNITS_HH
