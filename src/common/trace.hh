/**
 * @file
 * Scoped-span tracer emitting Chrome trace_event JSON.
 *
 * Spans mark the phases of the flow (synthesis, cache builds,
 * parallel jobs, Monte-Carlo phases); the buffered events are
 * written as one Chrome-loadable JSON document (open it in
 * chrome://tracing or Perfetto) with a single pid for the process
 * and one tid per thread — ThreadPool workers register themselves
 * as "pool-worker-N".
 *
 * Tracing is disabled by default and is *zero-overhead* when
 * disabled: Span's constructor is one relaxed atomic load. Enable
 * it with the PRINTED_TRACE environment variable (value = output
 * path) or a bench's --trace-out flag; the file is written by an
 * atexit hook (or an explicit flush()).
 *
 * Determinism rule (DESIGN.md "Observability"): tracing is
 * observational only. Nothing reads a span back; enabling tracing
 * must not change a single simulated result bit — the
 * thread-determinism tests assert exactly that.
 */

#ifndef PRINTED_COMMON_TRACE_HH
#define PRINTED_COMMON_TRACE_HH

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

namespace printed::trace
{

namespace detail
{
extern std::atomic<bool> gEnabled;

/** Record one completed span (start/duration in microseconds). */
void recordSpan(const char *name, std::uint64_t startUs,
                std::uint64_t durationUs, const std::string &detail);

/** Microseconds since the tracer's epoch. */
std::uint64_t nowUs();
} // namespace detail

/** Is tracing currently enabled? One relaxed atomic load. */
inline bool
enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}

/**
 * Start recording. With a non-empty path, the trace JSON is
 * written there by an atexit hook (and by flush()); with an empty
 * path events are only buffered (tests read them via write()).
 */
void enable(const std::string &path = "");

/** Stop recording (buffered events are kept until clear()). */
void disable();

/** If PRINTED_TRACE is set and non-empty, enable(its value). */
void initFromEnv();

/** Drop all buffered events (thread registrations survive). */
void clear();

/** Number of buffered span events. */
std::size_t eventCount();

/**
 * Name the calling thread in the trace ("main", "pool-worker-3").
 * Cheap and always allowed — names registered while tracing is
 * disabled still apply if it is enabled later.
 */
void setThreadName(const std::string &name);

/** Write the Chrome trace_event JSON document. */
void write(std::ostream &os);

/** Write to the enable()d path, if any. Safe to call repeatedly. */
void flush();

/**
 * RAII span: construction starts the clock, destruction records a
 * Chrome "X" (complete) event on the calling thread's tid. A no-op
 * when tracing is disabled at construction time.
 */
class Span
{
  public:
    explicit Span(const char *name) : Span(name, std::string()) {}

    /** @param detail free-form text shown in the event's args. */
    Span(const char *name, std::string detail)
        : name_(name), detail_(std::move(detail)),
          active_(enabled()),
          start_(active_ ? detail::nowUs() : 0)
    {}

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span()
    {
        if (active_)
            detail::recordSpan(name_, start_,
                               detail::nowUs() - start_, detail_);
    }

  private:
    const char *name_;
    std::string detail_;
    bool active_;
    std::uint64_t start_;
};

} // namespace printed::trace

#endif // PRINTED_COMMON_TRACE_HH
