/**
 * @file
 * Printed memory device characterization (paper Table 6) and the
 * technology-scaling rules used to derive CNT-TFT equivalents.
 *
 * The EGFET values are the paper's measurements of inkjet-printed
 * devices. CNT-TFT instruction ROMs use a diode-connected
 * transistor per HIGH crosspoint (Section 6); the paper reports
 * their access latency (302 us) but no full table, so the other
 * CNT memory parameters are scaled from the EGFET entries by the
 * corresponding standard-cell ratios (documented per accessor).
 */

#ifndef PRINTED_MEM_DEVICES_HH
#define PRINTED_MEM_DEVICES_HH

#include <string>
#include <vector>

#include "tech/technology.hh"

namespace printed
{

/** One row of Table 6. */
struct MemoryDeviceSpec
{
    std::string name;        ///< e.g. "1-bit RAM", "2-bit ROM"
    double area_mm2 = 0;     ///< per cell (RAM bit / ROM dot / ADC)
    double activePower_uW = 0;
    double staticPower_uW = 0;
    double delay_ms = 0;
};

/** Kinds of printed memory devices. */
enum class MemDevice
{
    Ram1b,  ///< 1-bit SRAM cell
    Rom1b,  ///< crosspoint dot, 1 bit
    Rom2b,  ///< crosspoint dot, 2 bits (MLC)
    Rom4b,  ///< crosspoint dot, 4 bits (MLC)
    Adc2b,  ///< 2-bit sense ADC
    Adc4b,  ///< 4-bit sense ADC
};

/** Table 6 (EGFET, VDD = 1 V). */
const MemoryDeviceSpec &egfetMemoryDevice(MemDevice dev);

/** All Table 6 rows in paper order. */
const std::vector<MemoryDeviceSpec> &egfetMemoryDevices();

/**
 * Device spec in a given technology. EGFET returns Table 6
 * directly; CNT-TFT scales area and power by the INVX1 cell ratios
 * and uses the paper's reported 302 us CNT ROM latency (RAM delay
 * scaled by the DFF delay ratio).
 */
MemoryDeviceSpec memoryDevice(MemDevice dev, TechKind tech);

/** ROM dot device for a bits-per-cell setting (1, 2, or 4). */
MemDevice romDeviceFor(unsigned bits_per_cell);

/** ADC device matching a bits-per-cell setting (2 or 4). */
MemDevice adcDeviceFor(unsigned bits_per_cell);

} // namespace printed

#endif // PRINTED_MEM_DEVICES_HH
