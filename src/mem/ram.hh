/**
 * @file
 * Printed SRAM model (data memory, and the RAM-based instruction
 * memory baseline of Table 5).
 *
 * Built from the Table 6 1-bit SRAM cell. Two power accountings are
 * provided:
 *
 *   - table5Power(): every bit active, power = bits * (16 + 3.23)
 *     uW. This is the accounting the paper's Table 5 uses (e.g.
 *     openMSP430 mult: 512 bits -> 4.3 cm^2, 9.8 mW).
 *   - access-based: one word's bits conduct during an access
 *     (activePower), the rest contribute static power only. Used
 *     for the application-level energy evaluation (Figure 8).
 */

#ifndef PRINTED_MEM_RAM_HH
#define PRINTED_MEM_RAM_HH

#include <cstddef>

#include "mem/devices.hh"
#include "tech/technology.hh"

namespace printed
{

/** Parametric printed SRAM instance. */
class SramRam
{
  public:
    /**
     * @param words number of words
     * @param word_bits bits per word
     * @param tech EGFET or CNT-TFT
     */
    SramRam(std::size_t words, unsigned word_bits,
            TechKind tech = TechKind::EGFET);

    std::size_t words() const { return words_; }
    unsigned wordBits() const { return wordBits_; }
    std::size_t bits() const { return words_ * wordBits_; }
    TechKind tech() const { return tech_; }

    /** Total area [mm^2] = bits x cell area. */
    double areaMm2() const;

    /** Access latency for one word [ms]. */
    double accessDelayMs() const;

    /** Power of one word's bits during an access [uW]. */
    double activePower_uW() const;

    /** Standby power of the whole array [uW]. */
    double staticPower_uW() const;

    /** Energy of one word access [nJ]. */
    double accessEnergyNj() const;

    /**
     * The paper's Table 5 accounting: all bits charged at active +
     * static power [mW].
     */
    double table5Power_mW() const;

  private:
    std::size_t words_;
    unsigned wordBits_;
    TechKind tech_;
    MemoryDeviceSpec cell_;
};

} // namespace printed

#endif // PRINTED_MEM_RAM_HH
