#include "compare.hh"

#include "mem/ram.hh"
#include "mem/rom.hh"

namespace printed
{

RomVsRam
romVsRamPerDevice(TechKind tech)
{
    const MemoryDeviceSpec ram = memoryDevice(MemDevice::Ram1b, tech);
    const MemoryDeviceSpec rom = memoryDevice(MemDevice::Rom1b, tech);
    RomVsRam r;
    r.powerGain = ram.activePower_uW / rom.activePower_uW;
    r.areaGain = ram.area_mm2 / rom.area_mm2;
    r.delayGain = ram.delay_ms / rom.delay_ms;
    return r;
}

RomVsRam
romVsRamForMemory(std::size_t words, unsigned word_bits, TechKind tech)
{
    const SramRam ram(words, word_bits, tech);
    const CrosspointRom rom(words, word_bits, 1, tech);
    RomVsRam r;
    r.powerGain = (ram.activePower_uW() + ram.staticPower_uW()) /
                  (rom.activePower_uW() + rom.staticPower_uW());
    r.areaGain = ram.areaMm2() / rom.areaMm2();
    r.delayGain = ram.accessDelayMs() / rom.readDelayMs();
    return r;
}

} // namespace printed
