#include "rom.hh"

#include <cmath>

#include "common/bits.hh"
#include "common/logging.hh"

namespace printed
{

namespace
{

/**
 * Footprint of one peripheral device (access transistor, decoder
 * transistor, or pull-up resistor) [mm^2], EGFET. Calibrated so the
 * paper's 16x9 reference point lands at 20.42 mm^2 (144 dots at
 * 0.05 plus ~268 peripheral devices at this pitch).
 */
constexpr double egfetPeripheralArea_mm2 = 0.05;

/**
 * Row count cap: the fabricated design uses a 4-to-16 row decoder
 * (Figure 9); wider memories extend in columns.
 */
constexpr std::size_t maxRows = 16;

} // anonymous namespace

CrosspointRom::CrosspointRom(std::size_t words, unsigned word_bits,
                             unsigned bits_per_cell, TechKind tech)
    : words_(words), wordBits_(word_bits), bitsPerCell_(bits_per_cell),
      tech_(tech), cell_(memoryDevice(romDeviceFor(bits_per_cell),
                                      tech))
{
    fatalIf(words == 0 || words > 256,
            "CrosspointRom: 1..256 words");
    fatalIf(word_bits == 0 || word_bits > 64,
            "CrosspointRom: word bits in 1..64");
    if (bits_per_cell > 1)
        adc_ = memoryDevice(adcDeviceFor(bits_per_cell), tech);
}

std::size_t
CrosspointRom::rows() const
{
    return std::min(words_, maxRows);
}

std::size_t
CrosspointRom::columns() const
{
    return (words_ + rows() - 1) / rows();
}

std::size_t
CrosspointRom::subBlocks() const
{
    return (wordBits_ + bitsPerCell_ - 1) / bitsPerCell_;
}

std::size_t
CrosspointRom::cells() const
{
    return subBlocks() * words_;
}

std::size_t
CrosspointRom::transistors() const
{
    const std::size_t r = rows();
    const std::size_t c = columns();
    const std::size_t s = subBlocks();
    return r * ceilLog2(r) + c * ceilLog2(c) + s * (r + c);
}

std::size_t
CrosspointRom::pullUps() const
{
    return 2 * rows() + columns() + 2 * subBlocks();
}

double
CrosspointRom::areaMm2() const
{
    // Dots + periphery (decoders, access transistors, pull-ups) +
    // one sense ADC per sub-block for multi-level cells.
    const double peripheral_pitch =
        egfetPeripheralArea_mm2 *
        (tech_ == TechKind::EGFET
             ? 1.0
             : memoryDevice(MemDevice::Rom1b, tech_).area_mm2 /
                   egfetMemoryDevice(MemDevice::Rom1b).area_mm2);
    double area = double(cells()) * cell_.area_mm2 +
                  double(transistors() + pullUps()) * peripheral_pitch;
    if (bitsPerCell_ > 1)
        area += double(subBlocks()) * adc_.area_mm2;
    return area;
}

double
CrosspointRom::readDelayMs() const
{
    return cell_.delay_ms;
}

double
CrosspointRom::activePower_uW() const
{
    // Only the addressed crosspoint of each sub-block conducts
    // through the shared sensing resistor during a read; MLC adds
    // the per-sub-block ADC.
    double p = double(subBlocks()) * cell_.activePower_uW;
    if (bitsPerCell_ > 1)
        p += double(subBlocks()) * adc_.activePower_uW;
    return p;
}

double
CrosspointRom::staticPower_uW() const
{
    double p = double(cells()) * cell_.staticPower_uW;
    if (bitsPerCell_ > 1)
        p += double(subBlocks()) * adc_.staticPower_uW;
    return p;
}

double
CrosspointRom::readEnergyNj() const
{
    // uW * ms = nJ.
    return activePower_uW() * readDelayMs();
}

WormMemorySpec
wormReference()
{
    return WormMemorySpec{};
}

} // namespace printed
