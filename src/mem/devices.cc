#include "devices.hh"

#include "common/logging.hh"
#include "tech/library.hh"

namespace printed
{

namespace
{

/** Table 6 of the paper, in order. */
const std::vector<MemoryDeviceSpec> table6 = {
    {"1-bit RAM", 0.84, 16.0, 3.23, 2.5},
    {"1-bit ROM", 0.05, 2.77, 0.362, 1.03},
    {"2-bit ROM", 0.057, 1.87, 0.362, 1.56},
    {"4-bit ROM", 0.087, 3.01, 0.362, 3.1},
    {"2-bit ADC", 3.76, 56.8, 4.5, 5.63},
    {"4-bit ADC", 25.4, 306.0, 22.5, 13.8},
};

std::size_t
indexOf(MemDevice dev)
{
    switch (dev) {
      case MemDevice::Ram1b: return 0;
      case MemDevice::Rom1b: return 1;
      case MemDevice::Rom2b: return 2;
      case MemDevice::Rom4b: return 3;
      case MemDevice::Adc2b: return 4;
      case MemDevice::Adc4b: return 5;
    }
    panic("indexOf: unknown MemDevice");
}

} // anonymous namespace

const MemoryDeviceSpec &
egfetMemoryDevice(MemDevice dev)
{
    return table6[indexOf(dev)];
}

const std::vector<MemoryDeviceSpec> &
egfetMemoryDevices()
{
    return table6;
}

MemoryDeviceSpec
memoryDevice(MemDevice dev, TechKind tech)
{
    const MemoryDeviceSpec &egfet = egfetMemoryDevice(dev);
    if (tech == TechKind::EGFET)
        return egfet;

    // CNT-TFT scaling (Section 6 gives only the 302 us ROM access
    // latency; the rest is scaled from EGFET by standard-cell
    // ratios, see DESIGN.md "Substitutions"):
    //   area   x INVX1 area ratio (device footprints track the
    //          transistor feature size),
    //   power  x INVX1 switching-energy ratio,
    //   delay  ROMs: fixed 302 us; RAM/ADC: DFFX1 delay ratio.
    const CellLibrary &eg = egfetLibrary();
    const CellLibrary &cnt = cntLibrary();
    const double area_ratio = cnt.cell(CellKind::INVX1).area_mm2 /
                              eg.cell(CellKind::INVX1).area_mm2;
    const double energy_ratio = cnt.cell(CellKind::INVX1).energy_nJ /
                                eg.cell(CellKind::INVX1).energy_nJ;
    const double delay_ratio = cnt.cell(CellKind::DFFX1).worstDelayUs() /
                               eg.cell(CellKind::DFFX1).worstDelayUs();

    MemoryDeviceSpec spec = egfet;
    spec.name += " (CNT)";
    spec.area_mm2 *= area_ratio;
    spec.activePower_uW *= energy_ratio * 1e3; // CNT runs ~kHz: the
    // per-access energy is what scales; express as power at the
    // higher access rate by keeping the energy-per-access constant
    // ratio (energy_ratio) against the 1000x higher frequency.
    spec.staticPower_uW *= energy_ratio * 1e3;

    const bool is_rom = dev == MemDevice::Rom1b ||
                        dev == MemDevice::Rom2b ||
                        dev == MemDevice::Rom4b;
    if (is_rom) {
        // Paper, Section 8: CNT-TFT execution times are dominated
        // by 302 us ROM access latencies.
        spec.delay_ms = 0.302 * (egfet.delay_ms / 1.03);
    } else {
        spec.delay_ms *= delay_ratio;
    }
    return spec;
}

MemDevice
romDeviceFor(unsigned bits_per_cell)
{
    switch (bits_per_cell) {
      case 1: return MemDevice::Rom1b;
      case 2: return MemDevice::Rom2b;
      case 4: return MemDevice::Rom4b;
      default:
        fatal("romDeviceFor: bits per cell must be 1, 2, or 4");
    }
}

MemDevice
adcDeviceFor(unsigned bits_per_cell)
{
    switch (bits_per_cell) {
      case 2: return MemDevice::Adc2b;
      case 4: return MemDevice::Adc4b;
      default:
        fatal("adcDeviceFor: MLC ADCs exist for 2 or 4 bits");
    }
}

} // namespace printed
