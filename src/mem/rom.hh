/**
 * @file
 * Crosspoint instruction-ROM model (paper Section 6, Figure 9).
 *
 * Geometry: the memory is split into one sub-block per output digit
 * (a word of W bits at m bits per cell needs S = ceil(W/m)
 * sub-blocks). Each sub-block is an R x C crosspoint array holding
 * one cell of every word (R*C >= N words); a shorted crosspoint
 * (printed PEDOT:PSS dot) reads HIGH through the shared sensing
 * resistor, an open one reads LOW. Row and column decoders are
 * shared among all sub-blocks; access devices are one transistor
 * per row and one per column in each sub-block.
 *
 * Transistor / pull-up accounting (validated against the paper's
 * 16x9 example: 220 transistors + 52 pull-up resistors, 20.42 mm^2,
 * roughly 1/3 the area of the WORM memory of Myny et al. [79]):
 *
 *   transistors = R*ceil(log2 R) + C*ceil(log2 C)   (decoders)
 *               + S * (R + C)                       (access devices)
 *   pull-ups    = 2R + C + 2S    (decoder loads + drivers, sense
 *                                 resistor + output stage per block)
 */

#ifndef PRINTED_MEM_ROM_HH
#define PRINTED_MEM_ROM_HH

#include <cstddef>

#include "mem/devices.hh"
#include "tech/technology.hh"

namespace printed
{

/** Parametric crosspoint ROM instance. */
class CrosspointRom
{
  public:
    /**
     * @param words number of stored words (N)
     * @param word_bits bits per word (W; 24 for standard TP-ISA)
     * @param bits_per_cell 1, 2, or 4 (MLC dots, Section 6)
     * @param tech EGFET or CNT-TFT
     */
    CrosspointRom(std::size_t words, unsigned word_bits,
                  unsigned bits_per_cell = 1,
                  TechKind tech = TechKind::EGFET);

    std::size_t words() const { return words_; }
    unsigned wordBits() const { return wordBits_; }
    unsigned bitsPerCell() const { return bitsPerCell_; }
    TechKind tech() const { return tech_; }

    /** Sub-blocks S = ceil(W / m), one per output digit. */
    std::size_t subBlocks() const;

    /** Crosspoint dots in the whole memory (N per sub-block). */
    std::size_t cells() const;

    /**
     * Rows per sub-block. The fabricated design uses a 4-to-16 row
     * decoder, so rows are capped at 16 (the paper's 16x9 example
     * is 16 rows x 1 column); larger memories extend in columns.
     */
    std::size_t rows() const;

    /** Columns per sub-block: ceil(N / rows). */
    std::size_t columns() const;

    /** Transistor count per the Figure 9 accounting. */
    std::size_t transistors() const;

    /** Pull-up resistor count per the Figure 9 accounting. */
    std::size_t pullUps() const;

    /** Total area [mm^2]: dots + MLC sense ADCs. */
    double areaMm2() const;

    /** Read latency for one word [ms]. */
    double readDelayMs() const;

    /** Power while reading [uW]: active sub-blocks + shared ADC. */
    double activePower_uW() const;

    /** Standby power [uW]. */
    double staticPower_uW() const;

    /** Energy of one word read [nJ]. */
    double readEnergyNj() const;

  private:
    std::size_t words_;
    unsigned wordBits_;
    unsigned bitsPerCell_;
    TechKind tech_;
    MemoryDeviceSpec cell_;
    MemoryDeviceSpec adc_; ///< zeroed for 1-bit cells
};

/**
 * The WORM (write-once read-many) instruction memory of Myny et
 * al. [79], the paper's point of comparison for the 16x9 case:
 * 815 storage + 189 programming/interface transistors, 62.1 mm^2.
 */
struct WormMemorySpec
{
    std::size_t storageTransistors = 815;
    std::size_t interfaceTransistors = 189;
    double area_mm2 = 62.1;

    std::size_t totalTransistors() const
    {
        return storageTransistors + interfaceTransistors;
    }
};

/** Published WORM reference design (16 words x 9 bits). */
WormMemorySpec wormReference();

} // namespace printed

#endif // PRINTED_MEM_ROM_HH
