#include "ram.hh"

#include "common/logging.hh"

namespace printed
{

SramRam::SramRam(std::size_t words, unsigned word_bits, TechKind tech)
    : words_(words), wordBits_(word_bits), tech_(tech),
      cell_(memoryDevice(MemDevice::Ram1b, tech))
{
    fatalIf(words == 0, "SramRam: need at least one word");
    fatalIf(word_bits == 0 || word_bits > 64,
            "SramRam: word bits in 1..64");
}

double
SramRam::areaMm2() const
{
    return double(bits()) * cell_.area_mm2;
}

double
SramRam::accessDelayMs() const
{
    return cell_.delay_ms;
}

double
SramRam::activePower_uW() const
{
    return double(wordBits_) * cell_.activePower_uW;
}

double
SramRam::staticPower_uW() const
{
    return double(bits()) * cell_.staticPower_uW;
}

double
SramRam::accessEnergyNj() const
{
    return activePower_uW() * accessDelayMs();
}

double
SramRam::table5Power_mW() const
{
    return double(bits()) *
           (cell_.activePower_uW + cell_.staticPower_uW) * 1e-3;
}

} // namespace printed
