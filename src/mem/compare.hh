/**
 * @file
 * ROM-vs-RAM instruction memory comparison: the abstract's headline
 * "crosspoint-based instruction ROM outperforms a RAM-based design
 * by 5.77x, 16.8x, and 2.42x in power, area, and delay" follows
 * directly from the Table 6 per-device data; this module computes
 * it (and the same comparison at any memory geometry).
 */

#ifndef PRINTED_MEM_COMPARE_HH
#define PRINTED_MEM_COMPARE_HH

#include <cstddef>

#include "tech/technology.hh"

namespace printed
{

/** Improvement factors of the crosspoint ROM over a RAM design. */
struct RomVsRam
{
    double powerGain = 0; ///< RAM active power / ROM active power
    double areaGain = 0;  ///< RAM cell area / ROM dot area
    double delayGain = 0; ///< RAM delay / ROM delay
};

/**
 * Per-device comparison (the paper's headline numbers):
 * 16/2.77 = 5.77x power, 0.84/0.05 = 16.8x area,
 * 2.5/1.03 = 2.42x delay.
 */
RomVsRam romVsRamPerDevice(TechKind tech = TechKind::EGFET);

/**
 * Whole-memory comparison for a concrete instruction memory
 * (includes ROM periphery and the RAM's full-array accounting).
 */
RomVsRam romVsRamForMemory(std::size_t words, unsigned word_bits,
                           TechKind tech = TechKind::EGFET);

} // namespace printed

#endif // PRINTED_MEM_COMPARE_HH
