/**
 * @file
 * Printed/flexible electronics technology descriptors.
 *
 * Reproduces Table 1 of the paper: operating voltage and mobility of
 * the candidate printed technologies, plus the processing route
 * (additive inkjet vs. subtractive shadow-mask/solution) that drives
 * the paper's cost arguments.
 */

#ifndef PRINTED_TECH_TECHNOLOGY_HH
#define PRINTED_TECH_TECHNOLOGY_HH

#include <string>
#include <vector>

namespace printed
{

/** The two technologies the paper builds standard-cell libraries for. */
enum class TechKind
{
    EGFET,  ///< Electrolyte-gated FET, inkjet printed, VDD = 1 V
    CNT_TFT ///< Carbon-nanotube TFT, shadow mask, VDD = 3 V
};

/** Human-readable name of a TechKind ("EGFET" / "CNT-TFT"). */
std::string techName(TechKind kind);

/** Manufacturing route classes from Figure 1. */
enum class ProcessingRoute
{
    Additive,    ///< deposition only (e.g. inkjet)
    Subtractive, ///< deposition + etching steps (e.g. shadow mask)
};

/**
 * One row of Table 1: a printed/flexible transistor technology and
 * its headline electrical characteristics.
 */
struct TechnologyInfo
{
    std::string name;          ///< process technology label
    std::string processing;    ///< processing route description
    ProcessingRoute route;     ///< additive or subtractive
    double minVoltage;         ///< lower bound of operating voltage [V]
    double maxVoltage;         ///< upper bound of operating voltage [V]
    double mobility;           ///< field-effect mobility [cm^2/Vs]
    bool batteryCompatible;    ///< operating voltage low enough for
                               ///< printed batteries (<= ~3 V)
};

/**
 * The Table 1 technology survey, in paper order.
 *
 * EGFET and CNT-TFT are the two battery-compatible entries; the
 * others motivate why older printed technologies (30-50 V OTFTs)
 * could not target battery-powered applications.
 */
const std::vector<TechnologyInfo> &technologySurvey();

/** Table 1 row for the given standard-cell technology. */
const TechnologyInfo &technologyInfo(TechKind kind);

} // namespace printed

#endif // PRINTED_TECH_TECHNOLOGY_HH
