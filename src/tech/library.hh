/**
 * @file
 * Standard-cell libraries for the EGFET and CNT-TFT printed
 * technologies.
 *
 * A CellLibrary bundles the Table 2 characterization of all eleven
 * cells with the technology's supply voltage and static-power
 * coefficient. It is the single source of truth consumed by the
 * synthesis generators, static timing analysis, and the power model.
 */

#ifndef PRINTED_TECH_LIBRARY_HH
#define PRINTED_TECH_LIBRARY_HH

#include <array>
#include <string>

#include "tech/cell.hh"
#include "tech/technology.hh"

namespace printed
{

/**
 * A characterized standard-cell library for one printed technology.
 *
 * Static power model: Table 2 reports switching energy only, but
 * EGFET transistor-resistor logic conducts statically whenever a
 * pull-down network is on (and pseudo-CMOS CNT-TFT has residual
 * leakage). We model per-cell static power as
 *
 *     P_static(cell) = staticPowerPerStage_uW * staticStages(cell)
 *
 * with the per-stage coefficient calibrated once per technology so
 * the Table 4 totals of the four legacy cores are reproduced (see
 * DESIGN.md, "Calibration & modeling notes"). The same coefficient
 * is used unchanged for all TP-ISA results.
 */
class CellLibrary
{
  public:
    CellLibrary(TechKind kind, double vdd, double static_per_stage_uw,
                std::array<CellSpec, numCellKinds> cells);

    /** Technology this library characterizes. */
    TechKind tech() const { return tech_; }

    /** Library display name, e.g. "EGFET@1V". */
    std::string name() const;

    /** Nominal supply voltage [V]. */
    double vdd() const { return vdd_; }

    /** Characterization record for one cell. */
    const CellSpec &cell(CellKind kind) const;

    /** All cells in Table 2 order. */
    const std::array<CellSpec, numCellKinds> &cells() const
    {
        return cells_;
    }

    /** Static power of one cell instance [uW]. */
    double staticPowerUw(CellKind kind) const;

    /** Calibrated static power per resistor-loaded stage [uW]. */
    double staticPowerPerStageUw() const { return staticPerStageUw_; }

    /**
     * Clock period floor contributed by a flip-flop [us]: the
     * clk-to-q delay of DFFX1 (its worst-case transition).
     */
    double flopPeriodFloorUs() const;

  private:
    TechKind tech_;
    double vdd_;
    double staticPerStageUw_;
    std::array<CellSpec, numCellKinds> cells_;
};

/** The EGFET standard-cell library at VDD = 1 V (Table 2). */
const CellLibrary &egfetLibrary();

/** The CNT-TFT standard-cell library at VDD = 3 V (Table 2). */
const CellLibrary &cntLibrary();

/** Library for the given technology kind. */
const CellLibrary &libraryFor(TechKind kind);

} // namespace printed

#endif // PRINTED_TECH_LIBRARY_HH
