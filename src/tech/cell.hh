/**
 * @file
 * Standard-cell kinds and per-cell characterization records.
 *
 * The paper's standard-cell libraries (Section 3) contain exactly
 * eleven X1 cells for each technology; these are the only primitives
 * any netlist in this repository may instantiate, matching the
 * synthesis constraint the paper works under.
 */

#ifndef PRINTED_TECH_CELL_HH
#define PRINTED_TECH_CELL_HH

#include <array>
#include <string>

namespace printed
{

/**
 * The eleven cells of the EGFET / CNT-TFT standard-cell libraries
 * (Table 2), plus two pseudo-cells used only as netlist sources.
 */
enum class CellKind
{
    INVX1,     ///< inverter
    NAND2X1,   ///< 2-input NAND
    NOR2X1,    ///< 2-input NOR
    AND2X1,    ///< 2-input AND
    OR2X1,     ///< 2-input OR
    XOR2X1,    ///< 2-input XOR
    XNOR2X1,   ///< 2-input XNOR
    LATCHX1,   ///< SR latch
    DFFX1,     ///< D flip-flop
    DFFNRX1,   ///< D flip-flop with asynchronous reset
    TSBUFX1,   ///< tri-state buffer
    NumCells
};

/** Number of real library cells. */
constexpr std::size_t numCellKinds =
    static_cast<std::size_t>(CellKind::NumCells);

/** Library cell name as it appears in Table 2 (e.g. "NAND2X1"). */
std::string cellName(CellKind kind);

/** Number of logic inputs of the cell (DFF: 1 = D, DFFNR: 2 = D,RN). */
unsigned cellInputCount(CellKind kind);

/** True for the sequential cells (LATCHX1, DFFX1, DFFNRX1). */
bool cellIsSequential(CellKind kind);

/**
 * True when the cell's output is an inverted function of its inputs
 * (INV, NAND, NOR, XNOR). Used by static timing analysis to match
 * output rise transitions with input fall transitions.
 */
bool cellIsInverting(CellKind kind);

/**
 * True for non-monotone cells (XOR/XNOR): either input transition
 * direction can cause either output transition direction.
 */
bool cellIsNonMonotone(CellKind kind);

/**
 * Characterization record for one standard cell in one technology:
 * the Table 2 data plus the static-power model parameter.
 */
struct CellSpec
{
    CellKind kind = CellKind::INVX1;
    double area_mm2 = 0;   ///< layout area [mm^2]
    double energy_nJ = 0;  ///< switching energy per output toggle [nJ]
    double rise_us = 0;    ///< output rise delay [us]
    double fall_us = 0;    ///< output fall delay [us]

    /**
     * Number of resistor-loaded stages in the cell's
     * transistor-resistor (EGFET) or pseudo-CMOS (CNT-TFT)
     * implementation. Static power is proportional to this count;
     * see CellLibrary::staticPowerUw().
     */
    unsigned staticStages = 1;

    /** Worst-case propagation delay, max(rise, fall), in us. */
    double worstDelayUs() const { return rise_us > fall_us
                                      ? rise_us : fall_us; }
};

} // namespace printed

#endif // PRINTED_TECH_CELL_HH
