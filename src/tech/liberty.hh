/**
 * @file
 * Liberty (.lib) export of the printed standard-cell libraries.
 *
 * The paper's released artifact is a synthesis-ready PDK; this
 * writer emits the characterized cells in the Liberty format EDA
 * tools consume (scalar delay/energy values - the printed cells
 * were characterized at a single operating point, Table 2), so the
 * libraries can be used with an external synthesis flow alongside
 * the structural Verilog exporter.
 */

#ifndef PRINTED_TECH_LIBERTY_HH
#define PRINTED_TECH_LIBERTY_HH

#include <ostream>

#include "tech/library.hh"

namespace printed
{

/** Emit a CellLibrary in Liberty format. */
void writeLiberty(std::ostream &os, const CellLibrary &lib);

} // namespace printed

#endif // PRINTED_TECH_LIBERTY_HH
