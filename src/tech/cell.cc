#include "cell.hh"

#include "common/logging.hh"

namespace printed
{

std::string
cellName(CellKind kind)
{
    switch (kind) {
      case CellKind::INVX1:   return "INVX1";
      case CellKind::NAND2X1: return "NAND2X1";
      case CellKind::NOR2X1:  return "NOR2X1";
      case CellKind::AND2X1:  return "AND2X1";
      case CellKind::OR2X1:   return "OR2X1";
      case CellKind::XOR2X1:  return "XOR2X1";
      case CellKind::XNOR2X1: return "XNOR2X1";
      case CellKind::LATCHX1: return "LATCHX1";
      case CellKind::DFFX1:   return "DFFX1";
      case CellKind::DFFNRX1: return "DFFNRX1";
      case CellKind::TSBUFX1: return "TSBUFX1";
      default:
        panic("cellName: unknown CellKind");
    }
}

unsigned
cellInputCount(CellKind kind)
{
    switch (kind) {
      case CellKind::INVX1:
      case CellKind::DFFX1:
        return 1;
      case CellKind::NAND2X1:
      case CellKind::NOR2X1:
      case CellKind::AND2X1:
      case CellKind::OR2X1:
      case CellKind::XOR2X1:
      case CellKind::XNOR2X1:
      case CellKind::LATCHX1:  // S, R
      case CellKind::DFFNRX1:  // D, RN
      case CellKind::TSBUFX1:  // A, EN
        return 2;
      default:
        panic("cellInputCount: unknown CellKind");
    }
}

bool
cellIsSequential(CellKind kind)
{
    return kind == CellKind::LATCHX1 || kind == CellKind::DFFX1 ||
           kind == CellKind::DFFNRX1;
}

bool
cellIsInverting(CellKind kind)
{
    return kind == CellKind::INVX1 || kind == CellKind::NAND2X1 ||
           kind == CellKind::NOR2X1 || kind == CellKind::XNOR2X1;
}

bool
cellIsNonMonotone(CellKind kind)
{
    return kind == CellKind::XOR2X1 || kind == CellKind::XNOR2X1;
}

} // namespace printed
