#include "library.hh"

#include "common/logging.hh"

namespace printed
{

namespace
{

/**
 * Resistor-loaded stage counts per cell. These approximate the
 * transistor-resistor (EGFET) / pseudo-CMOS (CNT-TFT) internal
 * structure: simple inverting gates are one stage, composed gates
 * (AND = NAND + INV) two, XOR-class three, and the sequential cells
 * proportionally more, which is why DFFs dominate static power in
 * printed cores (Section 5 of the paper).
 */
constexpr std::array<unsigned, numCellKinds> stageCounts = {
    1,  // INVX1
    1,  // NAND2X1
    1,  // NOR2X1
    2,  // AND2X1
    2,  // OR2X1
    3,  // XOR2X1
    3,  // XNOR2X1
    4,  // LATCHX1
    8,  // DFFX1
    10, // DFFNRX1
    2,  // TSBUFX1
};

CellSpec
makeCell(CellKind kind, double area, double energy, double rise,
         double fall)
{
    CellSpec spec;
    spec.kind = kind;
    spec.area_mm2 = area;
    spec.energy_nJ = energy;
    spec.rise_us = rise;
    spec.fall_us = fall;
    spec.staticStages = stageCounts[static_cast<std::size_t>(kind)];
    return spec;
}

} // anonymous namespace

CellLibrary::CellLibrary(TechKind kind, double vdd,
                         double static_per_stage_uw,
                         std::array<CellSpec, numCellKinds> cells)
    : tech_(kind), vdd_(vdd), staticPerStageUw_(static_per_stage_uw),
      cells_(cells)
{
    for (std::size_t i = 0; i < numCellKinds; ++i) {
        panicIf(cells_[i].kind != static_cast<CellKind>(i),
                "CellLibrary: cells out of order");
        fatalIf(cells_[i].area_mm2 <= 0 || cells_[i].rise_us <= 0 ||
                cells_[i].fall_us <= 0,
                "CellLibrary: non-positive characterization for " +
                cellName(cells_[i].kind));
    }
}

std::string
CellLibrary::name() const
{
    return techName(tech_) + "@" +
           std::to_string(static_cast<int>(vdd_)) + "V";
}

const CellSpec &
CellLibrary::cell(CellKind kind) const
{
    const auto idx = static_cast<std::size_t>(kind);
    panicIf(idx >= numCellKinds, "CellLibrary::cell: bad kind");
    return cells_[idx];
}

double
CellLibrary::staticPowerUw(CellKind kind) const
{
    return staticPerStageUw_ * cell(kind).staticStages;
}

double
CellLibrary::flopPeriodFloorUs() const
{
    return cell(CellKind::DFFX1).worstDelayUs();
}

const CellLibrary &
egfetLibrary()
{
    // Table 2, EGFET columns, VDD = 1 V. Units: mm^2, nJ, us, us.
    //
    // The static-power coefficient (uW per stage) is calibrated so
    // that the four legacy-core powers of Table 4 are reproduced by
    // the characterization engine; see tests/test_legacy.cc.
    static const CellLibrary lib(
        TechKind::EGFET, 1.0, /*static_per_stage_uw=*/5.8,
        {
            makeCell(CellKind::INVX1,   0.224, 9.8,    1212, 174),
            makeCell(CellKind::NAND2X1, 0.247, 12.1,   1557, 986),
            makeCell(CellKind::NOR2X1,  0.399, 580,    1830, 904),
            makeCell(CellKind::AND2X1,  0.433, 584.1,  2101, 1284),
            makeCell(CellKind::OR2X1,   0.563, 603,    2040, 1271),
            makeCell(CellKind::XOR2X1,  1.04,  1460,   5474, 4982),
            makeCell(CellKind::XNOR2X1, 1.34,  1510,   6159, 3420),
            makeCell(CellKind::LATCHX1, 0.58,  624,    2643, 942),
            makeCell(CellKind::DFFX1,   1.41,  2360,   6149, 3923),
            makeCell(CellKind::DFFNRX1, 2.77,  3941,   5935, 4453),
            makeCell(CellKind::TSBUFX1, 0.446, 597,    2553, 1004),
        });
    return lib;
}

const CellLibrary &
cntLibrary()
{
    // Table 2, CNT-TFT columns, VDD = 3 V. Units: mm^2, nJ, us, us.
    //
    // Pseudo-CMOS has much lower static draw than transistor-resistor
    // logic; the small coefficient reflects its residual leakage.
    static const CellLibrary lib(
        TechKind::CNT_TFT, 3.0, /*static_per_stage_uw=*/1.9,
        {
            makeCell(CellKind::INVX1,   0.002, 0.093, 0.058, 2.9),
            makeCell(CellKind::NAND2X1, 0.003, 10.01, 0.088, 7.99),
            makeCell(CellKind::NOR2X1,  0.003, 18.61, 0.108, 3.65),
            makeCell(CellKind::AND2X1,  0.005, 18.35, 0.171, 8.05),
            makeCell(CellKind::OR2X1,   0.005, 21.33, 0.121, 4.10),
            makeCell(CellKind::XOR2X1,  0.012, 36.7,  1.908, 5.65),
            makeCell(CellKind::XNOR2X1, 0.014, 37.1,  2.118, 5.97),
            makeCell(CellKind::LATCHX1, 0.006, 19.55, 0.221, 3.75),
            makeCell(CellKind::DFFX1,   0.018, 41.5,  3.78,  4.19),
            makeCell(CellKind::DFFNRX1, 0.042, 50.7,  8.61,  8.77),
            makeCell(CellKind::TSBUFX1, 0.003, 19.5,  0.109, 2.83),
        });
    return lib;
}

const CellLibrary &
libraryFor(TechKind kind)
{
    switch (kind) {
      case TechKind::EGFET:
        return egfetLibrary();
      case TechKind::CNT_TFT:
        return cntLibrary();
    }
    panic("libraryFor: unknown TechKind");
}

} // namespace printed
