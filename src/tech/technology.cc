#include "technology.hh"

#include "common/logging.hh"

namespace printed
{

std::string
techName(TechKind kind)
{
    switch (kind) {
      case TechKind::EGFET:
        return "EGFET";
      case TechKind::CNT_TFT:
        return "CNT-TFT";
    }
    panic("techName: unknown TechKind");
}

const std::vector<TechnologyInfo> &
technologySurvey()
{
    // Table 1 of the paper. Voltages follow the printed ranges; a
    // single reported value is stored as min == max.
    static const std::vector<TechnologyInfo> rows = {
        {"EGFET", "Inkjet", ProcessingRoute::Additive,
         0.0, 1.0, 126.0, true},
        {"IOTFT", "Solution/inkjet", ProcessingRoute::Additive,
         40.0, 40.0, 1.0, false},
        {"OTFT (Ramon)", "Inkjet", ProcessingRoute::Additive,
         30.0, 30.0, 2e-4, false},
        {"OTFT (Chung)", "Inkjet", ProcessingRoute::Additive,
         50.0, 50.0, 0.02, false},
        {"OTFT (Kang)", "Gravure-inkjet", ProcessingRoute::Additive,
         15.0, 15.0, 1.0, false},
        {"Carbon Nanotube", "Solution/shadow mask",
         ProcessingRoute::Subtractive, 1.0, 2.0, 25.0, true},
        {"OTFT (Chang)", "Shadow mask", ProcessingRoute::Subtractive,
         5.0, 10.0, 0.16, false},
        {"SAM OTFT", "Shadow mask", ProcessingRoute::Subtractive,
         2.0, 2.0, 0.5, true},
        {"OTFT (Plassmeyer)", "Shadow mask",
         ProcessingRoute::Subtractive, 20.0, 40.0, 11.0, false},
    };
    return rows;
}

const TechnologyInfo &
technologyInfo(TechKind kind)
{
    const auto &rows = technologySurvey();
    switch (kind) {
      case TechKind::EGFET:
        return rows[0];
      case TechKind::CNT_TFT:
        return rows[5];
    }
    panic("technologyInfo: unknown TechKind");
}

} // namespace printed
