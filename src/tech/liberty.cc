#include "liberty.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"

namespace printed
{

namespace
{

/** Boolean function of each combinational cell. */
const char *
cellFunction(CellKind kind)
{
    switch (kind) {
      case CellKind::INVX1:   return "(!A)";
      case CellKind::NAND2X1: return "(!(A&B))";
      case CellKind::NOR2X1:  return "(!(A+B))";
      case CellKind::AND2X1:  return "(A&B)";
      case CellKind::OR2X1:   return "(A+B)";
      case CellKind::XOR2X1:  return "(A^B)";
      case CellKind::XNOR2X1: return "(!(A^B))";
      case CellKind::TSBUFX1: return "A";
      default:
        panic("cellFunction: sequential cell");
    }
}

void
writePin(std::ostream &os, const char *name)
{
    os << "    pin(" << name << ") {\n"
       << "      direction : input;\n"
       << "    }\n";
}

} // anonymous namespace

void
writeLiberty(std::ostream &os, const CellLibrary &lib)
{
    std::string name = lib.name();
    std::replace(name.begin(), name.end(), '@', '_');
    std::replace(name.begin(), name.end(), '-', '_');

    os << "/* Printed standard-cell library (Table 2 of 'Printed"
          " Microprocessors', ISCA 2020 reproduction). */\n"
       << "library(" << name << ") {\n"
       << "  delay_model : generic_cmos;\n"
       << "  time_unit : \"1us\";\n"
       << "  voltage_unit : \"1V\";\n"
       << "  leakage_power_unit : \"1uW\";\n"
       << "  capacitive_load_unit(1, pf);\n"
       << "  nom_voltage : " << lib.vdd() << ";\n\n";

    for (std::size_t i = 0; i < numCellKinds; ++i) {
        const auto kind = static_cast<CellKind>(i);
        const CellSpec &spec = lib.cell(kind);
        os << "  cell(" << cellName(kind) << ") {\n"
           << "    area : " << spec.area_mm2 << "; /* mm^2 */\n"
           << "    cell_leakage_power : "
           << lib.staticPowerUw(kind) << ";\n";

        const bool seq = cellIsSequential(kind);
        if (kind == CellKind::DFFX1 || kind == CellKind::DFFNRX1) {
            os << "    ff(IQ, IQN) {\n"
               << "      clocked_on : \"CK\";\n"
               << "      next_state : \"D\";\n";
            if (kind == CellKind::DFFNRX1)
                os << "      clear : \"!RN\";\n";
            os << "    }\n";
            writePin(os, "D");
            writePin(os, "CK");
            if (kind == CellKind::DFFNRX1)
                writePin(os, "RN");
        } else if (kind == CellKind::LATCHX1) {
            os << "    latch(IQ, IQN) {\n"
               << "      preset : \"S\";\n"
               << "      clear : \"R\";\n"
               << "    }\n";
            writePin(os, "S");
            writePin(os, "R");
        } else {
            writePin(os, "A");
            if (cellInputCount(kind) == 2)
                writePin(os, kind == CellKind::TSBUFX1 ? "EN" : "B");
        }

        const char *out = seq ? "Q" : "Y";
        os << "    pin(" << out << ") {\n"
           << "      direction : output;\n";
        if (!seq)
            os << "      function : \"" << cellFunction(kind)
               << "\";\n";
        else
            os << "      function : \"IQ\";\n";
        if (kind == CellKind::TSBUFX1)
            os << "      three_state : \"!EN\";\n";
        os << "      timing() {\n"
           << "        cell_rise(scalar) { values(\""
           << spec.rise_us << "\"); }\n"
           << "        cell_fall(scalar) { values(\""
           << spec.fall_us << "\"); }\n"
           << "      }\n"
           << "      internal_power() {\n"
           << "        rise_power(scalar) { values(\""
           << spec.energy_nJ << "\"); } /* nJ per toggle */\n"
           << "      }\n"
           << "    }\n"
           << "  }\n\n";
    }
    os << "}\n";
}

} // namespace printed
