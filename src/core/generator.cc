#include "generator.hh"

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"
#include "synth/blocks.hh"
#include "synth/opt.hh"

namespace printed
{

using namespace synth;

namespace
{

/** Decoded instruction fields (combinational, from a word bus). */
struct DecodeSignals
{
    Bus opcode; ///< 4-bit primary opcode
    NetId w = invalidNet;
    NetId c = invalidNet;
    NetId a = invalidNet;
    NetId b = invalidNet;
    std::vector<NetId> hot; ///< one-hot opcode lines (numOpcodes)
    Bus op1;
    Bus op2;

    NetId hotOf(Opcode op) const
    {
        return hot[static_cast<std::size_t>(op)];
    }
};

DecodeSignals
decodeFields(Netlist &nl, const Bus &word, const IsaConfig &isa)
{
    const unsigned ob = isa.operandBits;
    panicIf(word.size() != isa.instructionBits(),
            "decodeFields: word width mismatch");
    DecodeSignals d;
    d.op2 = busSlice(word, 0, ob);
    d.op1 = busSlice(word, ob, ob);
    d.b = word[2 * ob + 0];
    d.a = word[2 * ob + 1];
    d.c = word[2 * ob + 2];
    d.w = word[2 * ob + 3];
    d.opcode = busSlice(word, 2 * ob + 4, 4);
    d.hot = binaryDecoder(nl, d.opcode, numOpcodes);
    return d;
}

/** Bitwise bus equality: XNOR per bit + AND reduce. */
NetId
equalsBus(Netlist &nl, const Bus &a, const Bus &b)
{
    panicIf(a.size() != b.size(), "equalsBus: width mismatch");
    Bus eq;
    eq.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        eq.push_back(nl.addGate(CellKind::XNOR2X1, a[i], b[i]));
    return andReduce(nl, eq);
}

/**
 * Effective-address unit for one operand: BAR[sel] + offset
 * (Section 5.1). Degenerates to plain wiring when only BAR[0]
 * exists - the logic the paper notes program-specific cores can
 * drop entirely.
 */
Bus
addressUnit(Netlist &nl, const Bus &operand,
            const std::vector<Bus> &bar_vals, const CoreConfig &cfg)
{
    const IsaConfig &isa = cfg.isa;
    const Bus offset = busSlice(operand, 0, isa.offsetBits());
    const Bus off_ext = busExtend(nl, offset, cfg.addrBits);
    if (isa.barCount == 1)
        return off_ext;
    const Bus sel =
        busSlice(operand, isa.offsetBits(), isa.barSelBits());
    const auto hot = binaryDecoder(nl, sel, isa.barCount);
    const Bus bar = busMuxOneHot(nl, hot, bar_vals);
    return rippleAdder(nl, bar, off_ext, nl.constZero()).sum;
}

/** ALU outputs: the result bus plus next carry/overflow values. */
struct AluOut
{
    Bus result;
    NetId cNext = invalidNet;
    NetId vNext = invalidNet;
};

/**
 * The TP-ISA ALU: shared add/sub, bitwise logic, single-bit
 * rotators (no barrel shifter - Section 5.1), and the store-
 * immediate path, combined by a one-hot AND-OR mux.
 */
AluOut
buildAlu(Netlist &nl, const DecodeSignals &d, const Bus &a,
         const Bus &b, NetId flag_c, const CoreConfig &cfg)
{
    const unsigned width = cfg.isa.datawidth;

    // Only the blocks of implemented opcodes are elaborated:
    // program-specific cores prune the rest (ASIP-style, Section 7).
    std::vector<NetId> sels;
    std::vector<Bus> choices;
    std::vector<NetId> c_sels;
    std::vector<Bus> c_choices;

    AluOut out;

    if (cfg.implements(Opcode::ADD)) {
        // Carry-in: ADD -> 0, SUB/CMP -> 1 (not-borrow),
        // ADC/SBB -> C.
        const NetId cin = mux2(nl, d.c, d.a, flag_c);
        const AddResult addsub = rippleAddSub(nl, a, b, d.a, cin);
        sels.push_back(d.hotOf(Opcode::ADD));
        choices.push_back(addsub.sum);
        c_sels.push_back(d.hotOf(Opcode::ADD));
        c_choices.push_back({addsub.carryOut});
        const Bus v_next = busMuxOneHot(nl, {d.hotOf(Opcode::ADD)},
                                        {{addsub.overflow}});
        out.vNext = v_next[0];
    } else {
        out.vNext = nl.constZero();
    }

    if (cfg.implements(Opcode::AND)) {
        sels.push_back(d.hotOf(Opcode::AND));
        choices.push_back(busAnd(nl, a, b));
    }
    if (cfg.implements(Opcode::OR)) {
        sels.push_back(d.hotOf(Opcode::OR));
        choices.push_back(busOr(nl, a, b));
    }
    if (cfg.implements(Opcode::XOR)) {
        sels.push_back(d.hotOf(Opcode::XOR));
        choices.push_back(busXor(nl, a, b));
    }
    if (cfg.implements(Opcode::NOT)) {
        sels.push_back(d.hotOf(Opcode::NOT));
        choices.push_back(busNot(nl, b));
    }

    // Rotates operate on the second operand (unary ops read op2).
    if (cfg.implements(Opcode::RL)) {
        const RotateResult rl = rotateLeft1(b);
        const RotateResult rlc = rotateLeft1Carry(b, flag_c);
        sels.push_back(d.hotOf(Opcode::RL));
        choices.push_back(busMux2(nl, d.c, rl.data, rlc.data));
        c_sels.push_back(d.hotOf(Opcode::RL));
        c_choices.push_back({rl.carryOut});
    }
    if (cfg.implements(Opcode::RR)) {
        const RotateResult rr = rotateRight1(b);
        const RotateResult rrc = rotateRight1Carry(b, flag_c);
        const RotateResult rra = shiftRightArith1(b);
        const Bus rr_plain = busMux2(nl, d.a, rr.data, rra.data);
        sels.push_back(d.hotOf(Opcode::RR));
        choices.push_back(busMux2(nl, d.c, rr_plain, rrc.data));
        c_sels.push_back(d.hotOf(Opcode::RR));
        c_choices.push_back({rr.carryOut});
    }
    if (cfg.implements(Opcode::STORE)) {
        sels.push_back(d.hotOf(Opcode::STORE));
        choices.push_back(busExtend(nl, d.op2, width));
    }

    fatalIf(choices.empty(),
            "buildAlu: the opcode mask implements no result-"
            "producing instruction");

    // Tri-state result bus: one TSBUF per source per bit, driven by
    // the one-hot opcode lines (the printed library's TSBUFX1 idiom;
    // an AND-OR mux would roughly double the cell count here - see
    // bench_ablation_printed).
    out.result = cfg.tristateResultMux
                     ? busMuxTristate(nl, sels, choices)
                     : busMuxOneHot(nl, sels, choices);

    // Next carry: adder carry-out, or the bit rotated out. Logic
    // ops clear carry (the one-hot mux yields 0 for them).
    if (c_sels.empty()) {
        out.cNext = nl.constZero();
    } else {
        const Bus c_next = busMuxOneHot(nl, c_sels, c_choices);
        out.cNext = c_next[0];
    }
    return out;
}

} // anonymous namespace

Netlist
elaborateCore(const CoreConfig &cfg)
{
    cfg.check();
    trace::Span span("synth.elaborateCore", cfg.label());
    const IsaConfig &isa = cfg.isa;
    const unsigned width = isa.datawidth;
    const unsigned iw_bits = isa.instructionBits();

    Netlist nl(cfg.label());

    // Per-block gate accounting: record the gates each major block
    // of the core contributes (pre-optimization) into
    // "synth.block.<name>.gates". Deterministic counters — pure
    // functions of the configs synthesized.
    std::size_t blockMark = 0;
    auto countBlock = [&](const char *block) {
        metrics::counter(std::string("synth.block.") + block +
                         ".gates")
            .add(nl.gateCount() - blockMark);
        blockMark = nl.gateCount();
    };

    // ------------------------------------------------------------
    // Ports
    // ------------------------------------------------------------
    const Bus instr = busInputs(nl, "instr", iw_bits);
    const Bus rdata1 = busInputs(nl, "rdata1", width);
    const Bus rdata2 = busInputs(nl, "rdata2", width);
    const NetId rstn = nl.addInput("rstn");

    // ------------------------------------------------------------
    // Forward references (resolved once the registers exist)
    // ------------------------------------------------------------
    const bool live_s = (cfg.flagMask >> flagBitS) & 1;
    const bool live_z = (cfg.flagMask >> flagBitZ) & 1;
    const bool live_c = (cfg.flagMask >> flagBitC) & 1;
    const bool live_v = (cfg.flagMask >> flagBitV) & 1;

    const NetId flag_s_fb = live_s ? nl.makeFeedback() : invalidNet;
    const NetId flag_z_fb = live_z ? nl.makeFeedback() : invalidNet;
    const NetId flag_c_fb = live_c ? nl.makeFeedback() : invalidNet;
    const NetId flag_v_fb = live_v ? nl.makeFeedback() : invalidNet;
    const NetId flag_c_use =
        live_c ? flag_c_fb : nl.constZero();

    Bus pc_fb;
    for (unsigned i = 0; i < isa.pcBits; ++i)
        pc_fb.push_back(nl.makeFeedback());

    const NetId taken_fb = nl.makeFeedback();
    const NetId stall_fb =
        cfg.stages == 3 ? nl.makeFeedback() : nl.constZero();
    NetId stall_sig = invalidNet; // P3: resolved after the PC logic

    // ------------------------------------------------------------
    // Fetch stage: IR and stage-valid bits
    // ------------------------------------------------------------
    Bus ex_word;          // instruction word feeding decode/execute
    NetId v_ex = invalidNet; // validity of the execute instruction
    Bus d3_latched;       // P3: stage-2->3 pipeline register contents
    DecodeSignals dec2;   // P3: stage-2 decode (address generation)
    Bus ea1_s2, ea2_s2;   // P3: stage-2 effective addresses

    // BAR registers are shared state; build them against a decode
    // stage chosen per pipeline depth, so declare storage here.
    std::vector<Bus> bar_vals; // addrBits-wide values, [0] == 0

    if (cfg.stages == 1) {
        ex_word = instr;
        v_ex = nl.constOne();
    } else if (cfg.stages == 2) {
        // IR: plain pipeline register; a taken branch flushes the
        // just-fetched instruction via the valid bit.
        ex_word = registerBankReset(nl, instr, rstn);
        const NetId v_next = inv(nl, taken_fb);
        v_ex = nl.addFlopReset(v_next, rstn);
    }

    // ------------------------------------------------------------
    // Decode + BAR file + address generation
    // ------------------------------------------------------------
    // For p1/p2 everything below happens in the execute stage; for
    // p3 addresses are generated in stage 2 and the decoded
    // controls latched into stage 3.
    DecodeSignals dec;

    // SET-BAR loads BAR[k] from data memory: the pointer word
    // arrives on rdata1 (read at the operand-1 effective address),
    // and operand 2 is the immediate BAR index.
    auto build_bars = [&](const DecodeSignals &d, NetId valid) {
        bar_vals.clear();
        bar_vals.push_back(busConst(nl, cfg.addrBits, 0));
        const Bus bar_d = busExtend(nl, rdata1, cfg.barBits);
        for (unsigned k = 1; k < isa.barCount; ++k) {
            const NetId is_k = equalsConst(nl, d.op2, k);
            NetId en = nl.addGate(CellKind::AND2X1,
                                  d.hotOf(Opcode::BAR), is_k);
            if (valid != invalidNet)
                en = nl.addGate(CellKind::AND2X1, en, valid);
            const Bus q = registerEnable(nl, bar_d, en, rstn);
            bar_vals.push_back(busExtend(nl, q, cfg.addrBits));
        }
    };

    if (cfg.stages <= 2) {
        dec = decodeFields(nl, ex_word, isa);
        build_bars(dec, cfg.stages == 2 ? v_ex : invalidNet);
        ea1_s2 = addressUnit(nl, dec.op1, bar_vals, cfg);
        ea2_s2 = addressUnit(nl, dec.op2, bar_vals, cfg);
    } else {
        // P3 stage 1: IR with hold (stall) + flush (taken).
        const NetId not_stall = inv(nl, stall_fb);
        const Bus ir = registerEnable(nl, instr, not_stall, rstn);
        // v2_next = !taken & (stall ? v2 : 1)
        const NetId v2_fb = nl.makeFeedback();
        const NetId keep = mux2(nl, stall_fb, nl.constOne(), v2_fb);
        const NetId v2_next =
            nl.addGate(CellKind::AND2X1, inv(nl, taken_fb), keep);
        const NetId v2 = nl.addFlopReset(v2_next, rstn);
        nl.resolveFeedback(v2_fb, v2);

        // P3 stage 2: decode + address generation. SET-BAR executes
        // in stage 2; its write is squashed when the stage is
        // invalid, when an older branch is being taken in stage 3
        // this very cycle, and during a stall (the stalled SET-BAR
        // re-reads its pointer word after the conflicting stage-3
        // write commits; committing the stale word here would also
        // corrupt its own re-computed effective address).
        dec2 = decodeFields(nl, ir, isa);
        const NetId bar_live =
            nl.addGate(CellKind::AND2X1, v2, inv(nl, taken_fb));
        const NetId bar_ok = nl.addGate(CellKind::AND2X1, bar_live,
                                        inv(nl, stall_fb));
        build_bars(dec2, bar_ok);
        ea1_s2 = addressUnit(nl, dec2.op1, bar_vals, cfg);
        ea2_s2 = addressUnit(nl, dec2.op2, bar_vals, cfg);

        // Stage-2 -> stage-3 pipeline register: opcode + W/C/A/B +
        // operands + write address + read data + valid. The data
        // RAM reads combinationally at the stage-2 addresses, so
        // the operand words must ride into stage 3 with the rest of
        // the instruction: the execute-stage rdata1/rdata2 port
        // values belong to the *younger* instruction in stage 2.
        Bus to_latch = dec2.opcode;
        to_latch.push_back(dec2.b);
        to_latch.push_back(dec2.a);
        to_latch.push_back(dec2.c);
        to_latch.push_back(dec2.w);
        to_latch = busConcat(to_latch, dec2.op1);
        to_latch = busConcat(to_latch, dec2.op2);
        to_latch = busConcat(to_latch, ea1_s2);
        to_latch = busConcat(to_latch, rdata1);
        to_latch = busConcat(to_latch, rdata2);
        d3_latched = registerBankReset(nl, to_latch, rstn);

        // v3_next = v2 & !stall & !taken
        const NetId t0 = nl.addGate(CellKind::AND2X1, v2,
                                    inv(nl, stall_fb));
        const NetId v3_next =
            nl.addGate(CellKind::AND2X1, t0, inv(nl, taken_fb));
        v_ex = nl.addFlopReset(v3_next, rstn);

        // Reconstruct the execute-stage decode from the latch.
        dec.opcode = busSlice(d3_latched, 0, 4);
        dec.b = d3_latched[4];
        dec.a = d3_latched[5];
        dec.c = d3_latched[6];
        dec.w = d3_latched[7];
        dec.op1 = busSlice(d3_latched, 8, isa.operandBits);
        dec.op2 =
            busSlice(d3_latched, 8 + isa.operandBits, isa.operandBits);
        dec.hot = binaryDecoder(nl, dec.opcode, numOpcodes);

        // Hazard: stage-3 write vs stage-2 reads of the same word.
        const Bus ea1_s3 =
            busSlice(d3_latched, 8 + 2 * isa.operandBits,
                     cfg.addrBits);
        const NetId m1 = equalsBus(nl, ea1_s2, ea1_s3);
        const NetId m2 = equalsBus(nl, ea2_s2, ea1_s3);
        const NetId any = nl.addGate(CellKind::OR2X1, m1, m2);
        const NetId wr3 =
            nl.addGate(CellKind::AND2X1, dec.w, v_ex);
        const NetId both =
            nl.addGate(CellKind::AND2X1, wr3, v2);
        stall_sig = nl.addGate(CellKind::AND2X1, both, any);
        // NOTE: stall_fb is resolved only after the PC logic below;
        // resolveFeedback() retires the placeholder, so resolving
        // here would leave the later-built PC hold mux reading a
        // dead net (stuck at 0) and the PC would run past the
        // stalled instruction.
    }

    countBlock("fetch_decode");

    // Execute-stage effective addresses / write-back address.
    Bus waddr;
    if (cfg.stages == 3)
        waddr = busSlice(d3_latched, 8 + 2 * isa.operandBits,
                         cfg.addrBits);
    else
        waddr = ea1_s2;

    // ------------------------------------------------------------
    // ALU
    // ------------------------------------------------------------
    // Execute-stage operand data: p1/p2 read the RAM in the same
    // stage that executes; p3 executes on the words latched with
    // the instruction (see the stage-2 -> stage-3 register above).
    Bus ex_rdata1 = rdata1;
    Bus ex_rdata2 = rdata2;
    if (cfg.stages == 3) {
        const unsigned data_at =
            8 + 2 * isa.operandBits + cfg.addrBits;
        ex_rdata1 = busSlice(d3_latched, data_at, width);
        ex_rdata2 = busSlice(d3_latched, data_at + width, width);
    }
    const AluOut alu =
        buildAlu(nl, dec, ex_rdata1, ex_rdata2, flag_c_use, cfg);
    countBlock("alu");

    // ------------------------------------------------------------
    // Flags
    // ------------------------------------------------------------
    // M-type = anything but STORE / SET-BAR / BR.
    const NetId is_sb = nl.addGate(CellKind::OR2X1,
                                   dec.hotOf(Opcode::STORE),
                                   dec.hotOf(Opcode::BAR));
    const NetId is_ctl =
        nl.addGate(CellKind::OR2X1, is_sb, dec.hotOf(Opcode::BR));
    const NetId is_mtype = inv(nl, is_ctl);
    NetId flag_en = is_mtype;
    if (cfg.stages >= 2)
        flag_en = nl.addGate(CellKind::AND2X1, flag_en, v_ex);

    Bus flag_d; // in [V, C, Z, S] bit order
    std::vector<unsigned> flag_bits;
    if (live_v) {
        flag_d.push_back(alu.vNext);
        flag_bits.push_back(flagBitV);
    }
    if (live_c) {
        flag_d.push_back(alu.cNext);
        flag_bits.push_back(flagBitC);
    }
    if (live_z) {
        flag_d.push_back(isZero(nl, alu.result));
        flag_bits.push_back(flagBitZ);
    }
    if (live_s) {
        flag_d.push_back(alu.result.back());
        flag_bits.push_back(flagBitS);
    }

    Bus flag_q;
    if (!flag_d.empty())
        flag_q = registerEnable(nl, flag_d, flag_en, rstn);
    for (std::size_t i = 0; i < flag_bits.size(); ++i) {
        switch (flag_bits[i]) {
          case flagBitV: nl.resolveFeedback(flag_v_fb, flag_q[i]);
            break;
          case flagBitC: nl.resolveFeedback(flag_c_fb, flag_q[i]);
            break;
          case flagBitZ: nl.resolveFeedback(flag_z_fb, flag_q[i]);
            break;
          case flagBitS: nl.resolveFeedback(flag_s_fb, flag_q[i]);
            break;
        }
    }

    countBlock("flags");

    // ------------------------------------------------------------
    // Branch resolution
    // ------------------------------------------------------------
    // hit = OR over live flags of (flag & bmask bit). The bmask is
    // compacted: bit i selects the i-th live flag in V,C,Z,S order,
    // which for a full-flag core coincides with the standard
    // bmask bit positions and lets program-specific cores carry a
    // flagCount-bit mask (Section 7).
    Bus hit_terms;
    for (std::size_t i = 0; i < flag_bits.size(); ++i) {
        if (i < dec.op2.size())
            hit_terms.push_back(nl.addGate(CellKind::AND2X1,
                                           flag_q[i],
                                           dec.op2[i]));
    }
    const NetId hit = orReduce(nl, hit_terms);
    // BR: taken when hit; BRN (A=1): taken when !hit.
    const NetId cond = nl.addGate(CellKind::XOR2X1, hit, dec.a);
    NetId taken = nl.addGate(CellKind::AND2X1,
                             dec.hotOf(Opcode::BR), cond);
    if (cfg.stages >= 2)
        taken = nl.addGate(CellKind::AND2X1, taken, v_ex);
    nl.resolveFeedback(taken_fb, taken);

    // ------------------------------------------------------------
    // Program counter
    // ------------------------------------------------------------
    const Bus target = busExtend(nl, dec.op1, isa.pcBits);
    const Bus pc_inc = incrementer(nl, pc_fb);
    Bus pc_next = busMux2(nl, taken, pc_inc, target);
    if (cfg.stages == 3)
        pc_next = busMux2(nl, stall_fb, pc_next, pc_fb);
    const Bus pc_q = registerBankReset(nl, pc_next, rstn);
    for (unsigned i = 0; i < isa.pcBits; ++i)
        nl.resolveFeedback(pc_fb[i], pc_q[i]);

    // The PC hold mux above is the last consumer of the stall
    // placeholder; it is safe to retire it only now.
    if (cfg.stages == 3)
        nl.resolveFeedback(stall_fb, stall_sig);

    // ------------------------------------------------------------
    // Outputs
    // ------------------------------------------------------------
    NetId wen = dec.w;
    if (cfg.stages >= 2)
        wen = nl.addGate(CellKind::AND2X1, wen, v_ex);

    busOutputs(nl, "pc", pc_q);
    busOutputs(nl, "addr1", ea1_s2);
    busOutputs(nl, "addr2", ea2_s2);
    busOutputs(nl, "waddr", waddr);
    busOutputs(nl, "wdata", alu.result);
    nl.addOutput("wen", wen);
    countBlock("branch_pc");
    return nl;
}

Netlist
buildCore(const CoreConfig &cfg)
{
    trace::Span span("synth.buildCore", cfg.label());
    Netlist nl = elaborateCore(cfg);
    metrics::counter("synth.core.gates_pre_opt").add(nl.gateCount());
    synth::optimize(nl);
    nl.validate();
    metrics::counter("synth.cores_built").add(1);
    metrics::counter("synth.core.gates").add(nl.gateCount());
    return nl;
}

CorePorts
corePorts(const Netlist &nl, const CoreConfig &cfg)
{
    CorePorts p;
    auto bus_of = [&](const std::string &name, unsigned width,
                      bool input) {
        Bus bus;
        for (unsigned i = 0; i < width; ++i) {
            const std::string n = name + "[" + std::to_string(i) +
                                  "]";
            bus.push_back(input ? nl.inputNet(n) : nl.outputNet(n));
        }
        return bus;
    };
    p.instr = bus_of("instr", cfg.isa.instructionBits(), true);
    p.rdata1 = bus_of("rdata1", cfg.isa.datawidth, true);
    p.rdata2 = bus_of("rdata2", cfg.isa.datawidth, true);
    p.rstn = nl.inputNet("rstn");
    p.pc = bus_of("pc", cfg.isa.pcBits, false);
    p.addr1 = bus_of("addr1", cfg.addrBits, false);
    p.addr2 = bus_of("addr2", cfg.addrBits, false);
    p.waddr = bus_of("waddr", cfg.addrBits, false);
    p.wdata = bus_of("wdata", cfg.isa.datawidth, false);
    p.wen = nl.outputNet("wen");
    return p;
}

} // namespace printed
