/**
 * @file
 * Gate-level co-simulation harness.
 *
 * Connects a generated TP-ISA core netlist to behavioral Harvard
 * memories (instruction ROM image + data RAM array) and runs whole
 * programs through the GateSimulator. Used to validate that the
 * synthesized cores implement TP-ISA exactly: tests execute each
 * workload on both the instruction-set simulator and the gate-level
 * core and require identical memory results.
 *
 * Per-cycle protocol (mirrors the paper's single-cycle memory-memory
 * datapath): the harness presents instr = rom[pc], lets the core
 * settle, presents rdata1/2 = ram[addr1/2], settles again, then
 * commits the write (wen -> ram[waddr] = wdata) and clocks.
 */

#ifndef PRINTED_CORE_COSIM_HH
#define PRINTED_CORE_COSIM_HH

#include <cstdint>
#include <vector>

#include "core/generator.hh"
#include "isa/program.hh"
#include "sim/simulator.hh"

namespace printed
{

/** Gate-level execution harness for one core + one program. */
class CoreCosim
{
  public:
    /**
     * @param netlist a core built by buildCore(config)
     * @param config the same configuration
     * @param program program to load into the instruction ROM
     * @param dmem_words data-RAM size in words
     */
    CoreCosim(const Netlist &netlist, const CoreConfig &config,
              const Program &program, std::size_t dmem_words);

    /** Apply reset for one cycle and zero the data RAM. */
    void reset();

    /** Write a data-RAM word. */
    void setMem(std::size_t addr, std::uint64_t value);

    /**
     * Map a memory-mapped input stream (see
     * TpIsaMachine::setStreamPort). Supported for single-cycle
     * cores: the harness decodes the fetched instruction to consume
     * stream values only on architectural operand reads, keeping
     * gate-level execution in lockstep with the ISS.
     */
    void setStreamPort(std::size_t addr,
                       std::vector<std::uint64_t> values);

    /** Read a data-RAM word. */
    std::uint64_t mem(std::size_t addr) const;

    /** Current PC (gate-level). */
    unsigned pc() const;

    /** Run one clock cycle. */
    void cycle();

    /**
     * Run until the PC spins on a self-branch, falls off the end of
     * the program, or max_cycles elapse.
     * @return number of cycles executed
     */
    std::uint64_t run(std::uint64_t max_cycles = 2'000'000);

    /** True when the program reached a halt condition. */
    bool halted() const { return halted_; }

    /** Measured switching-activity factor of the core netlist. */
    double activityFactor() const { return sim_.activityFactor(); }

    /**
     * The underlying gate-level simulator. Exposed so fault
     * injection (analysis/fault.hh) can overlay defect maps on the
     * core between trials; call reset() after changing the overlay.
     */
    GateSimulator &simulator() { return sim_; }

  private:
    const CoreConfig config_;
    CorePorts ports_;
    GateSimulator sim_;
    std::vector<std::uint32_t> rom_;
    std::vector<std::uint64_t> ram_;
    bool halted_ = false;
    unsigned lastPc_ = 0;
    unsigned samePcStreak_ = 0;
    unsigned spinAnchor_ = ~0u; ///< candidate spin branch address
    unsigned drain_ = 0; ///< pipeline-drain cycles past the end

    long streamAddr_ = -1;
    std::vector<std::uint64_t> streamValues_;
    std::size_t streamPos_ = 0;
};

} // namespace printed

#endif // PRINTED_CORE_COSIM_HH
