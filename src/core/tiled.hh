/**
 * @file
 * Tiled many-core design generator: the million-gate workload of
 * the hierarchical synthesis flow.
 *
 * A tiled design is a rows x cols grid of tiles; each tile is one
 * TP-ISA core block plus one crossbar-style scratchpad block (a
 * DFF word array addressed through a binary decoder, read through
 * tri-state buffers — the printed library's TSBUF idiom, built from
 * the same blocks.hh generators as the core datapath; the paper's
 * SRAM model in mem/ is analytical only, so the scratchpad is the
 * gate-level memory of this repo). Core store ports drive the
 * scratchpad; scratchpad read data feeds the core back — a
 * block-level cycle, legal in hier::Design because the flat graph
 * breaks it through the memory's flip-flops.
 *
 * The point of this generator is scale, not microarchitecture: it
 * turns a target gate count into a design of hundreds to thousands
 * of uniform blocks so bench_synth_scale can measure gates/s of
 * parallel per-block optimization and deterministic flattening.
 */

#ifndef PRINTED_CORE_TILED_HH
#define PRINTED_CORE_TILED_HH

#include <cstddef>
#include <string>

#include "core/config.hh"
#include "core/generator.hh"
#include "netlist/hier.hh"

namespace printed
{

/** Configuration of one tiled many-core design. */
struct TiledConfig
{
    unsigned rows = 4;
    unsigned cols = 4;

    /** Per-tile core (the paper's smallest standard core). */
    CoreConfig core = CoreConfig::standard(1, 8, 2);

    /** Scratchpad words per tile (power of two, >= 2). */
    unsigned memWords = 4;

    std::size_t tiles() const { return std::size_t(rows) * cols; }

    /** Scratchpad address width (log2 of memWords). */
    unsigned memAddrBits() const;

    /** e.g. "tiled4x4_p1_8_2_m4". */
    std::string label() const;

    /** Validate; fatal() on inconsistent settings. */
    void check() const;
};

/**
 * Gate-level scratchpad block of one tile: memWords x datawidth
 * DFF array with one write port (waddr/wdata/wen) and two
 * tri-state-muxed read ports (raddr1 -> rdata1, raddr2 -> rdata2),
 * matching the core's memory interface. Unoptimized, validated.
 */
Netlist buildTileMemory(const TiledConfig &config);

/**
 * Elaborate the full grid as a hierarchical design: 2 blocks per
 * tile, wired core -> scratchpad (store port, low address bits)
 * and scratchpad -> core (read data), with each core's pc bus
 * exposed as top-level outputs. All blocks arrive *unoptimized*
 * and dirty — run Design::optimizeBlocks over a ThreadPool next;
 * that phase is the bench_synth_scale measurement.
 */
hier::Design buildTiledDesign(const TiledConfig &config);

/**
 * Size a grid to reach (at least) `targetGates` optimized gates:
 * synthesizes one tile to measure gates/tile, then picks the most
 * square rows x cols grid covering the target.
 */
TiledConfig tiledConfigForGates(std::size_t targetGates,
                                const TiledConfig &base = {});

} // namespace printed

#endif // PRINTED_CORE_TILED_HH
