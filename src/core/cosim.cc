#include "cosim.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace printed
{

CoreCosim::CoreCosim(const Netlist &netlist, const CoreConfig &config,
                     const Program &program, std::size_t dmem_words)
    : config_(config), ports_(corePorts(netlist, config)),
      sim_(netlist), rom_(program.words()), ram_(dmem_words, 0)
{
    fatalIf(dmem_words == 0 || dmem_words > 256,
            "CoreCosim: data RAM must be 1..256 words");
    fatalIf(program.isa.instructionBits() !=
                config.isa.instructionBits(),
            "CoreCosim: program ISA does not match the core");
    reset();
}

void
CoreCosim::reset()
{
    sim_.reset();
    std::fill(ram_.begin(), ram_.end(), 0);
    halted_ = false;
    lastPc_ = 0;
    samePcStreak_ = 0;
    spinAnchor_ = ~0u;
    streamPos_ = 0;
    drain_ = 0;

    sim_.setInput(ports_.rstn, false);
    sim_.evaluate();
    sim_.step();
    sim_.setInput(ports_.rstn, true);
    sim_.evaluate();
}

void
CoreCosim::setStreamPort(std::size_t addr,
                         std::vector<std::uint64_t> values)
{
    fatalIf(addr >= ram_.size(),
            "CoreCosim::setStreamPort: address out of range");
    fatalIf(values.empty(), "CoreCosim::setStreamPort: empty stream");
    fatalIf(config_.stages != 1,
            "CoreCosim: stream ports are supported on single-cycle "
            "cores only");
    streamAddr_ = long(addr);
    streamValues_ = std::move(values);
    streamPos_ = 0;
}

void
CoreCosim::setMem(std::size_t addr, std::uint64_t value)
{
    fatalIf(addr >= ram_.size(), "CoreCosim::setMem out of range");
    ram_[addr] = value & maskBits(config_.isa.datawidth);
}

std::uint64_t
CoreCosim::mem(std::size_t addr) const
{
    fatalIf(addr >= ram_.size(), "CoreCosim::mem out of range");
    return ram_[addr];
}

unsigned
CoreCosim::pc() const
{
    return unsigned(sim_.readBus(ports_.pc));
}

void
CoreCosim::cycle()
{
    if (halted_)
        return;

    const unsigned pcv = pc();
    std::uint32_t fetched;
    if (pcv >= rom_.size()) {
        // Fell off the end: older instructions may still be in
        // flight in a pipelined core, so feed a harmless never-
        // taken branch (no writeback, no flag update) and drain
        // before halting.
        if (drain_++ >= config_.stages) {
            halted_ = true;
            return;
        }
        fetched = encode(Instruction{Mnemonic::BR, 0, 0},
                         config_.isa);
    } else {
        drain_ = 0;
        fetched = rom_[pcv];
    }

    // Phase 1: present the fetched instruction, settle addresses.
    sim_.setBus(ports_.instr, fetched);
    sim_.evaluate();

    // Determine which ports the executing instruction reads
    // architecturally (needed for stream-port consumption).
    bool reads1 = false, reads2 = false;
    if (streamAddr_ >= 0) {
        const Instruction inst = decode(fetched);
        reads1 = isBinaryAlu(inst.mnemonic) ||
                 inst.mnemonic == Mnemonic::SETBAR;
        reads2 = isBinaryAlu(inst.mnemonic) ||
                 isUnaryAlu(inst.mnemonic);
    }

    auto port_value = [&](std::size_t addr, bool reads) {
        if (streamAddr_ >= 0 && reads &&
            addr == std::size_t(streamAddr_)) {
            const std::uint64_t v = streamValues_[std::min(
                streamPos_, streamValues_.size() - 1)];
            ++streamPos_;
            return v & maskBits(config_.isa.datawidth);
        }
        return addr < ram_.size() ? ram_[addr] : 0;
    };

    // Phase 2: present the data-RAM read results.
    const auto a1 = std::size_t(sim_.readBus(ports_.addr1));
    const auto a2 = std::size_t(sim_.readBus(ports_.addr2));
    sim_.setBus(ports_.rdata1, port_value(a1, reads1));
    sim_.setBus(ports_.rdata2, port_value(a2, reads2));
    sim_.evaluate();

    // Phase 3: commit the write-back, clock the core.
    if (sim_.value(ports_.wen)) {
        const auto wa = std::size_t(sim_.readBus(ports_.waddr));
        fatalIf(wa >= ram_.size(),
                "CoreCosim: gate-level core wrote address " +
                std::to_string(wa) + " beyond the " +
                std::to_string(ram_.size()) + "-word RAM");
        ram_[wa] = sim_.readBus(ports_.wdata) &
                   maskBits(config_.isa.datawidth);
    }
    sim_.step();
    sim_.evaluate();

    // Halt detection: a taken self-branch pins the PC on a single-
    // cycle core; on a pipelined core the flush/refetch makes the
    // spin oscillate between the branch address and its successor.
    // A long streak inside a two-address window means the idle
    // spin was reached. (Caveat: a genuine two-instruction busy
    // loop is indistinguishable from the halt spin on a pipelined
    // core; the workload convention avoids such loops.)
    // A taken self-branch refetches stages-1 sequential successors
    // before the redirect lands, so the spin signature is a
    // backward-by-(stages-1) hop to the branch address.
    const unsigned npc = pc();
    const unsigned span = config_.stages - 1;
    if (npc == pcv) {
        // Pinned PC: the single-cycle spin signature.
        if (++samePcStreak_ >= 4)
            halted_ = true;
    } else if (span > 0 && npc + span == pcv &&
               npc == spinAnchor_) {
        // Repeated backward hop to the same address: the pipelined
        // spin re-taking its self-branch after each flush bubble.
        if (++samePcStreak_ >= 2 * config_.stages)
            halted_ = true;
    } else if (span > 0 && npc + span == pcv) {
        spinAnchor_ = npc; // candidate spin branch address
        samePcStreak_ = 1;
    } else if (npc == pcv + 1 && spinAnchor_ <= pcv &&
               pcv < spinAnchor_ + span) {
        // A forward hop inside the spin window (anchor ..
        // anchor+span): keep the streak alive.
    } else {
        samePcStreak_ = 0;
    }
    lastPc_ = npc;
}

std::uint64_t
CoreCosim::run(std::uint64_t max_cycles)
{
    std::uint64_t cycles = 0;
    while (!halted_ && cycles < max_cycles) {
        cycle();
        ++cycles;
    }
    fatalIf(!halted_, "CoreCosim: cycle budget exhausted");
    return cycles;
}

} // namespace printed
