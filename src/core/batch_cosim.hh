/**
 * @file
 * 64-lane gate-level co-simulation harness.
 *
 * The batch counterpart of CoreCosim (cosim.hh): one
 * BatchGateSimulator carries 64 independent trials of the same core
 * + program, each lane with its own fault overlay, data RAM, PC
 * trajectory, and halt state. The per-cycle protocol is identical
 * to the scalar harness — fetch, settle, present RAM reads, settle,
 * commit the write, clock — but every per-lane decision (fetch
 * address, RAM read data, write commit, halt detection) is taken
 * per lane, so faulted lanes can diverge arbitrarily while the
 * expensive gate evaluation stays one bitwise pass for all 64.
 *
 * Lane-exact semantics vs the scalar harness:
 *   - a lane that halts is retired from simulator observation and
 *     its RAM is frozen, exactly as the scalar harness stops
 *     cycling at halt;
 *   - a lane whose core writes outside the data RAM is killed
 *     (KillReason::Harness) — the scalar harness throws FatalError;
 *   - illegal electrical states kill lanes inside the simulator
 *     (KillReason::BusConflict / LatchSetReset) where the scalar
 *     engine throws SimulationError;
 *   - a lane still running when the cycle budget expires is a lost
 *     halt, reported by run() returning with the lane neither
 *     halted nor killed.
 */

#ifndef PRINTED_CORE_BATCH_COSIM_HH
#define PRINTED_CORE_BATCH_COSIM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/generator.hh"
#include "isa/program.hh"
#include "sim/batch_simulator.hh"

namespace printed
{

/** 64-lane gate-level execution harness for one core + program. */
class BatchCoreCosim
{
  public:
    /** Trials per batch (same as BatchGateSimulator::laneCount). */
    static constexpr unsigned laneCount =
        BatchGateSimulator::laneCount;

    /**
     * @param netlist a core built by buildCore(config)
     * @param config the same configuration
     * @param program program to load into the instruction ROM
     * @param dmem_words data-RAM size in words (per lane)
     */
    BatchCoreCosim(const Netlist &netlist, const CoreConfig &config,
                   const Program &program, std::size_t dmem_words);

    /**
     * Apply reset for one cycle and zero every lane's data RAM; all
     * 64 lanes return to observation (re-retire stale lanes after
     * this if needed).
     */
    void reset();

    /** Write a data-RAM word in every lane. */
    void setMemAll(std::size_t addr, std::uint64_t value);

    /** Read one lane's data-RAM word. */
    std::uint64_t mem(unsigned lane, std::size_t addr) const;

    /**
     * Map a memory-mapped input stream (single-cycle cores only;
     * see CoreCosim::setStreamPort). The stream values are shared,
     * the read position is per lane.
     */
    void setStreamPort(std::size_t addr,
                       std::vector<std::uint64_t> values);

    /** Current PC of one lane (gate-level). */
    unsigned pc(unsigned lane) const;

    /** Run one clock cycle for every live, unhalted lane. */
    void cycle();

    /**
     * Run until every observed lane has halted or been killed, or
     * max_cycles elapse. Unlike the scalar harness this does not
     * throw on a lost halt: lanes still observed and unhalted
     * afterwards exceeded the budget (fatal for MC classification).
     * @return number of cycles executed
     */
    std::uint64_t run(std::uint64_t max_cycles = 2'000'000);

    /** Lanes whose program reached a halt condition. */
    LaneMask haltedLanes() const { return halted_; }

    /** Lanes killed by the simulator or the harness. */
    LaneMask
    killedLanes() const
    {
        return sim_.killedLanes();
    }

    /**
     * The underlying batch simulator: overlay per-lane defect maps
     * (setLaneFaults), retire known-dead lanes, read activations.
     * Call reset() after changing the overlay.
     */
    BatchGateSimulator &simulator() { return sim_; }

  private:
    /** Lanes that still need cycling: observed and not halted. */
    LaneMask activeLanes() const
    {
        return sim_.observedLanes() & ~halted_;
    }

    void haltLane(unsigned lane);

    /** Drive `bus` per lane from vals[], for lanes in mask. */
    void driveBus(const Bus &bus,
                  const std::array<std::uint64_t, laneCount> &vals,
                  LaneMask lanes);

    const CoreConfig config_;
    CorePorts ports_;
    BatchGateSimulator sim_;
    std::vector<std::uint32_t> rom_;
    std::vector<std::uint64_t> ram_; ///< lane-major [lane][word]
    std::size_t ramWords_ = 0;
    std::uint32_t drainInstr_ = 0; ///< harmless never-taken branch

    LaneMask halted_ = 0;
    std::array<unsigned, laneCount> lastPc_{};
    std::array<unsigned, laneCount> samePcStreak_{};
    std::array<unsigned, laneCount> spinAnchor_{};
    std::array<unsigned, laneCount> drain_{};

    long streamAddr_ = -1;
    std::vector<std::uint64_t> streamValues_;
    std::array<std::size_t, laneCount> streamPos_{};
};

} // namespace printed

#endif // PRINTED_CORE_BATCH_COSIM_HH
