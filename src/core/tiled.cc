#include "tiled.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/trace.hh"
#include "synth/blocks.hh"
#include "synth/opt.hh"

namespace printed
{

using namespace synth;

unsigned
TiledConfig::memAddrBits() const
{
    unsigned bits = 0;
    while ((1u << bits) < memWords)
        ++bits;
    return bits;
}

std::string
TiledConfig::label() const
{
    return "tiled" + std::to_string(rows) + "x" +
           std::to_string(cols) + "_" + core.label() + "_m" +
           std::to_string(memWords);
}

void
TiledConfig::check() const
{
    core.check();
    fatalIf(rows == 0 || cols == 0, "tiled: empty grid");
    fatalIf(memWords < 2 || (memWords & (memWords - 1)) != 0,
            "tiled: memWords must be a power of two >= 2");
    fatalIf(memAddrBits() > core.addrBits,
            "tiled: scratchpad larger than the core address space");
}

Netlist
buildTileMemory(const TiledConfig &cfg)
{
    cfg.check();
    const unsigned width = cfg.core.isa.datawidth;
    const unsigned abits = cfg.memAddrBits();

    Netlist nl("tilemem_" + std::to_string(cfg.memWords) + "x" +
               std::to_string(width));
    const Bus waddr = busInputs(nl, "waddr", abits);
    const Bus wdata = busInputs(nl, "wdata", width);
    const NetId wen = nl.addInput("wen");
    const Bus raddr1 = busInputs(nl, "raddr1", abits);
    const Bus raddr2 = busInputs(nl, "raddr2", abits);
    const NetId rstn = nl.addInput("rstn");

    // Word array: decoded write enables into enable-registers.
    const std::vector<NetId> wsel = binaryDecoder(nl, waddr);
    std::vector<Bus> words;
    words.reserve(cfg.memWords);
    for (unsigned w = 0; w < cfg.memWords; ++w) {
        const NetId en =
            nl.addGate(CellKind::AND2X1, wen, wsel[w]);
        words.push_back(registerEnable(nl, wdata, en, rstn));
    }

    // Two read ports, each a decoder driving a tri-state crossbar
    // column (exactly-one-hot by construction).
    const std::vector<NetId> rsel1 = binaryDecoder(nl, raddr1);
    busOutputs(nl, "rdata1", busMuxTristate(nl, rsel1, words));
    const std::vector<NetId> rsel2 = binaryDecoder(nl, raddr2);
    busOutputs(nl, "rdata2", busMuxTristate(nl, rsel2, words));

    nl.validate();
    return nl;
}

hier::Design
buildTiledDesign(const TiledConfig &cfg)
{
    cfg.check();
    trace::Span span("synth.buildTiledDesign", cfg.label());
    const unsigned width = cfg.core.isa.datawidth;
    const unsigned abits = cfg.memAddrBits();

    // Every tile is identical: elaborate each template once and
    // stamp copies. Optimization still runs per block (that is the
    // workload being measured), but elaboration is O(1) in tiles.
    const Netlist coreTpl = elaborateCore(cfg.core);
    const Netlist memTpl = buildTileMemory(cfg);

    hier::Design d(cfg.label());
    for (unsigned r = 0; r < cfg.rows; ++r) {
        for (unsigned c = 0; c < cfg.cols; ++c) {
            const std::string suffix =
                std::to_string(r) + "_" + std::to_string(c);
            const hier::BlockId core =
                d.addBlock("core_" + suffix, coreTpl);
            const hier::BlockId mem =
                d.addBlock("mem_" + suffix, memTpl);

            // Core store port -> scratchpad. Only the low address
            // bits address the tile scratchpad; the upper bits
            // would select off-tile space and stay unconnected.
            d.connectBus(core, "waddr", mem, "waddr", abits);
            d.connectBus(core, "addr1", mem, "raddr1", abits);
            d.connectBus(core, "addr2", mem, "raddr2", abits);
            d.connectBus(core, "wdata", mem, "wdata", width);
            d.connect({core, "wen"}, {mem, "wen"});

            // Scratchpad read data -> core: a block-level cycle,
            // broken at gate level by the scratchpad's DFFs.
            d.connectBus(mem, "rdata1", core, "rdata1", width);
            d.connectBus(mem, "rdata2", core, "rdata2", width);

            d.exposeOutputBus(core, "pc", cfg.core.isa.pcBits);
        }
    }
    return d;
}

TiledConfig
tiledConfigForGates(std::size_t targetGates,
                    const TiledConfig &base)
{
    fatalIf(targetGates == 0, "tiled: zero target gate count");
    TiledConfig cfg = base;

    // Synthesize one tile to calibrate gates/tile.
    Netlist core = elaborateCore(cfg.core);
    synth::optimize(core);
    Netlist mem = buildTileMemory(cfg);
    synth::optimize(mem);
    const std::size_t perTile =
        core.gateCount() + mem.gateCount();

    const std::size_t tiles =
        (targetGates + perTile - 1) / perTile;
    cfg.rows = unsigned(std::ceil(std::sqrt(double(tiles))));
    cfg.cols = unsigned((tiles + cfg.rows - 1) / cfg.rows);
    cfg.check();
    return cfg;
}

} // namespace printed
