#include "batch_cosim.hh"

#include <algorithm>
#include <bit>

#include "common/bits.hh"
#include "common/logging.hh"

namespace printed
{

BatchCoreCosim::BatchCoreCosim(const Netlist &netlist,
                               const CoreConfig &config,
                               const Program &program,
                               std::size_t dmem_words)
    : config_(config), ports_(corePorts(netlist, config)),
      sim_(netlist), rom_(program.words()),
      ram_(dmem_words * laneCount, 0), ramWords_(dmem_words)
{
    fatalIf(dmem_words == 0 || dmem_words > 256,
            "BatchCoreCosim: data RAM must be 1..256 words");
    fatalIf(program.isa.instructionBits() !=
                config.isa.instructionBits(),
            "BatchCoreCosim: program ISA does not match the core");
    drainInstr_ = encode(Instruction{Mnemonic::BR, 0, 0},
                         config_.isa);
    reset();
}

void
BatchCoreCosim::reset()
{
    sim_.reset();
    std::fill(ram_.begin(), ram_.end(), 0);
    halted_ = 0;
    lastPc_.fill(0);
    samePcStreak_.fill(0);
    spinAnchor_.fill(~0u);
    drain_.fill(0);
    streamPos_.fill(0);

    sim_.setInputAll(ports_.rstn, false);
    sim_.evaluate();
    sim_.step();
    sim_.setInputAll(ports_.rstn, true);
    sim_.evaluate();
}

void
BatchCoreCosim::setStreamPort(std::size_t addr,
                              std::vector<std::uint64_t> values)
{
    fatalIf(addr >= ramWords_,
            "BatchCoreCosim::setStreamPort: address out of range");
    fatalIf(values.empty(),
            "BatchCoreCosim::setStreamPort: empty stream");
    fatalIf(config_.stages != 1,
            "BatchCoreCosim: stream ports are supported on "
            "single-cycle cores only");
    streamAddr_ = long(addr);
    streamValues_ = std::move(values);
    streamPos_.fill(0);
}

void
BatchCoreCosim::setMemAll(std::size_t addr, std::uint64_t value)
{
    fatalIf(addr >= ramWords_, "BatchCoreCosim::setMemAll range");
    const std::uint64_t v = value & maskBits(config_.isa.datawidth);
    for (unsigned lane = 0; lane < laneCount; ++lane)
        ram_[lane * ramWords_ + addr] = v;
}

std::uint64_t
BatchCoreCosim::mem(unsigned lane, std::size_t addr) const
{
    fatalIf(lane >= laneCount || addr >= ramWords_,
            "BatchCoreCosim::mem out of range");
    return ram_[lane * ramWords_ + addr];
}

unsigned
BatchCoreCosim::pc(unsigned lane) const
{
    return unsigned(sim_.readBusLane(ports_.pc, lane));
}

void
BatchCoreCosim::haltLane(unsigned lane)
{
    halted_ |= LaneMask(1) << lane;
    sim_.retireLanes(LaneMask(1) << lane);
}

void
BatchCoreCosim::driveBus(
    const Bus &bus, const std::array<std::uint64_t, laneCount> &vals,
    LaneMask lanes)
{
    for (std::size_t i = 0; i < bus.size(); ++i) {
        LaneMask w = sim_.word(bus[i]) & ~lanes;
        for (LaneMask m = lanes; m; m &= m - 1) {
            const unsigned lane = unsigned(std::countr_zero(m));
            if ((vals[lane] >> i) & 1)
                w |= LaneMask(1) << lane;
        }
        sim_.setInput(bus[i], w);
    }
}

void
BatchCoreCosim::cycle()
{
    LaneMask active = activeLanes();
    if (!active)
        return;

    // Phase 1: fetch per lane (with per-lane fall-off-the-end
    // draining, exactly as the scalar harness), present the
    // instruction words, settle addresses.
    std::array<unsigned, laneCount> pcv{};
    std::array<std::uint64_t, laneCount> instr{};
    for (LaneMask m = active; m; m &= m - 1) {
        const unsigned lane = unsigned(std::countr_zero(m));
        const LaneMask bit = LaneMask(1) << lane;
        pcv[lane] = unsigned(sim_.readBusLane(ports_.pc, lane));
        if (pcv[lane] >= rom_.size()) {
            if (drain_[lane]++ >= config_.stages) {
                haltLane(lane);
                active &= ~bit;
                continue;
            }
            instr[lane] = drainInstr_;
        } else {
            drain_[lane] = 0;
            instr[lane] = rom_[pcv[lane]];
        }
    }
    if (!active)
        return;

    driveBus(ports_.instr, instr, active);
    sim_.evaluate();
    active &= sim_.observedLanes(); // bus conflicts kill lanes

    // Phase 2: present the data-RAM read results per lane,
    // consuming the memory-mapped stream where an executing
    // instruction architecturally reads it.
    const std::uint64_t dmask = maskBits(config_.isa.datawidth);
    std::array<std::uint64_t, laneCount> r1{}, r2{};
    for (LaneMask m = active; m; m &= m - 1) {
        const unsigned lane = unsigned(std::countr_zero(m));
        bool reads1 = false, reads2 = false;
        if (streamAddr_ >= 0) {
            const Instruction inst =
                decode(std::uint32_t(instr[lane]));
            reads1 = isBinaryAlu(inst.mnemonic) ||
                     inst.mnemonic == Mnemonic::SETBAR;
            reads2 = isBinaryAlu(inst.mnemonic) ||
                     isUnaryAlu(inst.mnemonic);
        }
        auto port_value = [&](std::size_t addr, bool reads) {
            if (streamAddr_ >= 0 && reads &&
                addr == std::size_t(streamAddr_)) {
                const std::uint64_t v = streamValues_[std::min(
                    streamPos_[lane], streamValues_.size() - 1)];
                ++streamPos_[lane];
                return v & dmask;
            }
            return addr < ramWords_ ? ram_[lane * ramWords_ + addr]
                                    : std::uint64_t(0);
        };
        const auto a1 =
            std::size_t(sim_.readBusLane(ports_.addr1, lane));
        const auto a2 =
            std::size_t(sim_.readBusLane(ports_.addr2, lane));
        r1[lane] = port_value(a1, reads1);
        r2[lane] = port_value(a2, reads2);
    }
    driveBus(ports_.rdata1, r1, active);
    driveBus(ports_.rdata2, r2, active);
    sim_.evaluate();
    active &= sim_.observedLanes();

    // Phase 3: commit per-lane write-backs, clock the core. A lane
    // whose core writes beyond the RAM is killed where the scalar
    // harness throws FatalError.
    for (LaneMask m = sim_.word(ports_.wen) & active; m; m &= m - 1) {
        const unsigned lane = unsigned(std::countr_zero(m));
        const LaneMask bit = LaneMask(1) << lane;
        const auto wa =
            std::size_t(sim_.readBusLane(ports_.waddr, lane));
        if (wa >= ramWords_) {
            sim_.killLanes(bit,
                           BatchGateSimulator::KillReason::Harness);
            active &= ~bit;
            continue;
        }
        ram_[lane * ramWords_ + wa] =
            sim_.readBusLane(ports_.wdata, lane) & dmask;
    }
    sim_.step();
    sim_.evaluate();
    active &= sim_.observedLanes(); // SR-latch kills during step()

    // Halt detection per lane: same spin signatures as the scalar
    // harness (pinned PC on a single-cycle core, repeated backward-
    // by-(stages-1) hop on a pipelined one).
    const unsigned span = config_.stages - 1;
    for (LaneMask m = active; m; m &= m - 1) {
        const unsigned lane = unsigned(std::countr_zero(m));
        const unsigned cur = pcv[lane];
        const unsigned npc =
            unsigned(sim_.readBusLane(ports_.pc, lane));
        if (npc == cur) {
            if (++samePcStreak_[lane] >= 4)
                haltLane(lane);
        } else if (span > 0 && npc + span == cur &&
                   npc == spinAnchor_[lane]) {
            if (++samePcStreak_[lane] >= 2 * config_.stages)
                haltLane(lane);
        } else if (span > 0 && npc + span == cur) {
            spinAnchor_[lane] = npc; // candidate spin branch address
            samePcStreak_[lane] = 1;
        } else if (npc == cur + 1 && spinAnchor_[lane] <= cur &&
                   cur < spinAnchor_[lane] + span) {
            // Forward hop inside the spin window: keep the streak.
        } else {
            samePcStreak_[lane] = 0;
        }
        lastPc_[lane] = npc;
    }
}

std::uint64_t
BatchCoreCosim::run(std::uint64_t max_cycles)
{
    std::uint64_t cycles = 0;
    while (activeLanes() && cycles < max_cycles) {
        cycle();
        ++cycles;
    }
    return cycles;
}

} // namespace printed
