/**
 * @file
 * TP-ISA core configuration: the design-space knobs of Section 5.2
 * (pipeline depth, datawidth, BAR count) plus the program-specific
 * shrink parameters of Section 7 (PC width, BAR width, live flags,
 * operand width).
 */

#ifndef PRINTED_CORE_CONFIG_HH
#define PRINTED_CORE_CONFIG_HH

#include <string>

#include "isa/isa.hh"

namespace printed
{

/** Full configuration of one TP-ISA core instance. */
struct CoreConfig
{
    /** Pipeline stages: 1 (single cycle), 2 (F | DXW), or
     *  3 (F | D/addr | XW). */
    unsigned stages = 1;

    /** ISA variant: datawidth, BAR count, PC width, operand width. */
    IsaConfig isa;

    /**
     * Live-flag mask (bit3=S, bit2=Z, bit1=C, bit0=V). Standard
     * cores keep all four; program-specific cores drop unused flags
     * and their generation logic (Section 7).
     */
    unsigned flagMask = 0xF;

    /** Width of each BAR register (shrunk by specialization). */
    unsigned barBits = 8;

    /**
     * Implemented primary opcodes, one bit per Opcode value.
     * Standard cores implement everything; program-specific cores
     * prune the ALU blocks of unused instructions (the ASIP-style
     * pruning Section 7 cites), which drops the corresponding
     * datapath and flag logic entirely.
     */
    unsigned opcodeMask = 0x3FF;

    /** True when the core implements the given opcode. */
    bool
    implements(Opcode op) const
    {
        return opcodeMask & (1u << static_cast<unsigned>(op));
    }

    /**
     * ALU result-mux topology: tri-state bus (default; one TSBUFX1
     * per source per bit) vs. an AND-OR one-hot mux. Exposed for
     * the ablation study of this design choice
     * (bench_ablation_printed).
     */
    bool tristateResultMux = true;

    /** Data-memory address width (8 for the 256-word standard ISA). */
    unsigned addrBits = 8;

    /** Number of live flags. */
    unsigned flagCount() const;

    /** Paper-style label pP_D_B, e.g. "p1_8_2". */
    std::string label() const;

    /** Validate; fatal() on inconsistent settings. */
    void check() const;

    /** Standard (non-program-specific) core, as in Figure 7. */
    static CoreConfig
    standard(unsigned stages, unsigned datawidth, unsigned bar_count)
    {
        CoreConfig cfg;
        cfg.stages = stages;
        cfg.isa.datawidth = datawidth;
        cfg.isa.barCount = bar_count;
        return cfg;
    }
};

} // namespace printed

#endif // PRINTED_CORE_CONFIG_HH
