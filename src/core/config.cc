#include "config.hh"

#include "common/logging.hh"

namespace printed
{

unsigned
CoreConfig::flagCount() const
{
    unsigned n = 0;
    for (unsigned b = 0; b < 4; ++b)
        if (flagMask & (1u << b))
            ++n;
    return n;
}

std::string
CoreConfig::label() const
{
    return "p" + std::to_string(stages) + "_" +
           std::to_string(isa.datawidth) + "_" +
           std::to_string(isa.barCount);
}

void
CoreConfig::check() const
{
    isa.check();
    fatalIf(stages < 1 || stages > 3,
            "CoreConfig: stages must be 1..3");
    fatalIf(flagMask > 0xF, "CoreConfig: flagMask is 4 bits");
    fatalIf(barBits == 0 || barBits > 8,
            "CoreConfig: barBits in 1..8");
    fatalIf(addrBits == 0 || addrBits > 8,
            "CoreConfig: addrBits in 1..8");
    // Note: operand fields may be wider than addrBits (they also
    // carry branch targets); the address units truncate offsets to
    // the address space, which the program analysis guarantees is
    // lossless.
}

} // namespace printed
