/**
 * @file
 * Gate-level TP-ISA core generator.
 *
 * Elaborates a CoreConfig into an actual netlist of printed
 * standard cells: program counter, instruction decode, BAR file and
 * address units, the ALU (shared add/sub, logic, single-bit
 * rotators), flags, write-back, branch resolution, and - for multi-
 * stage configurations - pipeline registers with flush/stall
 * control. This is the artifact behind Figure 7: area, power, and
 * fmax of every pP_D_B point are measured on the generated netlist
 * by the characterization core, exactly as the paper measures its
 * Design Compiler netlists.
 *
 * Core interface (all memories are external, Harvard style):
 *
 *   inputs:  instr[IW]    current instruction word (from the ROM)
 *            rdata1[D]    data-memory word at addr1
 *            rdata2[D]    data-memory word at addr2
 *            rstn         active-low asynchronous reset
 *   outputs: pc[PB]       instruction-fetch address
 *            addr1[AB]    first-operand (read/write) address
 *            addr2[AB]    second-operand address
 *            waddr[AB]    write-back address (== addr1 for p1/p2)
 *            wdata[D]     write-back data
 *            wen          write enable
 */

#ifndef PRINTED_CORE_GENERATOR_HH
#define PRINTED_CORE_GENERATOR_HH

#include <memory>

#include "core/config.hh"
#include "netlist/netlist.hh"

namespace printed
{

/** Named handles to the core's ports, for harnesses and tests. */
struct CorePorts
{
    Bus instr;
    Bus rdata1;
    Bus rdata2;
    NetId rstn = invalidNet;
    Bus pc;
    Bus addr1;
    Bus addr2;
    Bus waddr;
    Bus wdata;
    NetId wen = invalidNet;
};

/**
 * Elaborate a core configuration into an *unoptimized* netlist.
 * This is the per-block input of the hierarchical flow, which runs
 * synth::optimize on many blocks in parallel (netlist/hier.hh);
 * flat consumers want buildCore() below.
 */
Netlist elaborateCore(const CoreConfig &config);

/**
 * Build the gate-level netlist for a core configuration.
 * The netlist is optimized (synth::optimize) and validated.
 */
Netlist buildCore(const CoreConfig &config);

/** Look up the port nets of a generated core by name. */
CorePorts corePorts(const Netlist &netlist, const CoreConfig &config);

} // namespace printed

#endif // PRINTED_CORE_GENERATOR_HH
